//! Dependency-free log-bucketed latency histograms and a small metrics
//! registry (histograms + counters + gauges) with deterministic iteration.
//!
//! Bucketing is HdrHistogram-style: values below 16 get exact unit
//! buckets; above that, each power-of-two range is split into 16 linear
//! sub-buckets, bounding relative error at 1/16 (~6.25%) while keeping
//! the whole table at `16 + 60*16` fixed-size counters. `count`, `sum`
//! and `max` are exact. Percentiles return the *upper bound* of the
//! bucket containing the requested rank — a deterministic value a
//! sorted-vector oracle can reproduce exactly, which is what the seeded
//! property test checks (including across [`Hist::merge`]).

use std::collections::BTreeMap;

const SUB_BITS: u32 = 4;
const SUB: usize = 1 << SUB_BITS; // 16 linear sub-buckets per octave
const OCTAVES: usize = 60;
const BUCKETS: usize = SUB + OCTAVES * SUB;

/// Index of the bucket covering `v`. Monotonic in `v`.
fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros(); // >= SUB_BITS
    let octave = (msb - SUB_BITS) as usize;
    let sub = ((v >> (msb - SUB_BITS)) & (SUB as u64 - 1)) as usize;
    (SUB + octave * SUB + sub).min(BUCKETS - 1)
}

/// The largest value mapping into bucket `i` (the percentile estimate).
fn bucket_upper(i: usize) -> u64 {
    if i < SUB {
        return i as u64;
    }
    let octave = ((i - SUB) / SUB) as u32;
    let sub = ((i - SUB) % SUB) as u64;
    let msb = octave + SUB_BITS;
    let lower = (1u64 << msb) | (sub << (msb - SUB_BITS));
    lower + ((1u64 << (msb - SUB_BITS)) - 1)
}

/// A fixed-size log-bucketed histogram of `u64` observations (µs here,
/// but unit-agnostic).
#[derive(Clone, PartialEq, Eq)]
pub struct Hist {
    pub count: u64,
    pub sum: u64,
    pub max: u64,
    buckets: Box<[u64; BUCKETS]>,
}

impl Default for Hist {
    fn default() -> Self {
        Hist {
            count: 0,
            sum: 0,
            max: 0,
            buckets: Box::new([0; BUCKETS]),
        }
    }
}

impl std::fmt::Debug for Hist {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Hist(n={} p50={} p95={} p99={} max={})",
            self.count,
            self.percentile(50.0),
            self.percentile(95.0),
            self.percentile(99.0),
            self.max
        )
    }
}

impl Hist {
    pub fn record(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
        self.buckets[bucket_index(v)] += 1;
    }

    /// Bucketwise merge; equivalent to having recorded both streams into
    /// one histogram (exactly — the property test asserts this).
    pub fn merge(&mut self, other: &Hist) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }

    /// The upper bound of the bucket containing rank `ceil(p/100 · count)`
    /// (1-based). Returns 0 for an empty histogram. `p == 0` is the
    /// minimum-containing bucket; `p == 100` the maximum-containing one.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let rank = rank.min(self.count);
        let mut seen = 0u64;
        for (i, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper(i);
            }
        }
        self.max
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Quantizes `v` the way this histogram would report it: the upper
    /// bound of its bucket. Exposed so an oracle can predict percentiles.
    pub fn quantize(v: u64) -> u64 {
        bucket_upper(bucket_index(v))
    }
}

/// Point-in-time copy of a [`Registry`].
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    pub hists: BTreeMap<String, Hist>,
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, i64>,
}

impl MetricsSnapshot {
    /// `(p50, p95, p99, max)` in milliseconds for a µs-valued family;
    /// `None` if the family was never observed.
    pub fn latency_ms(&self, family: &str) -> Option<(f64, f64, f64, f64)> {
        let h = self.hists.get(family)?;
        if h.count == 0 {
            return None;
        }
        Some((
            h.percentile(50.0) as f64 / 1e3,
            h.percentile(95.0) as f64 / 1e3,
            h.percentile(99.0) as f64 / 1e3,
            h.max as f64 / 1e3,
        ))
    }
}

/// Named histograms, counters, and gauges. `BTreeMap`-keyed so snapshot
/// iteration order is deterministic.
#[derive(Default)]
pub(crate) struct Registry {
    hists: BTreeMap<String, Hist>,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
}

impl Registry {
    pub fn observe(&mut self, family: &str, v: u64) {
        self.hists.entry_or_default(family).record(v);
    }

    pub fn count(&mut self, name: &str, n: u64) {
        *self.counters.entry_or_default(name) += n;
    }

    pub fn gauge(&mut self, name: &str, v: i64) {
        *self.gauges.entry_or_default(name) = v;
    }

    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            hists: self.hists.clone(),
            counters: self.counters.clone(),
            gauges: self.gauges.clone(),
        }
    }
}

/// `entry(key.to_string()).or_default()` without allocating when the key
/// already exists.
trait EntryOrDefault<V> {
    fn entry_or_default(&mut self, key: &str) -> &mut V;
}

impl<V: Default> EntryOrDefault<V> for BTreeMap<String, V> {
    fn entry_or_default(&mut self, key: &str) -> &mut V {
        if !self.contains_key(key) {
            self.insert(key.to_string(), V::default());
        }
        self.get_mut(key).expect("just inserted")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = Hist::default();
        for v in 0..16 {
            h.record(v);
        }
        for p in [1.0, 25.0, 50.0, 99.0, 100.0] {
            let rank = ((p / 100.0) * 16.0f64).ceil().max(1.0) as u64;
            assert_eq!(h.percentile(p), rank - 1, "p{p}");
        }
        assert_eq!(h.max, 15);
        assert_eq!(h.sum, (0..16).sum::<u64>());
    }

    #[test]
    fn bucket_index_is_monotonic_and_upper_bound_tight() {
        let mut prev = 0;
        for v in (0..100_000u64).step_by(7) {
            let i = bucket_index(v);
            assert!(i >= prev, "index not monotonic at {v}");
            prev = i;
            assert!(bucket_upper(i) >= v, "upper bound below value at {v}");
            let rel_err = (bucket_upper(i) - v) as f64 / (v.max(1)) as f64;
            assert!(rel_err <= 1.0 / 16.0 + 1e-9, "error too large at {v}");
        }
    }

    #[test]
    fn huge_values_do_not_overflow() {
        let mut h = Hist::default();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.count, 2);
        assert_eq!(h.max, u64::MAX);
        assert!(h.percentile(50.0) > 0);
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = Hist::default();
        let mut b = Hist::default();
        let mut both = Hist::default();
        for v in [3u64, 99, 4096, 17, 1_000_000, 0, 8] {
            a.record(v);
            both.record(v);
        }
        for v in [250u64, 250, 13, 77_777] {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a, both);
    }
}

//! Offline stand-in for the subset of `parking_lot` this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this shim as a path dependency under the same crate name. It
//! wraps `std::sync` primitives and mirrors parking_lot's panic-free API:
//! `lock()` returns the guard directly (a poisoned std mutex — possible
//! only if a thread panicked while holding it — is recovered rather than
//! propagated, matching parking_lot's "no poisoning" semantics).

#![warn(missing_docs)]

use std::sync::{self, TryLockError};

/// A mutual-exclusion primitive with parking_lot's non-poisoning API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

/// A reader-writer lock with parking_lot's non-poisoning API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn try_lock_contended_is_none() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}

//! Offline stand-in for the subset of `crossbeam-channel` this workspace
//! uses: `unbounded()` with cloneable senders and a blocking receiver.
//!
//! Backed by `std::sync::mpsc`, which provides exactly these semantics
//! for a multi-producer single-consumer unbounded FIFO. The simulator's
//! strict resume/yield handshake means a channel never has more than one
//! consumer, so nothing beyond the mpsc surface is required.

#![warn(missing_docs)]

use std::sync::mpsc;

pub use std::sync::mpsc::{RecvError, SendError, TryRecvError};

/// The sending half of an unbounded channel. Cloneable.
#[derive(Debug)]
pub struct Sender<T> {
    inner: mpsc::Sender<T>,
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Sender {
            inner: self.inner.clone(),
        }
    }
}

impl<T> Sender<T> {
    /// Sends `value`, failing only if the receiver was dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        self.inner.send(value)
    }
}

/// The receiving half of an unbounded channel.
#[derive(Debug)]
pub struct Receiver<T> {
    inner: mpsc::Receiver<T>,
}

impl<T> Receiver<T> {
    /// Blocks until a value is available or every sender is gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        self.inner.recv()
    }

    /// Removes the next value without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        self.inner.try_recv()
    }
}

/// Creates an unbounded FIFO channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::channel();
    (Sender { inner: tx }, Receiver { inner: rx })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_fifo() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.clone().send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.try_recv().unwrap(), 2);
        assert!(rx.try_recv().is_err());
    }

    #[test]
    fn recv_fails_when_senders_dropped() {
        let (tx, rx) = unbounded::<u8>();
        drop(tx);
        assert!(rx.recv().is_err());
    }
}

//! Cluster-level record/replay and search tests: same-seed runs record
//! identical traces, a recorded failure replays to the same outcome,
//! and the shrinker's output still fails without growing.

use amoeba_explore::scenario::{run_scenario, RunMode, ScenarioParams};
use amoeba_explore::schedule::{FaultKind, FaultSchedule, Injection};
use amoeba_explore::search::{fails, record_and_verify, shrink};
use amoeba_sim::{fault_codes, StepTag};

/// The loss window that resurrects the historical gap-recovery stall
/// (mirrors the `explore ci-smoke` known-bug schedule): the tail of the
/// write phase under packet loss, so a member can miss the *final*
/// accepts of the run.
fn loss_tail() -> Injection {
    Injection {
        at_ms: 8_000,
        dur_ms: 5_000,
        kind: FaultKind::Degrade {
            loss_pm: 300,
            dup_pm: 0,
            jitter_pm: 0,
        },
    }
}

#[test]
fn same_seed_scenario_records_identical_traces() {
    let params = ScenarioParams::small(3);
    let schedule = FaultSchedule::new(vec![
        Injection {
            at_ms: 6_000,
            dur_ms: 1_500,
            kind: FaultKind::Crash { column: 1 },
        },
        loss_tail(),
    ]);
    let a = run_scenario(&params, &schedule, RunMode::Record);
    let b = run_scenario(&params, &schedule, RunMode::Record);
    let ta = a.trace.expect("record mode returns a trace");
    let tb = b.trace.expect("record mode returns a trace");
    assert_eq!(
        ta.to_bytes(),
        tb.to_bytes(),
        "same seed + same schedule must record byte-identical traces"
    );
    // The trace is self-describing about what was done to the run: the
    // injected crash, its reboot, and the degrade-window parameter
    // changes all appear as fault steps.
    let fault_as: Vec<u64> = ta
        .steps
        .iter()
        .filter(|s| s.tag == StepTag::Fault)
        .map(|s| s.a)
        .collect();
    assert!(
        fault_as.contains(&fault_codes::CRASH_NODE),
        "crash recorded"
    );
    assert!(
        fault_as.contains(&fault_codes::REVIVE_NODE),
        "reboot recorded"
    );
    assert!(
        fault_as.contains(&fault_codes::NET_PARAMS),
        "degrade window recorded"
    );
}

#[test]
fn clean_recorded_run_replays_without_divergence() {
    let params = ScenarioParams::small(5);
    let recorded = run_scenario(&params, &FaultSchedule::none(), RunMode::Record);
    assert!(
        !recorded.failed(),
        "fault-free run is clean: {}",
        recorded.summary()
    );
    assert!(recorded.acked_writes > 0, "workload must not be vacuous");
    let trace = recorded.trace.expect("record mode returns a trace");
    let replayed = run_scenario(&params, &FaultSchedule::none(), RunMode::Replay(trace));
    assert!(
        !replayed.failed(),
        "verify-mode replay of a clean run stays clean: {}",
        replayed.summary()
    );
}

/// The full pipeline over the seeded historical bug: a bounded seed
/// scan finds a failing run, the shrinker keeps it failing without
/// growing it, and the recorded failure replays to the same outcome.
#[test]
fn seeded_bug_found_shrunk_and_replay_verified() {
    // A two-injection schedule: one benign duplication window plus the
    // loss tail that triggers the stall — the shrinker has something to
    // consider dropping.
    let schedule = FaultSchedule::new(vec![
        Injection {
            at_ms: 5_500,
            dur_ms: 800,
            kind: FaultKind::Degrade {
                loss_pm: 0,
                dup_pm: 200,
                jitter_pm: 0,
            },
        },
        loss_tail(),
    ]);
    // The stall needs the loss draws to land on the final sequenced op
    // without tripping the failure detector (whose recovery pass would
    // repair the member), so scan the seed space like `ci-smoke` does.
    let found = (0..64).find_map(|seed| {
        let mut p = ScenarioParams::small(seed);
        p.buggy_retrans_bound = true;
        fails(&p, &schedule).then_some(p)
    });
    let params = found.expect("seed scan finds the seeded historical bug within 64 seeds");

    let minimal = shrink(&params, &schedule);
    assert!(
        minimal.len() <= schedule.len(),
        "shrinker never grows a schedule"
    );
    assert!(!minimal.is_empty(), "shrinker keeps at least one injection");
    assert!(fails(&params, &minimal), "shrunk schedule still fails");

    let (recorded, replay_ok) = record_and_verify(&params, &minimal);
    assert!(recorded.failed(), "failure reproduces under recording");
    assert!(
        recorded.trace.is_some(),
        "recording a failing run still yields its trace"
    );
    assert!(
        replay_ok,
        "replay reproduces the recorded outcome without divergence"
    );

    // The bug lives in the re-introduced knob, not the product: the
    // same minimal schedule over the fixed service passes.
    let mut fixed = params.clone();
    fixed.buggy_retrans_bound = false;
    assert!(
        !fails(&fixed, &minimal),
        "fixed service survives the minimal schedule"
    );
}

//! One exploration scenario: a whole simulated deployment, a write
//! workload, a fault schedule, and replicated-state invariants checked
//! after quiescence.
//!
//! ## Timeline
//!
//! A scenario is a fixed logical-time program, driven from the
//! simulation's main thread at exact `run_until` boundaries (so the
//! schedule is part of the deterministic program, not an outside
//! influence):
//!
//! - `0 ‥ 5 s` — the cluster forms; every client machine creates its
//!   own directory, retrying until the service answers.
//! - `5 ‥ 12 s` — the write phase: each client appends
//!   [`ScenarioParams::writes_per_client`] rows to its directory,
//!   re-reading them through its (optionally lease-cached) lookup path.
//!   Fault injections land inside this window.
//! - `14 s` — cleanup: every fault window has ended by now (crashes
//!   rebooted, partitions healed, network parameters restored).
//! - `14 ‥ 30 s` — settle: recovery and retransmission run out.
//! - `30 ‥ 40 s` — a fresh checker client verifies every acknowledged
//!   write is readable.
//!
//! ## Invariants
//!
//! After quiescence the run must satisfy, per shard: every replica is
//! in normal operation, and all replicas agree on `update_seq` (a
//! member stalled by a replication bug — e.g. the historical
//! gap-recovery bound re-introduced by
//! [`ScenarioParams::buggy_retrans_bound`] — fails this). Globally:
//! every acknowledged write is readable afterwards, and a client's own
//! acknowledged write is never missing from its subsequent (cached or
//! uncached) lookups. Any process panic also fails the scenario.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Duration;

use amoeba_dir_core::cluster::{Cluster, ClusterParams, Variant};
use amoeba_dir_core::{CacheParams, Capability, DirClient, Rights};
use amoeba_flip::wire::{WireReader, WireWriter};
use amoeba_sim::{Ctx, SimHandle, SimTime, SimTrace, Simulation};
use parking_lot::Mutex;

use crate::schedule::{FaultKind, FaultSchedule};

/// End of the formation window / start of the write phase (ms).
pub const WRITE_START_MS: u64 = 5_000;
/// End of the write phase (ms).
pub const WRITE_END_MS: u64 = 12_000;
/// All fault windows are capped to end here (ms).
pub const CLEANUP_MS: u64 = 14_000;
/// End of the recovery settle window (ms).
pub const SETTLE_MS: u64 = 30_000;
/// End of the post-quiescence check window (ms).
pub const CHECK_END_MS: u64 = 40_000;

/// Everything that parameterizes one scenario besides its fault
/// schedule. Two runs with equal params + schedule + mode are the same
/// run, bit for bit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioParams {
    /// Simulation seed.
    pub seed: u64,
    /// Directory-service shards (each a 3-replica group).
    pub shards: usize,
    /// Segments of the router chain the shards are spread along
    /// (`1` ⇒ one flat LAN, no routers).
    pub chain_segments: usize,
    /// Client machines.
    pub clients: usize,
    /// Appends each client performs during the write phase.
    pub writes_per_client: usize,
    /// Give every client the lease-fenced directory cache.
    pub dir_cache: bool,
    /// Re-introduce the historical gap-recovery retransmission-bound
    /// bug ([`amoeba_group` `GroupConfig::buggy_retrans_bound`]) so the
    /// search can demonstrate finding it.
    pub buggy_retrans_bound: bool,
    /// In-flight window of the replicas' two-stage commit pipeline
    /// (`DirParams::flush_window`); `1` drives the serial seed loop.
    /// Part of the repro-bundle encoding — the window changes the
    /// simulated schedule, so a bundle must replay at the window it
    /// was recorded with.
    pub flush_window: usize,
    /// Run the replicas' group log (`DirParams::journal`): commits are
    /// sequential journal appends and the background checkpointer does
    /// the table writeback — so fault windows can land *inside* a
    /// checkpoint drain. Part of the repro-bundle encoding (appended
    /// last, so pre-journal bundles decode with it off).
    pub journal: bool,
    /// Install the causal-tracing telemetry layer on the run and return
    /// its Chrome-trace export in [`ScenarioReport::chrome_trace`].
    /// Tracing is zero-perturbation (the simulated run is bit-identical
    /// either way), so this is deliberately *not* part of the repro
    /// bundle encoding: a bundle replays the same with or without it.
    pub telemetry: bool,
}

impl ScenarioParams {
    /// A small scenario: one 3-replica shard on a flat LAN, a couple of
    /// clients. Fast enough for CI smoke sweeps.
    pub fn small(seed: u64) -> ScenarioParams {
        ScenarioParams {
            seed,
            shards: 1,
            chain_segments: 1,
            clients: 2,
            writes_per_client: 6,
            dir_cache: true,
            buggy_retrans_bound: false,
            flush_window: 1,
            journal: false,
            telemetry: false,
        }
    }

    /// The big deployment: 8 shards × 3 columns spread along a 5-segment
    /// router chain, plus 26 client machines — 50 simulated machines,
    /// traffic to far shards crossing up to 4 store-and-forward routers.
    pub fn big(seed: u64) -> ScenarioParams {
        ScenarioParams {
            seed,
            shards: 8,
            chain_segments: 5,
            clients: 26,
            writes_per_client: 4,
            dir_cache: true,
            buggy_retrans_bound: false,
            flush_window: 1,
            journal: false,
            telemetry: false,
        }
    }

    /// Total simulated machines (columns + clients, before the checker).
    pub fn machines(&self) -> usize {
        self.shards * 3 + self.clients
    }

    /// Serializes the params (for repro bundles).
    pub fn encode(&self, w: &mut WireWriter) {
        w.u64(self.seed)
            .u64(self.shards as u64)
            .u64(self.chain_segments as u64)
            .u64(self.clients as u64)
            .u64(self.writes_per_client as u64)
            .u8(u8::from(self.dir_cache))
            .u8(u8::from(self.buggy_retrans_bound))
            .u64(self.flush_window as u64)
            .u8(u8::from(self.journal));
    }

    /// Deserializes params. `None` on malformed input.
    pub fn decode(r: &mut WireReader) -> Option<ScenarioParams> {
        Some(ScenarioParams {
            seed: r.u64("sc seed").ok()?,
            shards: (r.u64("sc shards").ok()?.clamp(1, 64)) as usize,
            chain_segments: (r.u64("sc chain").ok()?.clamp(1, 64)) as usize,
            clients: (r.u64("sc clients").ok()?.min(1_000)) as usize,
            writes_per_client: (r.u64("sc writes").ok()?.min(10_000)) as usize,
            dir_cache: r.u8("sc cache").ok()? != 0,
            buggy_retrans_bound: r.u8("sc buggy").ok()? != 0,
            flush_window: (r.u64("sc fwin").ok()?.clamp(1, 64)) as usize,
            // Appended after the flush-window field: bundles recorded
            // before the group log existed simply end here.
            journal: r.u8("sc journal").map(|v| v != 0).unwrap_or(false),
            telemetry: false,
        })
    }
}

/// How to run a scenario.
#[derive(Debug, Clone)]
pub enum RunMode {
    /// No trace: fastest, used while searching and shrinking.
    Fast,
    /// Record the kernel's decision trace; it comes back in
    /// [`ScenarioReport::trace`] (even when the run panics).
    Record,
    /// Re-execute under verify-mode replay of a recorded trace: the
    /// kernel panics at the first decision departing from it.
    Replay(SimTrace),
}

/// The outcome of one scenario run.
#[derive(Debug)]
pub struct ScenarioReport {
    /// Post-quiescence invariant violations (empty for a clean run).
    pub invariant_failures: Vec<String>,
    /// A panic that escaped the run (process panic, replay divergence).
    pub panic: Option<String>,
    /// The recorded trace ([`RunMode::Record`] only; present even when
    /// the run panicked).
    pub trace: Option<SimTrace>,
    /// Acknowledged writes the workload achieved (directories plus
    /// rows); a clean run with zero acked writes is vacuous, not a pass.
    pub acked_writes: usize,
    /// Chrome-trace-event JSON of the run's span tree, when
    /// [`ScenarioParams::telemetry`] asked for one (`None` on a panic:
    /// a half-built trace of a crashed run is more misleading than
    /// useful).
    pub chrome_trace: Option<String>,
}

impl ScenarioReport {
    /// Whether the scenario failed (invariant violation or panic).
    pub fn failed(&self) -> bool {
        !self.invariant_failures.is_empty() || self.panic.is_some()
    }

    /// A one-line summary of the outcome.
    pub fn summary(&self) -> String {
        if let Some(p) = &self.panic {
            let line = p.lines().next().unwrap_or(p);
            format!("panic: {line}")
        } else if self.invariant_failures.is_empty() {
            format!("ok ({} acked writes)", self.acked_writes)
        } else {
            format!(
                "{} invariant violation(s): {}",
                self.invariant_failures.len(),
                self.invariant_failures[0]
            )
        }
    }
}

/// What one workload client brought back.
struct ClientOut {
    /// `(directory, row name)` pairs the service acknowledged.
    acked: Vec<(Capability, String)>,
    /// Read-your-own-acknowledged-writes violations seen mid-run.
    violations: Vec<String>,
}

/// Runs one scenario to completion and reports invariant violations,
/// any escaped panic, and (in [`RunMode::Record`]) the kernel trace.
pub fn run_scenario(
    params: &ScenarioParams,
    schedule: &FaultSchedule,
    mode: RunMode,
) -> ScenarioReport {
    // The handle is parked outside the unwind boundary so a panicking
    // run (including a replay divergence) still yields its partial
    // trace for diagnosis.
    let handle_slot: Arc<Mutex<Option<SimHandle>>> = Arc::new(Mutex::new(None));
    let slot = handle_slot.clone();
    let p = params.clone();
    let s = schedule.clone();
    let result = catch_unwind(AssertUnwindSafe(move || run_inner(&p, &s, mode, &slot)));
    match result {
        Ok(report) => report,
        Err(payload) => {
            let msg = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_owned()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "non-string panic payload".to_owned()
            };
            let trace = handle_slot
                .lock()
                .as_ref()
                .and_then(|h| h.snapshot_recording());
            ScenarioReport {
                invariant_failures: Vec::new(),
                panic: Some(msg),
                trace,
                acked_writes: 0,
                chrome_trace: None,
            }
        }
    }
}

/// A fault-window edge, expanded from the schedule.
enum Edge {
    CrashStart(usize),
    CrashEnd(usize),
    IsoStart(usize),
    IsoEnd,
    DegradeStart(u16, u16, u16),
    DegradeEnd,
}

fn run_inner(
    params: &ScenarioParams,
    schedule: &FaultSchedule,
    mode: RunMode,
    handle_slot: &Mutex<Option<SimHandle>>,
) -> ScenarioReport {
    let mut sim = match &mode {
        RunMode::Fast => Simulation::new(params.seed),
        RunMode::Record => Simulation::recording(params.seed),
        RunMode::Replay(trace) => Simulation::replaying(trace),
    };
    *handle_slot.lock() = Some(sim.handle());
    let tele = params
        .telemetry
        .then(|| amoeba_telemetry::Telemetry::install(&sim.handle()));

    let mut cp = if params.chain_segments > 1 {
        ClusterParams::sharded_chain(Variant::Group, params.shards, params.chain_segments)
    } else {
        ClusterParams::sharded(Variant::Group, params.shards)
    };
    cp.seed = params.seed;
    cp.group.buggy_retrans_bound = params.buggy_retrans_bound;
    cp.dir.flush_window = params.flush_window;
    cp.dir.journal = params.journal;
    if params.dir_cache {
        cp.dir_cache = Some(CacheParams::default());
    }
    let base_net = cp.net.clone();
    let mut cluster = Cluster::start(&sim, cp);
    let columns = cluster.columns.len();

    // Workload clients.
    let mut outs = Vec::with_capacity(params.clients);
    for i in 0..params.clients {
        let (client, _node) = cluster.client(&sim);
        let writes = params.writes_per_client;
        outs.push(sim.spawn(&format!("workload-{i}"), move |ctx| {
            client_proc(ctx, &client, i, writes)
        }));
    }

    // Expand the schedule into window edges, columns taken modulo the
    // deployment, every window capped to end by CLEANUP_MS.
    let mut edges: Vec<(u64, Edge)> = Vec::new();
    for inj in &schedule.injections {
        let at = inj.at_ms.clamp(1_000, CLEANUP_MS - 500);
        let end = at.saturating_add(inj.dur_ms.max(1)).min(CLEANUP_MS);
        match inj.kind {
            FaultKind::Crash { column } => {
                let c = column % columns;
                edges.push((at, Edge::CrashStart(c)));
                edges.push((end, Edge::CrashEnd(c)));
            }
            FaultKind::Isolate { column } => {
                let c = column % columns;
                edges.push((at, Edge::IsoStart(c)));
                edges.push((end, Edge::IsoEnd));
            }
            FaultKind::Degrade {
                loss_pm,
                dup_pm,
                jitter_pm,
            } => {
                edges.push((at, Edge::DegradeStart(loss_pm, dup_pm, jitter_pm)));
                edges.push((end, Edge::DegradeEnd));
            }
        }
    }
    edges.sort_by_key(|(t, _)| *t);

    // Drive the schedule from the main thread at exact time boundaries.
    // Guards keep overlapping windows well-defined (and deterministic):
    // a column crashes at most once at a time, one isolation and one
    // degradation window are active at most.
    let mut crashed = vec![false; columns];
    let mut iso_active = false;
    let mut degrade_active = false;
    for (at_ms, edge) in edges {
        sim.run_until(SimTime::from_millis(at_ms));
        match edge {
            Edge::CrashStart(c) => {
                if !crashed[c] {
                    cluster.crash_server(&sim, c);
                    crashed[c] = true;
                }
            }
            Edge::CrashEnd(c) => {
                if crashed[c] {
                    cluster.restart_server(&sim, c);
                    crashed[c] = false;
                }
            }
            Edge::IsoStart(c) => {
                if !iso_active && !crashed[c] {
                    cluster.isolate_server(c);
                    iso_active = true;
                }
            }
            Edge::IsoEnd => {
                if iso_active {
                    cluster.heal();
                    iso_active = false;
                }
            }
            Edge::DegradeStart(loss_pm, dup_pm, jitter_pm) => {
                if !degrade_active {
                    let mut p = base_net.clone();
                    p.loss_probability = loss_pm as f64 / 1000.0;
                    p.duplicate_probability = dup_pm as f64 / 1000.0;
                    p.jitter = jitter_pm as f64 / 1000.0;
                    cluster.net.set_params(p);
                    degrade_active = true;
                }
            }
            Edge::DegradeEnd => {
                if degrade_active {
                    cluster.net.set_params(base_net.clone());
                    degrade_active = false;
                }
            }
        }
    }

    // Settle: recovery, retransmission and fence waits run out.
    sim.run_until(SimTime::from_millis(SETTLE_MS));

    let mut failures: Vec<String> = Vec::new();
    let mut acked: Vec<(Capability, String)> = Vec::new();
    for (i, out) in outs.into_iter().enumerate() {
        match out.take() {
            Some(mut o) => {
                failures.append(&mut o.violations);
                acked.append(&mut o.acked);
            }
            None => failures.push(format!("client {i} did not finish its workload")),
        }
    }

    if std::env::var_os("AMX_DEBUG").is_some() {
        for shard in 0..cluster.params.effective_shards() {
            let seqs: Vec<u64> = (0..3)
                .map(|i| cluster.shard_server(shard, i).update_seq())
                .collect();
            let recs: Vec<u64> = (0..3)
                .map(|i| cluster.shard_server(shard, i).replica_stats().recoveries)
                .collect();
            eprintln!("[debug] at settle: shard {shard} update_seq {seqs:?} recoveries {recs:?}");
        }
    }

    // Post-quiescence read-back: every acknowledged write is readable.
    let (checker, _node) = cluster.client(&sim);
    let to_check = acked.clone();
    let check_out = sim.spawn("checker", move |ctx| checker_proc(ctx, &checker, &to_check));
    sim.run_until(SimTime::from_millis(CHECK_END_MS));
    match check_out.take() {
        Some(mut v) => failures.append(&mut v),
        None => failures.push("checker did not finish".to_owned()),
    }

    // Replicated-state invariants: per shard, every replica normal and
    // all replicas agreeing on update_seq.
    for shard in 0..cluster.params.effective_shards() {
        let seqs: Vec<u64> = (0..3)
            .map(|i| cluster.shard_server(shard, i).update_seq())
            .collect();
        for i in 0..3 {
            if !cluster.shard_server(shard, i).is_normal() {
                failures.push(format!("shard {shard} replica {i} not normal after settle"));
            }
        }
        if seqs.iter().any(|s| *s != seqs[0]) {
            failures.push(format!(
                "shard {shard} update_seq diverged after settle: {seqs:?}"
            ));
        }
    }

    let trace = sim.take_recording();
    ScenarioReport {
        invariant_failures: failures,
        panic: None,
        trace,
        acked_writes: acked.len(),
        chrome_trace: tele.map(|t| t.export_chrome_json()),
    }
}

/// One workload client: create an own directory during formation, then
/// append `writes` rows across the write phase, re-reading after each
/// acknowledged append (a client must never lose sight of its own
/// acknowledged write — cached or not).
fn client_proc(ctx: &Ctx, client: &DirClient, index: usize, writes: usize) -> ClientOut {
    let mut out = ClientOut {
        acked: Vec::new(),
        violations: Vec::new(),
    };
    // Form: retry until the service answers (it may still be electing).
    let dir = loop {
        if ctx.now().as_nanos() / 1_000_000 > WRITE_END_MS {
            return out; // never formed inside the window: vacuous
        }
        match client.create_dir(ctx, &["owner"]) {
            Ok(c) => break c,
            Err(_) => ctx.sleep(Duration::from_millis(200 + 13 * index as u64)),
        }
    };
    out.acked.push((dir, String::new())); // the directory itself
                                          // Spread this client's writes across the write phase, offset by its
                                          // index so clients interleave instead of bursting in lockstep.
    let start = WRITE_START_MS + 40 * index as u64;
    let span = WRITE_END_MS.saturating_sub(start + 200).max(1);
    let step = span / writes.max(1) as u64;
    for k in 0..writes {
        let due = SimTime::from_millis(start + step * k as u64);
        let now = ctx.now();
        if now < due {
            ctx.sleep(due.saturating_since(now));
        }
        if ctx.now().as_nanos() / 1_000_000 > CLEANUP_MS + 2_000 {
            break; // the service was unreachable for most of the phase
        }
        let name = format!("w{k}");
        if client
            .append_row(ctx, dir, &name, dir, vec![Rights::ALL])
            .is_err()
        {
            continue; // unacknowledged: nothing to hold the service to
        }
        out.acked.push((dir, name.clone()));
        // Read-your-own-acknowledged-writes, through whatever lookup
        // path this client has (leased cache included).
        match client.lookup(ctx, dir, &name) {
            Ok(Some(_)) | Err(_) => {}
            Ok(None) => out.violations.push(format!(
                "client {index}: acked append of {name:?} invisible to own lookup"
            )),
        }
    }
    out
}

/// The post-quiescence checker: by now the service is healed and
/// settled, so every acknowledged write must be readable (a handful of
/// retries tolerates a still-warming cache path, nothing else).
fn checker_proc(ctx: &Ctx, client: &DirClient, acked: &[(Capability, String)]) -> Vec<String> {
    let mut failures = Vec::new();
    for (dir, name) in acked {
        let mut ok = false;
        let mut last = String::new();
        for _ in 0..10 {
            if name.is_empty() {
                // The directory itself: it must list.
                match client.list(ctx, *dir) {
                    Ok(_) => {
                        ok = true;
                        break;
                    }
                    Err(e) => last = format!("{e:?}"),
                }
            } else {
                match client.lookup(ctx, *dir, name) {
                    Ok(Some(_)) => {
                        ok = true;
                        break;
                    }
                    Ok(None) => last = "lookup answered None".to_owned(),
                    Err(e) => last = format!("{e:?}"),
                }
            }
            ctx.sleep(Duration::from_millis(300));
        }
        if !ok {
            failures.push(format!(
                "acked write (obj {} {:?}) unreadable after settle: {last}",
                dir.object, name
            ));
        }
    }
    failures
}

//! `explore` — fault-schedule search and record/replay driver.
//!
//! ```text
//! explore sweep [--big] [--schedules N] [--seed S] [--buggy] [--window W] [--journal]
//! explore ci-smoke
//! explore replay <bundle.amrx>
//! explore probe [--seeds N] [--fixed] [--loss L] [--trace out.json]
//! ```
//!
//! - `sweep` runs `N` randomized fault schedules over the small (or
//!   `--big`, ≥50-machine multi-hop) deployment; every failure is
//!   shrunk, recorded, replay-verified, and written out as an `.amrx`
//!   repro bundle. Exits nonzero if any failure was found. `--window`
//!   sets the replicas' pipelined-commit flush window (default 4, so
//!   sweeps exercise the two-stage driver; `1` is the serial seed
//!   loop); `--journal` turns the group log on, so crash windows land
//!   on journaled commits and mid-checkpoint drains.
//! - `ci-smoke` is the CI gate: a small clean sweep must find nothing
//!   (serial, pipelined, and journaled — the journaled pass includes
//!   the checkpoint-phase schedule, whose crash windows bracket the
//!   checkpointer's ticks, and round-trips an `.amrx` bundle with the
//!   journal flag), and a deliberately re-introduced historical bug
//!   (the gap-recovery retransmission bound) must be found, shrunk,
//!   and deterministically replayed.
//! - `replay` re-executes a repro bundle under verify-mode replay.

use std::process::ExitCode;

use amoeba_explore::scenario::{run_scenario, RunMode, ScenarioParams, WRITE_START_MS};
use amoeba_explore::schedule::{FaultKind, FaultSchedule, Injection};
use amoeba_explore::search::{record_and_verify, shrink, sweep, ReproBundle};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("sweep") => cmd_sweep(&args[1..]),
        Some("ci-smoke") => cmd_ci_smoke(),
        Some("replay") => cmd_replay(&args[1..]),
        Some("probe") => cmd_probe(&args[1..]),
        _ => {
            eprintln!("usage: explore <sweep [--big] [--schedules N] [--seed S] [--buggy] [--window W] [--journal] | ci-smoke | replay <bundle.amrx>>");
            ExitCode::from(2)
        }
    }
}

fn flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn opt_u64(args: &[String], name: &str, default: u64) -> u64 {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn opt_str<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn cmd_sweep(args: &[String]) -> ExitCode {
    let seed = opt_u64(args, "--seed", 1);
    let n = opt_u64(args, "--schedules", 4) as usize;
    let mut params = if flag(args, "--big") {
        ScenarioParams::big(seed)
    } else {
        ScenarioParams::small(seed)
    };
    params.buggy_retrans_bound = flag(args, "--buggy");
    params.flush_window = opt_u64(args, "--window", 4).clamp(1, 64) as usize;
    params.journal = flag(args, "--journal");
    println!(
        "sweep: {} schedules over {} machines ({} shards, {} chain segments, \
         flush window {}{}){}",
        n,
        params.machines(),
        params.shards,
        params.chain_segments,
        params.flush_window,
        if params.journal { ", group log on" } else { "" },
        if params.buggy_retrans_bound {
            ", historical retrans bug re-introduced"
        } else {
            ""
        }
    );
    let report = sweep(&params, n, seed.wrapping_mul(0x9E37_79B9));
    for (i, f) in report.failures.iter().enumerate() {
        println!("failure {i}: {}", f.report.summary());
        println!(
            "  original ({} injections):\n{}",
            f.original.len(),
            f.original
        );
        println!(
            "  minimal  ({} injections):\n{}",
            f.minimal.len(),
            f.minimal
        );
        println!("  replay verified: {}", f.replay_ok);
        if let Some(trace) = &f.report.trace {
            let bundle = ReproBundle {
                params: params.clone(),
                schedule: f.minimal.clone(),
                trace: trace.clone(),
            };
            let path = format!("explore-failure-{i}.amrx");
            match std::fs::write(&path, bundle.to_bytes()) {
                Ok(()) => println!("  repro bundle: {path}"),
                Err(e) => println!("  (could not write repro bundle: {e})"),
            }
        }
    }
    if report.failures.is_empty() {
        println!(
            "clean: {} schedules, no invariant violations",
            report.schedules_run
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "{} of {} schedules failed",
            report.failures.len(),
            report.schedules_run
        );
        ExitCode::FAILURE
    }
}

/// The schedule that resurrects the historical stall: a packet-loss
/// window covering the tail of the write phase, so a member misses the
/// *last* accepts of the run (an end-of-order gap — exactly the case
/// the pre-fix retransmission bound got wrong).
fn known_bug_schedule() -> FaultSchedule {
    FaultSchedule::new(vec![Injection {
        at_ms: 8_000,
        dur_ms: 5_000,
        kind: FaultKind::Degrade {
            loss_pm: 300,
            dup_pm: 0,
            jitter_pm: 0,
        },
    }])
}

fn cmd_ci_smoke() -> ExitCode {
    // 0. A fault-free run must pass AND actually do work — a clean
    //    verdict over a vacuous workload proves nothing.
    let clean = ScenarioParams::small(0xC1);
    let baseline = run_scenario(&clean, &FaultSchedule::none(), RunMode::Fast);
    if baseline.failed() || baseline.acked_writes == 0 {
        eprintln!("ci-smoke: fault-free baseline bad: {}", baseline.summary());
        return ExitCode::FAILURE;
    }
    println!(
        "ci-smoke: baseline ok ({} acked writes)",
        baseline.acked_writes
    );

    // 1. A tiny sweep over the healthy service must come back clean.
    let report = sweep(&clean, 2, 0xC1);
    if !report.failures.is_empty() {
        for f in &report.failures {
            eprintln!("ci-smoke: unexpected failure: {}", f.report.summary());
            eprintln!("  schedule:\n{}", f.minimal);
        }
        return ExitCode::FAILURE;
    }
    println!(
        "ci-smoke: clean sweep ok ({} schedules)",
        report.schedules_run
    );

    // 1b. The same sweep with the two-stage commit pipeline engaged
    //     (flush window 4): crashes and partitions now land with up to
    //     four sealed batches in flight, and every durability invariant
    //     must still hold.
    let mut piped = clean.clone();
    piped.flush_window = 4;
    let report = sweep(&piped, 2, 0xC1);
    if !report.failures.is_empty() {
        for f in &report.failures {
            eprintln!(
                "ci-smoke: unexpected failure at flush window 4: {}",
                f.report.summary()
            );
            eprintln!("  schedule:\n{}", f.minimal);
        }
        return ExitCode::FAILURE;
    }
    println!(
        "ci-smoke: pipelined (window=4) sweep ok ({} schedules)",
        report.schedules_run
    );

    // 1c. The group log: the same sweep journaled (commits are journal
    //     appends, table writeback races the faults in the background
    //     checkpointer), plus the deterministic checkpoint-phase
    //     schedule — crash windows bracketing the checkpointer's ticks,
    //     where the journal is at high water and the drain half done.
    let mut journaled = clean.clone();
    journaled.flush_window = 4;
    journaled.journal = true;
    let report = sweep(&journaled, 2, 0xC1);
    if !report.failures.is_empty() {
        for f in &report.failures {
            eprintln!(
                "ci-smoke: unexpected failure with the group log on: {}",
                f.report.summary()
            );
            eprintln!("  schedule:\n{}", f.minimal);
        }
        return ExitCode::FAILURE;
    }
    // 250 ms is `DirParams::checkpoint_interval`'s default — the tick
    // the schedule's windows are keyed to.
    let ckpt_schedule = FaultSchedule::checkpoint_phase(3, 250, WRITE_START_MS);
    let ckpt = run_scenario(&journaled, &ckpt_schedule, RunMode::Record);
    if ckpt.failed() || ckpt.acked_writes == 0 {
        eprintln!(
            "ci-smoke: checkpoint-phase schedule failed journaled: {}",
            ckpt.summary()
        );
        eprintln!("  schedule:\n{ckpt_schedule}");
        return ExitCode::FAILURE;
    }
    // The `.amrx` bundle must carry the journal flag: a repro of a
    // journaled failure replayed without the journal is a different
    // program.
    let bundle = ReproBundle {
        params: journaled.clone(),
        schedule: ckpt_schedule.clone(),
        trace: ckpt.trace.clone().expect("recorded run must yield a trace"),
    };
    match ReproBundle::from_bytes(&bundle.to_bytes()) {
        Ok(rt) if rt.params == journaled && rt.schedule == ckpt_schedule => {}
        Ok(_) => {
            eprintln!("ci-smoke: journaled .amrx bundle round-trip changed params/schedule");
            return ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!("ci-smoke: journaled .amrx bundle did not re-parse: {e}");
            return ExitCode::FAILURE;
        }
    }
    println!(
        "ci-smoke: journaled sweep + checkpoint-phase schedule ok \
         ({} schedules, {} acked writes through the crash windows, bundle round-trips)",
        report.schedules_run, ckpt.acked_writes
    );

    // 2. The seeded historical bug must be found, shrunk, and replayed.
    //    The stall needs the loss draws to land on the *final* sequenced
    //    op (and the window must not trip the failure detector, whose
    //    recovery pass would state-transfer the stalled member back) —
    //    a rare tail, so the search scans the seed space with the
    //    known-bug schedule until a run trips it. Each run is a few
    //    milliseconds of host time; the scan is deterministic.
    let schedule = known_bug_schedule();
    let mut found: Option<(ScenarioParams, String)> = None;
    for seed in 0..64 {
        let mut p = ScenarioParams::small(seed);
        p.buggy_retrans_bound = true;
        let r = run_scenario(&p, &schedule, RunMode::Fast);
        if r.failed() {
            found = Some((p, r.summary()));
            break;
        }
    }
    let Some((buggy, summary)) = found else {
        eprintln!("ci-smoke: seeded historical bug was NOT found by the seed scan");
        return ExitCode::FAILURE;
    };
    println!(
        "ci-smoke: seeded bug found at scenario seed {}: {summary}",
        buggy.seed
    );
    let minimal = shrink(&buggy, &schedule);
    if minimal.len() > schedule.len() {
        eprintln!("ci-smoke: shrinker grew the schedule");
        return ExitCode::FAILURE;
    }
    println!(
        "ci-smoke: shrunk to {} injection(s):\n{}",
        minimal.len(),
        minimal
    );
    let (recorded, replay_ok) = record_and_verify(&buggy, &minimal);
    if !recorded.failed() {
        eprintln!("ci-smoke: shrunk schedule no longer fails under recording");
        return ExitCode::FAILURE;
    }
    if !replay_ok {
        eprintln!("ci-smoke: replay of the recorded failure diverged");
        return ExitCode::FAILURE;
    }
    let steps = recorded.trace.as_ref().map_or(0, |t| t.steps.len());
    println!("ci-smoke: failure recorded ({steps} trace steps) and replay-verified");

    // 3. The same schedule over the FIXED service must pass (the bug is
    //    in the knob, not the product).
    let mut fixed = buggy.clone();
    fixed.buggy_retrans_bound = false;
    if run_scenario(&fixed, &minimal, RunMode::Fast).failed() {
        eprintln!("ci-smoke: minimal schedule fails even without the seeded bug");
        return ExitCode::FAILURE;
    }
    println!("ci-smoke: fixed service survives the same schedule; all checks passed");
    ExitCode::SUCCESS
}

/// `probe --seeds N [--fixed]`: how often does the known-bug schedule
/// trip the seeded historical bug across scenario seeds? (A calibration
/// aid for the ci-smoke gate, not part of CI itself.)
fn cmd_probe(args: &[String]) -> ExitCode {
    let n = opt_u64(args, "--seeds", 20);
    let fixed = flag(args, "--fixed");
    let loss = opt_u64(args, "--loss", 300).min(1000) as u16;
    let trace_out = opt_str(args, "--trace");
    let mut schedule = known_bug_schedule();
    if let FaultKind::Degrade { loss_pm, .. } = &mut schedule.injections[0].kind {
        *loss_pm = loss;
    }
    let mut hits = 0;
    for seed in 0..n {
        let mut p = ScenarioParams::small(seed);
        p.buggy_retrans_bound = !fixed;
        // Tracing is zero-perturbation, so instrumenting only the first
        // seed changes nothing about the sweep's verdicts; one faulted
        // run's span tree is what a human wants to open, not N of them.
        p.telemetry = trace_out.is_some() && seed == 0;
        let r = run_scenario(&p, &schedule, RunMode::Fast);
        if let (Some(path), Some(json)) = (trace_out, &r.chrome_trace) {
            let summary = match amoeba_telemetry::export::validate_chrome_trace(json) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("probe: invalid chrome trace: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if let Err(e) = std::fs::write(path, json) {
                eprintln!("probe: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!(
                "seed {seed}: wrote {path} ({} events, {} slices, {} flow pairs, {} tracks)",
                summary.events, summary.slices, summary.flow_pairs, summary.tracks
            );
        }
        if r.failed() {
            hits += 1;
            println!("seed {seed}: FAIL — {}", r.summary());
        } else {
            println!("seed {seed}: ok ({} acked writes)", r.acked_writes);
        }
    }
    println!("{hits}/{n} seeds failed");
    ExitCode::SUCCESS
}

fn cmd_replay(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        eprintln!("usage: explore replay <bundle.amrx>");
        return ExitCode::from(2);
    };
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("replay: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let bundle = match ReproBundle::from_bytes(&bytes) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("replay: {e}");
            return ExitCode::from(2);
        }
    };
    println!(
        "replaying {} trace steps over {} machines, schedule:\n{}",
        bundle.trace.steps.len(),
        bundle.params.machines(),
        bundle.schedule
    );
    let report = run_scenario(
        &bundle.params,
        &bundle.schedule,
        RunMode::Replay(bundle.trace),
    );
    if report
        .panic
        .as_deref()
        .is_some_and(|p| p.contains("replay divergence"))
    {
        eprintln!("replay DIVERGED: {}", report.summary());
        return ExitCode::FAILURE;
    }
    println!("replay verified deterministically: {}", report.summary());
    ExitCode::SUCCESS
}

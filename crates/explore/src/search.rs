//! Fault-schedule search: sweep randomized schedules over a scenario,
//! shrink any failing schedule to a minimal reproduction, and package
//! the result (params + schedule + kernel trace) as a repro bundle.
//!
//! The searcher's own randomness comes from [`amoeba_testkit::Gen`]
//! (splitmix64), seeded explicitly — never from the simulation's RNG
//! and never from the host — so a sweep is as reproducible as the runs
//! it drives.

use amoeba_flip::wire::{WireReader, WireWriter};
use amoeba_sim::SimTrace;
use amoeba_testkit::Gen;

use crate::scenario::{run_scenario, RunMode, ScenarioParams, ScenarioReport, WRITE_END_MS};
use crate::schedule::{FaultKind, FaultSchedule, Injection};

/// Generates one randomized fault schedule: 1–3 injections, windows
/// inside the write phase (durations biased so loss windows cover the
/// tail of the phase, where end-of-order gaps live).
pub fn random_schedule(g: &mut Gen, columns: usize) -> FaultSchedule {
    let n = 1 + (g.u64() % 3) as usize;
    let mut injections = Vec::with_capacity(n);
    for _ in 0..n {
        let at_ms = 4_000 + g.u64() % (WRITE_END_MS - 4_000);
        let dur_ms = 500 + g.u64() % 4_000;
        let kind = match g.u64() % 4 {
            0 => FaultKind::Crash {
                column: (g.u64() % columns.max(1) as u64) as usize,
            },
            1 => FaultKind::Isolate {
                column: (g.u64() % columns.max(1) as u64) as usize,
            },
            2 => FaultKind::Degrade {
                loss_pm: 100 + (g.u64() % 300) as u16,
                dup_pm: (g.u64() % 100) as u16,
                jitter_pm: (g.u64() % 300) as u16,
            },
            _ => FaultKind::Degrade {
                loss_pm: (g.u64() % 100) as u16,
                dup_pm: 100 + (g.u64() % 300) as u16,
                jitter_pm: (g.u64() % 500) as u16,
            },
        };
        injections.push(Injection {
            at_ms,
            dur_ms,
            kind,
        });
    }
    FaultSchedule::new(injections)
}

/// One failing schedule found by a sweep, after shrinking, with its
/// recorded trace and the replay verdict.
#[derive(Debug)]
pub struct Failure {
    /// The schedule as originally generated.
    pub original: FaultSchedule,
    /// The shrunk (minimal) schedule that still fails.
    pub minimal: FaultSchedule,
    /// The failure the minimal schedule reproduces.
    pub report: ScenarioReport,
    /// Whether verify-mode replay of the recorded trace reproduced the
    /// run without divergence.
    pub replay_ok: bool,
}

/// The outcome of a sweep.
#[derive(Debug)]
pub struct SweepReport {
    /// Schedules run.
    pub schedules_run: usize,
    /// Failures found (shrunk, recorded, replay-verified).
    pub failures: Vec<Failure>,
}

/// Whether `schedule` makes the scenario fail (fast mode, no trace).
pub fn fails(params: &ScenarioParams, schedule: &FaultSchedule) -> bool {
    run_scenario(params, schedule, RunMode::Fast).failed()
}

/// Sweeps `n` randomized fault schedules over the scenario. Every
/// failing schedule is shrunk to a minimal reproduction, re-run under
/// recording, and the trace replay-verified.
pub fn sweep(params: &ScenarioParams, n: usize, gen_seed: u64) -> SweepReport {
    let mut g = Gen::new(gen_seed);
    let columns = params.shards * 3;
    let mut failures = Vec::new();
    for _ in 0..n {
        let schedule = random_schedule(&mut g, columns);
        let first = run_scenario(params, &schedule, RunMode::Fast);
        if !first.failed() {
            continue;
        }
        let minimal = shrink(params, &schedule);
        let (report, replay_ok) = record_and_verify(params, &minimal);
        failures.push(Failure {
            original: schedule,
            minimal,
            report,
            replay_ok,
        });
    }
    SweepReport {
        schedules_run: n,
        failures,
    }
}

/// Shrinks a failing schedule while it keeps failing: first drop whole
/// injections (one at a time, to fixed point), then halve durations and
/// advance start times. The result still fails and is never longer than
/// the input.
pub fn shrink(params: &ScenarioParams, schedule: &FaultSchedule) -> FaultSchedule {
    let mut cur = schedule.clone();
    debug_assert!(fails(params, &cur), "shrink needs a failing schedule");

    // Drop pass, to fixed point: remove any injection whose absence
    // still fails.
    loop {
        let mut dropped = false;
        let mut i = 0;
        while i < cur.injections.len() {
            if cur.injections.len() == 1 {
                break; // keep at least one injection
            }
            let mut candidate = cur.clone();
            candidate.injections.remove(i);
            if fails(params, &candidate) {
                cur = candidate;
                dropped = true;
            } else {
                i += 1;
            }
        }
        if !dropped {
            break;
        }
    }

    // Duration pass: halve each surviving window while the failure
    // holds (a couple of rounds is plenty — each round halves).
    for _ in 0..3 {
        let mut any = false;
        for i in 0..cur.injections.len() {
            let dur = cur.injections[i].dur_ms;
            if dur < 200 {
                continue;
            }
            let mut candidate = cur.clone();
            candidate.injections[i].dur_ms = dur / 2;
            if fails(params, &candidate) {
                cur = candidate;
                any = true;
            }
        }
        if !any {
            break;
        }
    }

    // Advance pass: pull each window earlier while the failure holds
    // (earlier failures make shorter interesting prefixes to read).
    for _ in 0..3 {
        let mut any = false;
        for i in 0..cur.injections.len() {
            let at = cur.injections[i].at_ms;
            if at <= 4_000 {
                continue;
            }
            let mut candidate = cur.clone();
            candidate.injections[i].at_ms = (at - 4_000) / 2 + 4_000;
            if fails(params, &candidate) {
                cur = candidate;
                any = true;
            }
        }
        if !any {
            break;
        }
    }
    cur
}

/// Re-runs a failing schedule under recording, then replay-verifies the
/// trace: the replay must neither diverge nor change the verdict.
pub fn record_and_verify(
    params: &ScenarioParams,
    schedule: &FaultSchedule,
) -> (ScenarioReport, bool) {
    let recorded = run_scenario(params, schedule, RunMode::Record);
    let replay_ok = match &recorded.trace {
        Some(trace) => {
            let replayed = run_scenario(params, schedule, RunMode::Replay(trace.clone()));
            let diverged = replayed
                .panic
                .as_deref()
                .is_some_and(|p| p.contains("replay divergence"));
            !diverged && replayed.failed() == recorded.failed()
        }
        None => false,
    };
    (recorded, replay_ok)
}

/// A self-contained reproduction: scenario params, minimal schedule,
/// and the recorded kernel trace, serialized into one file.
#[derive(Debug, Clone)]
pub struct ReproBundle {
    /// Scenario parameters.
    pub params: ScenarioParams,
    /// The (minimal) failing schedule.
    pub schedule: FaultSchedule,
    /// The recorded kernel decision trace.
    pub trace: SimTrace,
}

const REPRO_MAGIC: &[u8; 4] = b"AMRX";

impl ReproBundle {
    /// Serializes the bundle.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.bytes(REPRO_MAGIC);
        self.params.encode(&mut w);
        self.schedule.encode(&mut w);
        w.bytes(&self.trace.to_bytes());
        w.finish()
    }

    /// Deserializes a bundle. `Err` explains what was malformed.
    pub fn from_bytes(buf: &[u8]) -> Result<ReproBundle, String> {
        let mut r = WireReader::new(buf);
        let magic = r.bytes("repro magic").map_err(|e| e.to_string())?;
        if magic != REPRO_MAGIC {
            return Err("not a repro bundle (bad magic)".to_owned());
        }
        let params = ScenarioParams::decode(&mut r).ok_or("malformed scenario params")?;
        let schedule = FaultSchedule::decode(&mut r).ok_or("malformed fault schedule")?;
        let trace_bytes = r.bytes("repro trace").map_err(|e| e.to_string())?;
        let trace = SimTrace::from_bytes(trace_bytes)?;
        Ok(ReproBundle {
            params,
            schedule,
            trace,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_schedules_are_reproducible_and_in_window() {
        let a: Vec<FaultSchedule> = {
            let mut g = Gen::new(7);
            (0..8).map(|_| random_schedule(&mut g, 3)).collect()
        };
        let b: Vec<FaultSchedule> = {
            let mut g = Gen::new(7);
            (0..8).map(|_| random_schedule(&mut g, 3)).collect()
        };
        assert_eq!(a, b, "same generator seed, same schedules");
        for s in &a {
            assert!(!s.is_empty() && s.len() <= 3);
            for i in &s.injections {
                assert!(i.at_ms >= 4_000 && i.at_ms < WRITE_END_MS);
            }
        }
    }

    #[test]
    fn repro_bundles_round_trip() {
        let bundle = ReproBundle {
            params: ScenarioParams::small(11),
            schedule: FaultSchedule::new(vec![Injection {
                at_ms: 8_000,
                dur_ms: 1_000,
                kind: FaultKind::Crash { column: 1 },
            }]),
            trace: SimTrace {
                seed: 11,
                steps: Vec::new(),
            },
        };
        let bytes = bundle.to_bytes();
        let back = ReproBundle::from_bytes(&bytes).expect("round trip");
        assert_eq!(back.params, bundle.params);
        assert_eq!(back.schedule, bundle.schedule);
        assert_eq!(back.trace.seed, 11);
        assert!(ReproBundle::from_bytes(b"garbage").is_err());
    }
}

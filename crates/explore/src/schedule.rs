//! Fault schedules: what to inject into a scenario, and when.
//!
//! A [`FaultSchedule`] is pure data — a list of [`Injection`]s at
//! millisecond-resolution logical times — so it can be generated from a
//! seed, compared, shrunk, and serialized into a repro bundle. The
//! scenario runner applies it from the simulation's main thread at
//! exact `run_until` boundaries, which makes the injection times part
//! of the deterministic program: the same schedule over the same
//! [`crate::scenario::ScenarioParams`] is the same run, bit for bit.

use amoeba_flip::wire::{WireReader, WireWriter};

/// One kind of injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Crash replica column `column` (machine dies, NIC goes silent;
    /// disk, Bullet layout and NVRAM survive); the injection's end
    /// reboots it through the recovery protocol.
    Crash {
        /// Flat column index (taken modulo the deployment's columns).
        column: usize,
    },
    /// Partition column `column` alone on one side of the network; the
    /// injection's end heals all partitions.
    Isolate {
        /// Flat column index (taken modulo the deployment's columns).
        column: usize,
    },
    /// Degrade the whole network for the window: packet loss,
    /// duplication and latency jitter in per-mille (so schedules stay
    /// `Eq` and serialize exactly); the injection's end restores the
    /// base parameters.
    Degrade {
        /// Loss probability, per mille.
        loss_pm: u16,
        /// Duplication probability, per mille.
        dup_pm: u16,
        /// Multiplicative latency jitter, per mille (1000 ⇒ up to 2×).
        jitter_pm: u16,
    },
}

impl FaultKind {
    fn code(&self) -> u8 {
        match self {
            FaultKind::Crash { .. } => 1,
            FaultKind::Isolate { .. } => 2,
            FaultKind::Degrade { .. } => 3,
        }
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultKind::Crash { column } => write!(f, "crash(col {column})"),
            FaultKind::Isolate { column } => write!(f, "isolate(col {column})"),
            FaultKind::Degrade {
                loss_pm,
                dup_pm,
                jitter_pm,
            } => write!(
                f,
                "degrade(loss {}%, dup {}%, jitter {}%)",
                *loss_pm as f64 / 10.0,
                *dup_pm as f64 / 10.0,
                *jitter_pm as f64 / 10.0
            ),
        }
    }
}

/// One fault injection: a kind, a start time, and a duration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Injection {
    /// Start, in milliseconds of simulated time.
    pub at_ms: u64,
    /// Duration of the fault window, in milliseconds.
    pub dur_ms: u64,
    /// What to inject.
    pub kind: FaultKind,
}

impl std::fmt::Display for Injection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t={}ms +{}ms {}", self.at_ms, self.dur_ms, self.kind)
    }
}

/// An ordered list of injections (sorted by start time on creation).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultSchedule {
    /// The injections, ordered by `at_ms`.
    pub injections: Vec<Injection>,
}

impl FaultSchedule {
    /// A schedule from unordered injections (sorts by start time,
    /// stable within ties).
    pub fn new(mut injections: Vec<Injection>) -> FaultSchedule {
        injections.sort_by_key(|i| i.at_ms);
        FaultSchedule { injections }
    }

    /// The empty schedule: a fault-free run.
    pub fn none() -> FaultSchedule {
        FaultSchedule::default()
    }

    /// A schedule that hunts the group log's checkpointer. The
    /// journaled commit path drains its dirty set on a fixed tick
    /// (`DirParams::checkpoint_interval`, `interval_ms` here), so the
    /// journal sits at its high-water mark in the moments *before* a
    /// tick and the table writeback runs in the moments *after* it.
    /// This places short crash windows on both edges of successive
    /// ticks through the write phase — landing crashes while records
    /// are uncovered and while the drain is half-written — plus one
    /// isolation window across a tick, columns rotating so every
    /// replica of a small deployment gets hit. Purely deterministic:
    /// the tick phase is keyed to boot time, not to runtime state.
    pub fn checkpoint_phase(
        columns: usize,
        interval_ms: u64,
        write_start_ms: u64,
    ) -> FaultSchedule {
        let interval = interval_ms.max(50);
        let cols = columns.max(1);
        let at =
            |ticks: u64, skew: i64| (write_start_ms + ticks * interval).saturating_add_signed(skew);
        FaultSchedule::new(vec![
            // Journal high-water: die just before a checkpoint tick,
            // with a full interval's worth of records uncovered.
            Injection {
                at_ms: at(2, -15),
                dur_ms: 400,
                kind: FaultKind::Crash { column: 0 },
            },
            // Mid-drain: die just after a tick, while the checkpointer
            // is writing table/Bullet blocks for the drained acts.
            Injection {
                at_ms: at(4, 10),
                dur_ms: 400,
                kind: FaultKind::Crash { column: 1 % cols },
            },
            // A partition spanning a tick: the isolated replica
            // checkpoints alone, then must reconcile on heal.
            Injection {
                at_ms: at(6, -15),
                dur_ms: 300,
                kind: FaultKind::Isolate { column: 2 % cols },
            },
            // Second pass over the first column, mid-drain this time.
            Injection {
                at_ms: at(8, 5),
                dur_ms: 400,
                kind: FaultKind::Crash { column: 0 },
            },
        ])
    }

    /// Number of injections.
    pub fn len(&self) -> usize {
        self.injections.len()
    }

    /// Whether the schedule has no injections.
    pub fn is_empty(&self) -> bool {
        self.injections.is_empty()
    }

    /// Serializes the schedule (for repro bundles).
    pub fn encode(&self, w: &mut WireWriter) {
        w.u32(self.injections.len() as u32);
        for i in &self.injections {
            w.u64(i.at_ms).u64(i.dur_ms).u8(i.kind.code());
            match i.kind {
                FaultKind::Crash { column } | FaultKind::Isolate { column } => {
                    w.u64(column as u64);
                }
                FaultKind::Degrade {
                    loss_pm,
                    dup_pm,
                    jitter_pm,
                } => {
                    w.u64(loss_pm as u64)
                        .u64(dup_pm as u64)
                        .u64(jitter_pm as u64);
                }
            }
        }
    }

    /// Deserializes a schedule. `None` on malformed input.
    pub fn decode(r: &mut WireReader) -> Option<FaultSchedule> {
        let n = r.u32("schedule len").ok()? as usize;
        if n > 10_000 {
            return None;
        }
        let mut injections = Vec::with_capacity(n);
        for _ in 0..n {
            let at_ms = r.u64("inj at").ok()?;
            let dur_ms = r.u64("inj dur").ok()?;
            let kind = match r.u8("inj kind").ok()? {
                1 => FaultKind::Crash {
                    column: r.u64("inj col").ok()? as usize,
                },
                2 => FaultKind::Isolate {
                    column: r.u64("inj col").ok()? as usize,
                },
                3 => FaultKind::Degrade {
                    loss_pm: r.u64("inj loss").ok()?.min(1000) as u16,
                    dup_pm: r.u64("inj dup").ok()?.min(1000) as u16,
                    jitter_pm: r.u64("inj jitter").ok()?.min(u16::MAX as u64) as u16,
                },
                _ => return None,
            };
            injections.push(Injection {
                at_ms,
                dur_ms,
                kind,
            });
        }
        Some(FaultSchedule::new(injections))
    }
}

impl std::fmt::Display for FaultSchedule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.injections.is_empty() {
            return write!(f, "(no faults)");
        }
        for (k, i) in self.injections.iter().enumerate() {
            if k > 0 {
                writeln!(f)?;
            }
            write!(f, "  [{k}] {i}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_round_trip() {
        let s = FaultSchedule::new(vec![
            Injection {
                at_ms: 9_000,
                dur_ms: 2_000,
                kind: FaultKind::Degrade {
                    loss_pm: 300,
                    dup_pm: 50,
                    jitter_pm: 100,
                },
            },
            Injection {
                at_ms: 6_000,
                dur_ms: 3_000,
                kind: FaultKind::Crash { column: 2 },
            },
            Injection {
                at_ms: 7_000,
                dur_ms: 1_000,
                kind: FaultKind::Isolate { column: 0 },
            },
        ]);
        // Sorted by start time.
        assert_eq!(s.injections[0].at_ms, 6_000);
        let mut w = WireWriter::new();
        s.encode(&mut w);
        let bytes = w.finish();
        let mut r = WireReader::new(&bytes);
        assert_eq!(FaultSchedule::decode(&mut r), Some(s));
    }

    #[test]
    fn bad_kind_is_rejected() {
        let mut w = WireWriter::new();
        w.u32(1);
        w.u64(0).u64(0).u8(9);
        let bytes = w.finish();
        let mut r = WireReader::new(&bytes);
        assert_eq!(FaultSchedule::decode(&mut r), None);
    }
}

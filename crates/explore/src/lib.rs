//! `amoeba-explore`: deterministic record/replay and fault-schedule
//! search over the simulation kernel.
//!
//! The workspace's simulation kernel (`amoeba-sim`) is deterministic by
//! construction: one green thread runs at a time, events are ordered by
//! `(time, seq)`, and all randomness flows from one seeded generator per
//! process. This crate turns that property into three tools:
//!
//! 1. **Record** ([`amoeba_sim::Simulation::recording`]): every
//!    nondeterministic-looking decision the kernel makes — which event
//!    is popped, which process is resumed and why, how each process
//!    yields, every process spawn, and every externally injected fault —
//!    is appended to a compact [`amoeba_sim::SimTrace`]. Two runs of the
//!    same program from the same seed produce byte-identical traces.
//!
//! 2. **Replay** ([`amoeba_sim::Simulation::replaying`]): replay is
//!    *verify mode*, not puppet mode. The kernel re-executes the same
//!    program from the trace's seed and cross-checks each decision it
//!    makes against the recorded step, panicking with `replay
//!    divergence at step N` at the first departure. A clean replay is a
//!    machine-checked proof that the recorded failure is reproducible.
//!
//! 3. **Explore** ([`search`]): a driver that sweeps randomized
//!    [fault schedules](schedule::FaultSchedule) — crashes, partitions,
//!    loss/duplication/jitter windows at searched logical times — over
//!    whole simulated deployments (up to ≥50 machines spread along
//!    multi-hop router chains), checks replicated-state invariants
//!    after quiescence, and [shrinks](search::shrink) any failing
//!    schedule (dropping and advancing injections while the failure
//!    still reproduces) before emitting the minimal schedule plus its
//!    recorded trace as a [repro bundle](search::ReproBundle).
//!
//! ## Determinism contract
//!
//! A scenario run consults **nothing outside the simulation** but its
//! own parameters: the seed, the [`scenario::ScenarioParams`], and the
//! fault schedule. Wall-clock time, host randomness, thread scheduling,
//! and iteration order of hash containers must never influence a
//! decision that reaches the kernel — the workspace's hash-order audit
//! (sorted emission at every order-sensitive site) plus the per-yield
//! RNG digest in the trace enforce this: any leak shows up as a replay
//! divergence or a trace mismatch between same-seed runs.
//!
//! ## Trace format
//!
//! See [`amoeba_sim::SimTrace`]: `"AMTR"` magic, version, seed, then
//! fixed 33-byte steps (`time_ns`, tag, three operands). Fault steps
//! ([`amoeba_sim::fault_codes`]) record crash/revive/partition/
//! parameter injections so a trace is self-describing about *what was
//! done to* the run as well as what the kernel decided.

#![warn(missing_docs)]

pub mod scenario;
pub mod schedule;
pub mod search;

pub use scenario::{run_scenario, RunMode, ScenarioParams, ScenarioReport};
pub use schedule::{FaultKind, FaultSchedule, Injection};
pub use search::{shrink, sweep, ReproBundle, SweepReport};

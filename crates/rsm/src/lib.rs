//! # amoeba-rsm — a replicated-state-machine API over the group layer
//!
//! The ICDCS '93 paper's central claim is that totally-ordered group
//! communication makes fault-tolerant services *easy to build*. This
//! crate is that claim turned into an API: implement [`StateMachine`]
//! and a [`Replica`] gives you a fully fault-tolerant, actively
//! replicated service — join/create, majority rule, view-change
//! bookkeeping, Skeen-style recovery with state transfer, and **apply
//! batching** (group commit) — with zero group-protocol code of your
//! own. The directory service and the lock/registry service in
//! `amoeba-dir-core` are both built on it.
//!
//! ## Division of labour
//!
//! The **driver** ([`Replica`]) owns everything protocol-shaped:
//!
//! * the group event loop (`ReceiveFromGroup`), including reset on
//!   failure and fallback to full recovery;
//! * the Fig. 6 recovery protocol: mourned-set exchange over internal
//!   RPC, last-set check (with the §3.2 improved two-server rule),
//!   choice of the most up-to-date member, state fetch/install;
//! * initiator bookkeeping: [`Replica::submit`] blocks a caller until
//!   its operation has been applied *and made durable* locally, and
//!   [`Replica::read_barrier`] implements the Fig. 5 read path (drain
//!   everything the kernel has ordered before us);
//! * **apply batching**: consecutive delivered operations are applied
//!   as one batch followed by a single [`StateMachine::flush`] — the
//!   group commit that amortizes per-update storage cost.
//!
//! The **state machine** owns everything service-shaped: deterministic
//! apply, storage, snapshot encoding, and whatever durable bookkeeping
//! (commit blocks, NVRAM logs) its recovery story needs. The trait's
//! recovery hooks are exactly the points where the paper's directory
//! service touches its commit block, so a service with no durable state
//! (like the lock service) simply leaves the defaults.
//!
//! ## Contract (what `Replica` guarantees, what `apply` must uphold)
//!
//! 1. **Total order.** `apply(seq, …)` is called exactly once per
//!    sequence number, in ascending order, on every replica, with the
//!    same bytes. `apply` must be deterministic: same state + same op
//!    ⇒ same new state and same reply on every replica.
//! 2. **Group commit, pipelined.** One or more `apply` calls are
//!    followed by one durable flush. The driver *publishes* a batch —
//!    wakes submitters, unblocks readers — only after its flush
//!    returns, so a caller of [`Replica::submit`] never observes a
//!    state that is not locally durable, and a crash between `apply`
//!    and flush only ever loses *unacknowledged* operations. With
//!    [`RsmConfig::flush_window`] = 1 (the default) apply and flush
//!    run serially on the event loop. With a window W > 1 the driver
//!    splits into a two-stage pipeline: the event loop applies batch
//!    N+1 (and the sequencer orders N+2…) while a dedicated flusher
//!    retires batch N's flush — up to W sealed batches in flight, each
//!    sealed by [`StateMachine::seal_batch`] immediately after its
//!    applies and made durable by [`StateMachine::flush_staged`] in
//!    seal order. **The publish-after-ordered-flush invariant is
//!    unchanged**: `published_seq` advances strictly in seqno order as
//!    flushes retire, never as applies run ahead, so no client ever
//!    observes un-flushed state and a crash with up to W batches in
//!    flight loses only unacknowledged suffix operations — recovery
//!    salvages exactly the durable prefix. When the flusher falls
//!    behind, it retires every queued sealed batch as one
//!    [`StateMachine::flush_staged_run`] (after a short anticipatory
//!    gather, [`RsmConfig::flush_gather`]) so the machine can merge
//!    their disk work — publishing still happens per batch, in order,
//!    only after the run that covers it returned.
//! 3. **Batch atomicity.** A state machine whose flush cannot make a
//!    multi-operation batch durable atomically must guard it (the
//!    directory service marks its commit block so a crash mid-flush
//!    makes the replica's state "worthless", forcing recovery to copy
//!    from a peer) — recovery must never observe a *hole*: an applied
//!    suffix with a missing middle. In pipelined mode the same guard
//!    covers each staged batch as it flushes; batches not yet staged
//!    to disk need no guard (nothing of them is on disk at all), and
//!    the driver drains the window before any membership or recovery
//!    path touches durable state.
//! 4. **Snapshots.** `snapshot` returns the applied-cursor and encoded
//!    state read atomically (one critical section), so an installer can
//!    skip every operation the snapshot already covers and replay only
//!    what follows. `install(cursor, state)` must leave the machine
//!    exactly as if it had applied the order up to `cursor`.
//!
//! ## Using it
//!
//! ```ignore
//! struct Counter { /* Mutex<(u64 cursor, u64 value)> */ }
//! impl StateMachine for Counter { /* apply/snapshot/install */ }
//!
//! let replica = Replica::start(&sim, ReplicaDeps { cfg, sim_node, rpc, peer, sm });
//! // any request thread:
//! let reply = replica.submit(ctx, op_bytes)?;   // replicated write
//! replica.read_barrier(ctx)?;                   // then read local state
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
mod machine;
mod recovery;
mod replica;

pub use config::RsmConfig;
pub use machine::{RecoveryInfo, RsmError, StateMachine};
pub use replica::{Replica, ReplicaDeps, ReplicaStats};

//! Static configuration of one replicated service.

use std::time::Duration;

use amoeba_flip::Port;

/// Everything the [`Replica`](crate::Replica) driver needs to know
/// about the deployment: who the replicas are, which ports they use,
/// and the recovery/batching tunables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RsmConfig {
    /// Total number of replicas.
    pub n: usize,
    /// This replica's index in `0..n`.
    pub me: usize,
    /// The FLIP port the replica group forms on.
    pub group_port: Port,
    /// The internal (replica-to-replica) RPC port of each replica,
    /// used by the recovery protocol's exchanges and state transfer.
    pub internal_ports: Vec<Port>,
    /// Most consecutive delivered operations applied as one batch
    /// before the single group-commit [`flush`](crate::StateMachine::flush).
    /// `1` disables apply batching.
    pub apply_batch: usize,
    /// Bounded in-flight window of the two-stage commit pipeline: how
    /// many applied-but-not-yet-flushed batches the event loop may run
    /// ahead of the flusher stage. `1` (the default) is the classic
    /// serial driver — apply, flush, publish, all on the event loop,
    /// bit-identical to before the pipeline existed. Larger windows
    /// overlap apply of batch N+1 with the durable flush of batch N;
    /// `published_seq` still only advances as flushes retire in seqno
    /// order, so the durability contract is unchanged. A machine driven
    /// with a window > 1 must implement
    /// [`seal_batch`](crate::StateMachine::seal_batch) /
    /// [`flush_staged`](crate::StateMachine::flush_staged) (volatile
    /// machines get them for free via the defaults).
    pub flush_window: usize,
    /// Pipelined mode's anticipatory gather: after picking up the first
    /// sealed batch of a run, the flusher waits this long before
    /// draining its queue and submitting, so ops ordered a few
    /// milliseconds apart (a burst of initiators released by the
    /// previous flush) merge into one disk conversation instead of
    /// fragmenting into a run of one plus a run of the rest. A few ms
    /// against a ~30 ms seek is a good trade; `ZERO` disables. Unused
    /// with `flush_window` = 1.
    pub flush_gather: Duration,
    /// Adapt the anticipatory gather to the observed arrival rate
    /// instead of always waiting the full [`flush_gather`]: the driver
    /// tracks an EWMA of inter-submit gaps and the flusher gathers for
    /// twice that, clamped to `[0.5 ms, flush_gather]` — a mostly-idle
    /// service stops taxing every commit the full fixed gather, while a
    /// saturated one still merges its window. The EWMA is surfaced as
    /// [`ReplicaStats::gather_ewma_us`](crate::ReplicaStats::gather_ewma_us).
    ///
    /// [`flush_gather`]: Self::flush_gather
    pub adaptive_gather: bool,
    /// When set, a background checkpointer process calls
    /// [`StateMachine::checkpoint`](crate::StateMachine::checkpoint)
    /// this often while the replica is in normal operation (the group
    /// log's table writeback). `None` (the default) spawns nothing.
    pub checkpoint_interval: Option<Duration>,
    /// Idle time after which [`idle`](crate::StateMachine::idle) runs.
    pub idle_timeout: Duration,
    /// How long a recovering replica waits for an existing group to
    /// answer its join before founding one.
    pub join_timeout: Duration,
    /// How long to wait for a majority to assemble before retrying.
    pub majority_timeout: Duration,
    /// Upper bound of the random dither between recovery retries.
    pub retry_jitter: Duration,
    /// Enable the §3.2 improved rule: a replica that stayed up and
    /// holds the highest sequence number may recover even when the
    /// strict last-set check fails.
    pub improved_recovery: bool,
}

impl RsmConfig {
    /// A standard configuration for replica `me` of `n`, deriving the
    /// group and internal ports from `service` (a name unique to this
    /// service, e.g. `"amoeba.dir"`).
    ///
    /// # Panics
    ///
    /// Panics if `me >= n`.
    pub fn new(service: &str, n: usize, me: usize) -> RsmConfig {
        assert!(me < n, "replica index out of range");
        RsmConfig {
            n,
            me,
            group_port: Port::from_name(&format!("{service}.group")),
            internal_ports: (0..n)
                .map(|i| Port::from_name(&format!("{service}.internal.{i}")))
                .collect(),
            apply_batch: 32,
            flush_window: 1,
            flush_gather: Duration::from_millis(8),
            adaptive_gather: false,
            checkpoint_interval: None,
            idle_timeout: Duration::from_millis(200),
            join_timeout: Duration::from_millis(400),
            majority_timeout: Duration::from_millis(1_500),
            retry_jitter: Duration::from_millis(300),
            improved_recovery: false,
        }
    }

    /// Replicas needed for a majority.
    pub fn majority(&self) -> usize {
        self.n / 2 + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ports_are_distinct_per_replica_and_service() {
        let a = RsmConfig::new("svc.a", 3, 0);
        let b = RsmConfig::new("svc.b", 3, 0);
        assert_ne!(a.group_port, b.group_port);
        assert_ne!(a.internal_ports[0], a.internal_ports[1]);
        assert_ne!(a.internal_ports[0], b.internal_ports[0]);
    }

    #[test]
    fn majority_is_floor_half_plus_one() {
        assert_eq!(RsmConfig::new("s", 3, 0).majority(), 2);
        assert_eq!(RsmConfig::new("s", 2, 0).majority(), 2);
        assert_eq!(RsmConfig::new("s", 5, 4).majority(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_index_panics() {
        let _ = RsmConfig::new("s", 3, 3);
    }
}

//! The generic recovery protocol: paper Fig. 6, built on Skeen's
//! last-process-to-fail algorithm over *mourned sets* — lifted out of
//! the directory server so every [`StateMachine`] gets it for free.
//!
//! A replica runs this when it boots and whenever its group loses a
//! majority. Two conditions must hold before re-entering service
//! (§3.2):
//!
//! 1. the new group has a **majority** (partition safety), and
//! 2. the new group contains the set of replicas that **possibly
//!    performed the last update** (`last = all − mourned ⊆ newgroup`).
//!
//! The replica with the highest logical version then supplies the
//! current state ([`StateMachine::snapshot`] →
//! [`StateMachine::install`]); [`StateMachine::begin_copy`] guards the
//! copy phase against a crash mid-copy. The optional improved rule
//! (§3.2 end) lets a replica that stayed up pair with a rebooted one
//! even when the strict last-set check fails.

use std::time::Duration;

use amoeba_flip::wire::{DecodeError, WireReader, WireWriter};
use amoeba_flip::Payload;
use amoeba_group::{Group, GroupPeer, SeqNo};
use amoeba_rpc::{RpcClient, RpcServer};
use amoeba_sim::Ctx;
use parking_lot::Mutex;

use crate::config::RsmConfig;
use crate::machine::StateMachine;
use crate::replica::DriverShared;

// ---------------------------------------------------------------------
// Internal replica-to-replica protocol.
// ---------------------------------------------------------------------

/// Replica-to-replica messages (recovery info exchange, state
/// transfer). Service-agnostic: the state itself is an opaque
/// [`StateMachine`]-encoded payload.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum InternalMsg {
    /// "exchange info with server s": my mourned set and version.
    Exchange {
        from: u32,
        mourned: Vec<bool>,
        update_seq: u64,
        stayed_up: bool,
    },
    ExchangeReply {
        mourned: Vec<bool>,
        update_seq: u64,
        stayed_up: bool,
    },
    /// "get copies of latest version of the state from s".
    Fetch,
    State {
        instance: u64,
        applied_seq: SeqNo,
        /// The machine's snapshot bytes, shared zero-copy with the
        /// state-transfer wire buffer.
        state: Payload,
    },
    /// The replica cannot answer right now.
    Busy,
}

const I_EXCHANGE: u8 = 1;
const I_EXCHANGE_REPLY: u8 = 2;
const I_FETCH: u8 = 3;
const I_STATE: u8 = 4;
const I_BUSY: u8 = 5;

fn write_bools(w: &mut WireWriter, v: &[bool]) {
    w.u8(v.len() as u8);
    for b in v {
        w.boolean(*b);
    }
}

fn read_bools(r: &mut WireReader<'_>) -> Result<Vec<bool>, DecodeError> {
    let n = r.u8("bools len")? as usize;
    if n > 64 {
        return Err(DecodeError::new("bools len"));
    }
    (0..n).map(|_| r.boolean("bool")).collect()
}

impl InternalMsg {
    pub fn encode(&self) -> Payload {
        let mut w = match self {
            // State transfer can be large: size the buffer up front so
            // the whole snapshot is marshalled in one allocation.
            InternalMsg::State { state, .. } => {
                WireWriter::with_capacity(1 + 8 + 8 + 4 + state.len())
            }
            _ => WireWriter::new(),
        };
        match self {
            InternalMsg::Exchange {
                from,
                mourned,
                update_seq,
                stayed_up,
            } => {
                w.u8(I_EXCHANGE).u32(*from);
                write_bools(&mut w, mourned);
                w.u64(*update_seq).boolean(*stayed_up);
            }
            InternalMsg::ExchangeReply {
                mourned,
                update_seq,
                stayed_up,
            } => {
                w.u8(I_EXCHANGE_REPLY);
                write_bools(&mut w, mourned);
                w.u64(*update_seq).boolean(*stayed_up);
            }
            InternalMsg::Fetch => {
                w.u8(I_FETCH);
            }
            InternalMsg::State {
                instance,
                applied_seq,
                state,
            } => {
                w.u8(I_STATE).u64(*instance).u64(*applied_seq).bytes(state);
            }
            InternalMsg::Busy => {
                w.u8(I_BUSY);
            }
        }
        w.finish_payload()
    }

    pub fn decode(buf: &Payload) -> Result<InternalMsg, DecodeError> {
        let mut r = WireReader::of(buf);
        let m = match r.u8("internal tag")? {
            I_EXCHANGE => InternalMsg::Exchange {
                from: r.u32("from")?,
                mourned: read_bools(&mut r)?,
                update_seq: r.u64("update seq")?,
                stayed_up: r.boolean("stayed up")?,
            },
            I_EXCHANGE_REPLY => InternalMsg::ExchangeReply {
                mourned: read_bools(&mut r)?,
                update_seq: r.u64("update seq")?,
                stayed_up: r.boolean("stayed up")?,
            },
            I_FETCH => InternalMsg::Fetch,
            I_STATE => InternalMsg::State {
                instance: r.u64("instance")?,
                applied_seq: r.u64("applied")?,
                state: r.payload("state")?,
            },
            I_BUSY => InternalMsg::Busy,
            _ => return Err(DecodeError::new("internal tag")),
        };
        r.expect_end("internal trailing")?;
        Ok(m)
    }
}

/// The always-on internal RPC service of one replica.
pub(crate) fn serve_internal<S: StateMachine>(
    ctx: &Ctx,
    srv: &RpcServer,
    sm: &S,
    shared: &Mutex<DriverShared>,
) {
    loop {
        let incoming = srv.getreq(ctx);
        let reply = match InternalMsg::decode(&incoming.data) {
            Ok(InternalMsg::Exchange { .. }) => {
                let info = sm.recovery_info();
                InternalMsg::ExchangeReply {
                    mourned: info.mourned,
                    update_seq: info.update_seq,
                    stayed_up: shared.lock().stayed_up,
                }
            }
            Ok(InternalMsg::Fetch) => {
                // The machine reads cursor + state in one critical
                // section, so the installer can skip exactly the
                // operations the snapshot covers.
                let (applied_seq, state) = sm.snapshot(ctx);
                let instance = {
                    let shared = shared.lock();
                    shared.group.as_ref().map(|g| g.instance_id()).unwrap_or(0)
                };
                InternalMsg::State {
                    instance,
                    applied_seq,
                    state,
                }
            }
            _ => InternalMsg::Busy,
        };
        srv.putrep(&incoming, reply.encode());
    }
}

// ---------------------------------------------------------------------
// The Fig. 6 recovery loop.
// ---------------------------------------------------------------------

/// Runs recovery until this replica may serve again; returns the
/// joined (or created) group.
pub(crate) fn run_recovery<S: StateMachine>(
    ctx: &Ctx,
    sm: &S,
    cfg: &RsmConfig,
    shared: &Mutex<DriverShared>,
    peer: &GroupPeer,
    rpc: &RpcClient,
) -> Group {
    loop {
        // "re-join server group or create it". Join patience grows with
        // the replica index so concurrent cold boots converge on
        // replica 0's instance instead of racing singleton groups.
        let patience = cfg.join_timeout + cfg.join_timeout / 2 * (cfg.me as u32);
        let group = match peer.join(ctx, cfg.group_port, cfg.me as u64, patience) {
            Ok(g) => {
                ctx.trace(format!(
                    "rsm-recovery[{}]: joined instance {}",
                    cfg.me,
                    g.instance_id()
                ));
                g
            }
            Err(_) => {
                let g = peer.create(cfg.group_port, cfg.me as u64);
                ctx.trace(format!(
                    "rsm-recovery[{}]: created instance {}",
                    cfg.me,
                    g.instance_id()
                ));
                g
            }
        };

        // "while (minority && !timeout) GetInfoGroup(&group_state)".
        let deadline = ctx.now() + cfg.majority_timeout;
        let majority = loop {
            match group.info() {
                Ok(info) if info.view.len() >= cfg.majority() && !info.failed => break true,
                Ok(_) => {}
                Err(_) => break false,
            }
            if ctx.now() >= deadline {
                break false;
            }
            ctx.sleep(Duration::from_millis(50));
        };
        if !majority {
            // "if (minority) try again; leave group and retry".
            ctx.trace(format!("rsm-recovery[{}]: no majority, retrying", cfg.me));
            group.leave(ctx);
            retry_sleep(ctx, cfg);
            continue;
        }
        ctx.trace(format!("rsm-recovery[{}]: majority reached", cfg.me));

        // Drain membership events so the view is settled for us.
        while group.pending_events() > 0 {
            let _ = group.recv_timeout(ctx, Duration::from_millis(1));
        }

        // Skeen's algorithm: exchange mourned sets and versions. If the
        // last set is not yet covered, Fig. 6 "tries again, waiting for
        // servers from the last set to join the group" — so retry the
        // exchange within the same group for a while before giving up
        // and rebuilding from scratch.
        let skeen_deadline = ctx.now() + cfg.majority_timeout * 2;
        let outcome = loop {
            let (my_mourned, my_seq, my_stayed) = {
                let info = sm.recovery_info();
                let mut mourned = info.mourned;
                mourned.resize(cfg.n, false);
                (mourned, info.update_seq, shared.lock().stayed_up)
            };
            let mut mourned = my_mourned;
            let mut newgroup = vec![false; cfg.n];
            newgroup[cfg.me] = true;
            let mut seqs: Vec<Option<(u64, bool)>> = vec![None; cfg.n];
            seqs[cfg.me] = Some((my_seq, my_stayed));

            let members: Vec<usize> = match group.info() {
                Ok(i) if !i.failed => i
                    .view
                    .members
                    .iter()
                    .map(|m| m.tag as usize)
                    .filter(|t| *t != cfg.me && *t < cfg.n)
                    .collect(),
                _ => break None,
            };
            for s in members {
                let req = InternalMsg::Exchange {
                    from: cfg.me as u32,
                    mourned: mourned.clone(),
                    update_seq: my_seq,
                    stayed_up: my_stayed,
                };
                match rpc.trans(ctx, cfg.internal_ports[s], req.encode()) {
                    Ok(bytes) => {
                        if let Ok(InternalMsg::ExchangeReply {
                            mourned: theirs,
                            update_seq,
                            stayed_up,
                        }) = InternalMsg::decode(&bytes)
                        {
                            // "newgroup[s] = 1; SequenceNo[s] = SeqNr;
                            //  mourned set += received mourned set".
                            newgroup[s] = true;
                            seqs[s] = Some((update_seq, stayed_up));
                            for (i, m) in theirs.iter().enumerate() {
                                if *m && i < cfg.n {
                                    mourned[i] = true;
                                }
                            }
                        }
                    }
                    Err(_) => { /* unreachable member: not added */ }
                }
            }

            // A replica we actually reached is evidently not dead: it
            // must not remain mourned (a mourned vector records who
            // crashed *before* its owner, not who is dead now).
            for (i, in_group) in newgroup.iter().enumerate() {
                if *in_group {
                    mourned[i] = false;
                }
            }

            // "last = all servers − mourned set;
            //  if (last is not subset of new group) try again".
            let last: Vec<usize> = (0..cfg.n).filter(|i| !mourned[*i]).collect();
            let last_ok = last.iter().all(|i| newgroup[*i]);
            let improved_ok = if last_ok {
                true
            } else if cfg.improved_recovery {
                // §3.2: a replica that stayed up holds every update the
                // missing replicas could have performed, provided it
                // has the highest version among the assembled group.
                let max_seq = seqs.iter().flatten().map(|(s, _)| *s).max().unwrap_or(0);
                seqs.iter()
                    .flatten()
                    .any(|(s, stayed)| *stayed && *s >= max_seq)
            } else {
                false
            };
            if improved_ok {
                break Some((newgroup, seqs));
            }
            ctx.trace(format!(
                "rsm-recovery[{}]: last set {:?} not in newgroup {:?}; waiting",
                cfg.me, last, newgroup
            ));
            if ctx.now() >= skeen_deadline {
                break None;
            }
            // Wait for last-set replicas to join this group, then retry.
            ctx.sleep(Duration::from_millis(150));
            while group.pending_events() > 0 {
                let _ = group.recv_timeout(ctx, Duration::from_millis(1));
            }
        };
        let (newgroup, seqs) = match outcome {
            Some(v) => v,
            None => {
                group.leave(ctx);
                retry_sleep(ctx, cfg);
                continue;
            }
        };

        // "s = HighestSeq(SequenceNo); get copies from s".
        let my_seq = seqs[cfg.me].map(|(s, _)| s).unwrap_or(0);
        let (best, best_seq) = seqs
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.map(|(seq, _)| (i, seq)))
            .max_by_key(|(i, seq)| (*seq, usize::MAX - *i))
            .expect("at least ourselves");
        if best != cfg.me && best_seq > my_seq {
            // Durably mark the copy phase first (crash-mid-copy guard).
            sm.begin_copy(ctx);
            if !fetch_state(ctx, sm, cfg, shared, rpc, best, group.instance_id()) {
                group.leave(ctx);
                retry_sleep(ctx, cfg);
                continue;
            }
        } else {
            // We are (among) the most current: align both cursors —
            // the driver's published cursor *and* the machine's
            // applied cursor — with the new instance's order so far.
            // The instance's sequence numbers restart, so a cursor
            // carried over from the previous instance would make our
            // snapshots over-claim coverage and fetching peers would
            // skip real operations.
            if let Ok(hc) = group.info().map(|i| i.highest_contiguous) {
                sm.align_cursor(ctx, hc);
                shared.lock().published_seq = hc;
            }
        }

        ctx.trace(format!(
            "rsm-recovery[{}]: entering normal operation",
            cfg.me
        ));
        // "write commit block; enter normal operation".
        sm.enter_service(ctx, &newgroup);
        return group;
    }
}

fn retry_sleep(ctx: &Ctx, cfg: &RsmConfig) {
    let jitter = cfg.retry_jitter.as_nanos() as u64;
    let d = ctx.with_rng(|r| r.next_below(jitter.max(1)));
    ctx.sleep(Duration::from_millis(50) + Duration::from_nanos(d));
}

/// Fetches the full state from replica `best` and installs it.
fn fetch_state<S: StateMachine>(
    ctx: &Ctx,
    sm: &S,
    cfg: &RsmConfig,
    shared: &Mutex<DriverShared>,
    rpc: &RpcClient,
    best: usize,
    my_instance: u64,
) -> bool {
    let bytes = match rpc.trans(ctx, cfg.internal_ports[best], InternalMsg::Fetch.encode()) {
        Ok(b) => b,
        Err(_) => return false,
    };
    let (instance, applied, state) = match InternalMsg::decode(&bytes) {
        Ok(InternalMsg::State {
            instance,
            applied_seq,
            state,
        }) => (instance, applied_seq, state),
        _ => return false,
    };
    // Only skip replay of already-covered operations when the snapshot
    // is from the instance we joined.
    let cursor = if instance == my_instance { applied } else { 0 };
    if !sm.install(ctx, cursor, &state) {
        return false;
    }
    shared.lock().published_seq = cursor;
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn internal_msgs_round_trip() {
        let msgs = vec![
            InternalMsg::Exchange {
                from: 1,
                mourned: vec![false, true, false],
                update_seq: 9,
                stayed_up: true,
            },
            InternalMsg::ExchangeReply {
                mourned: vec![true, false],
                update_seq: 3,
                stayed_up: false,
            },
            InternalMsg::Fetch,
            InternalMsg::State {
                instance: 7,
                applied_seq: 5,
                state: vec![1, 2, 3].into(),
            },
            InternalMsg::Busy,
        ];
        for m in msgs {
            assert_eq!(InternalMsg::decode(&m.encode()).unwrap(), m);
        }
    }

    #[test]
    fn decode_garbage_fails_cleanly() {
        assert!(InternalMsg::decode(&Payload::from(vec![77])).is_err());
        assert!(InternalMsg::decode(&Payload::empty()).is_err());
    }
}

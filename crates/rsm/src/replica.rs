//! The generic replication driver: one [`Replica`] per machine runs
//! recovery, the group event loop with apply batching, and the
//! initiator-side blocking primitives.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use amoeba_flip::Payload;
use amoeba_group::{Group, GroupError, GroupEvent, GroupPeer, SeqNo, View};
use amoeba_rpc::{RpcClient, RpcNode, RpcServer};
use amoeba_sim::{Ctx, MailboxRx, MailboxTx, NodeId, Spawn};
use parking_lot::Mutex;

use crate::config::RsmConfig;
use crate::machine::{RsmError, StateMachine};
use crate::recovery::{run_recovery, serve_internal};

/// How a blocked initiator wait ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Wake {
    Applied,
    Aborted,
}

/// Replica operating mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Mode {
    Recovering,
    Normal,
}

/// Per-replica counters of the driver's work, exposed through
/// [`Replica::stats`]. Every [`Replica`] has its own — a machine
/// running several replicated services (or several shards of one) gets
/// one set per group, never aggregated across groups, so a shard's
/// throughput can be read off directly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplicaStats {
    /// Operations submitted through this replica's [`Replica::submit`].
    pub submitted: u64,
    /// Operations this replica applied to its state machine.
    pub applied: u64,
    /// Apply batches (one durable flush each).
    pub batches: u64,
    /// Initiator waits aborted by a group collapse.
    pub aborted: u64,
    /// Completed recovery passes (1 after a clean start).
    pub recoveries: u64,
    /// Pipelined mode: times the event loop blocked because the flush
    /// window was full (apply wanted to run ahead but could not).
    pub window_stalls: u64,
    /// Pipelined mode: high-water mark of in-flight (sealed, not yet
    /// retired) flushes. Stays 0 with `flush_window` = 1.
    pub flush_inflight_hwm: u64,
    /// Pipelined mode: flusher disk conversations. `batches -
    /// flush_runs` is how many sealed batches the queued-submission
    /// merge absorbed. Stays 0 with `flush_window` = 1.
    pub flush_runs: u64,
    /// EWMA of inter-submit gaps in microseconds, tracked when
    /// [`adaptive_gather`](crate::RsmConfig::adaptive_gather) is on
    /// (stays 0 otherwise): the flusher's effective anticipatory gather
    /// is twice this, clamped to `[0.5 ms, flush_gather]`.
    pub gather_ewma_us: u64,
}

/// One sealed batch handed from the event loop to the flusher stage.
struct FlushJob {
    /// Seal token, strictly increasing; [`StateMachine::flush_staged`]
    /// retires tokens in exactly this order.
    token: u64,
    /// Highest sequence number the batch applied.
    last_seq: SeqNo,
    /// Apply replies, published when the flush retires.
    results: Vec<(SeqNo, Payload)>,
    /// Ordering-span context of the batch's first applied message; the
    /// flusher's `rsm.flush` span parents to it.
    trace: amoeba_telemetry::TraceCtx,
}

/// Driver-owned mutable state. Lock discipline: never hold across a
/// blocking simulator call.
pub(crate) struct DriverShared {
    pub mode: Mode,
    pub group: Option<Arc<Group>>,
    /// Work counters for [`Replica::stats`].
    pub stats: ReplicaStats,
    /// Highest sequence number *published*: applied AND covered by a
    /// group-commit flush. Initiators wait on this, never on the raw
    /// apply cursor, so they cannot observe un-flushed state.
    pub published_seq: SeqNo,
    /// Continuously up since last being in a majority configuration.
    pub stayed_up: bool,
    /// Initiators waiting for `published_seq` to reach a target.
    pub waiters: Vec<(SeqNo, MailboxTx<Wake>)>,
    /// Apply replies by sequence number, for the initiating thread.
    pub results: HashMap<SeqNo, Payload>,
    /// Simulated time of the previous `submit`, for the adaptive-gather
    /// EWMA (0 = none yet).
    pub last_submit_us: u64,
}

impl DriverShared {
    fn new() -> DriverShared {
        DriverShared {
            mode: Mode::Recovering,
            group: None,
            stats: ReplicaStats::default(),
            published_seq: 0,
            stayed_up: false,
            waiters: Vec::new(),
            results: HashMap::new(),
            last_submit_us: 0,
        }
    }

    /// Wakes every waiter satisfied by the current published seq.
    fn wake_published(&mut self) {
        let published = self.published_seq;
        let mut kept = Vec::new();
        for (target, tx) in self.waiters.drain(..) {
            if target <= published {
                tx.send(Wake::Applied);
            } else {
                kept.push((target, tx));
            }
        }
        self.waiters = kept;
    }

    /// Aborts every waiter (the group collapsed).
    fn abort_waiters(&mut self) {
        self.stats.aborted += self.waiters.len() as u64;
        for (_, tx) in self.waiters.drain(..) {
            tx.send(Wake::Aborted);
        }
    }

    /// Drops apply results that can no longer be claimed.
    fn prune_results(&mut self) {
        if self.results.len() > 4096 {
            let cutoff = self.published_seq.saturating_sub(2048);
            self.results.retain(|seq, _| *seq > cutoff);
        }
    }
}

/// Everything needed to start one replica of a replicated service.
pub struct ReplicaDeps<S> {
    /// Deployment configuration.
    pub cfg: RsmConfig,
    /// The machine this replica runs on.
    pub sim_node: NodeId,
    /// RPC kernel of the machine (internal recovery traffic).
    pub rpc: RpcNode,
    /// Group-communication kernel of the machine.
    pub peer: GroupPeer,
    /// The service's state machine.
    pub sm: Arc<S>,
}

impl<S> std::fmt::Debug for ReplicaDeps<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ReplicaDeps(replica {})", self.cfg.me)
    }
}

/// Handle to one running replica. Cloning is cheap; any thread on the
/// machine may call [`submit`](Replica::submit) /
/// [`read_barrier`](Replica::read_barrier).
pub struct Replica<S> {
    cfg: RsmConfig,
    sm: Arc<S>,
    shared: Arc<Mutex<DriverShared>>,
    /// Host address of the machine, as the telemetry track id.
    machine: u64,
}

impl<S> Clone for Replica<S> {
    fn clone(&self) -> Self {
        Replica {
            cfg: self.cfg.clone(),
            sm: Arc::clone(&self.sm),
            shared: Arc::clone(&self.shared),
            machine: self.machine,
        }
    }
}

impl<S> std::fmt::Debug for Replica<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Replica({})", self.cfg.me)
    }
}

impl<S: StateMachine> Replica<S> {
    /// Starts all driver processes of one replica: the always-on
    /// internal recovery RPC service and the main (recovery → event
    /// loop) process.
    pub fn start(spawner: &impl Spawn, deps: ReplicaDeps<S>) -> Replica<S> {
        let ReplicaDeps {
            cfg,
            sim_node,
            rpc,
            peer,
            sm,
        } = deps;
        let shared = Arc::new(Mutex::new(DriverShared::new()));
        let replica = Replica {
            cfg: cfg.clone(),
            sm: Arc::clone(&sm),
            shared: Arc::clone(&shared),
            machine: u64::from(rpc.addr().0),
        };

        // Internal (replica-to-replica) RPC service: recovery info
        // exchange and state transfer. Always answered, even while
        // recovering.
        {
            let srv = RpcServer::new(&rpc, cfg.internal_ports[cfg.me]);
            let sm = Arc::clone(&sm);
            let shared = Arc::clone(&shared);
            spawner.spawn_boxed(
                Some(sim_node),
                &format!("rsm{}-internal", cfg.me),
                Box::new(move |ctx| serve_internal(ctx, &srv, &*sm, &shared)),
            );
        }

        // Pipelined commit (flush_window > 1): a dedicated flusher
        // process retires sealed batches in token order while the event
        // loop keeps applying. Window 1 spawns nothing and runs the
        // exact serial code path.
        let pipeline = if cfg.flush_window > 1 {
            let handle = spawner.sim_handle();
            let (job_tx, job_rx) = handle.channel::<FlushJob>();
            let (done_tx, done_rx) = handle.channel::<SeqNo>();
            let sm = Arc::clone(&sm);
            let shared = Arc::clone(&shared);
            let machine = replica.machine;
            let gather = cfg.flush_gather;
            let adaptive = cfg.adaptive_gather;
            spawner.spawn_boxed(
                Some(sim_node),
                &format!("rsm{}-flusher", cfg.me),
                Box::new(move |ctx| {
                    flusher_loop(
                        ctx, &*sm, &shared, machine, gather, adaptive, &job_rx, &done_tx,
                    )
                }),
            );
            Some((job_tx, done_rx))
        } else {
            None
        };

        // Group-log checkpointer: a background process that periodically
        // asks the machine to drain its journal into long-term durable
        // form ([`StateMachine::checkpoint`]). Spawned only when the
        // machine journals; runs concurrently with the event loop and
        // flusher (the machine does its own sim-safe exclusion).
        if let Some(interval) = cfg.checkpoint_interval {
            let sm = Arc::clone(&sm);
            let shared = Arc::clone(&shared);
            let machine = replica.machine;
            spawner.spawn_boxed(
                Some(sim_node),
                &format!("rsm{}-checkpoint", cfg.me),
                Box::new(move |ctx| {
                    let tele = amoeba_telemetry::Telemetry::from_handle(&ctx.handle());
                    loop {
                        ctx.sleep(interval);
                        if shared.lock().mode != Mode::Normal {
                            continue; // recovery owns the disk right now
                        }
                        let span = tele.begin_child(
                            "rsm.checkpoint",
                            machine,
                            amoeba_telemetry::TraceCtx::NONE,
                        );
                        sm.checkpoint(ctx);
                        tele.end(span);
                    }
                }),
            );
        }

        // Main process: recovery, then the group event loop, forever.
        {
            let rpc_client = RpcClient::new(&rpc);
            let replica = replica.clone();
            spawner.spawn_boxed(
                Some(sim_node),
                &format!("rsm{}-main", cfg.me),
                Box::new(move |ctx| replica.main_loop(ctx, &peer, &rpc_client, &pipeline)),
            );
        }
        replica
    }

    /// The state machine this replica drives.
    pub fn machine(&self) -> &Arc<S> {
        &self.sm
    }

    /// Whether the replica is in normal operation.
    pub fn is_normal(&self) -> bool {
        self.shared.lock().mode == Mode::Normal
    }

    /// Highest published (applied + flushed) sequence number.
    pub fn published_seq(&self) -> SeqNo {
        self.shared.lock().published_seq
    }

    /// A snapshot of this replica's work counters. Counters are scoped
    /// to this replica (= this group) alone: services running several
    /// replicas per machine — e.g. one per directory shard — read each
    /// shard's numbers independently.
    pub fn stats(&self) -> ReplicaStats {
        self.shared.lock().stats
    }

    /// The underlying group's engine counters (`None` while recovering
    /// or after the group dissolved).
    pub fn group_stats(&self) -> Option<amoeba_group::GroupStats> {
        let group = self.shared.lock().group.clone();
        group.and_then(|g| g.stats())
    }

    /// Replicates `op` through the group and blocks until this
    /// replica has applied it and made it durable (group commit);
    /// returns the state machine's reply.
    ///
    /// # Errors
    ///
    /// [`RsmError::NotInService`] when recovering or without a
    /// majority; [`RsmError::Aborted`] if the group collapsed while
    /// the operation was in flight.
    pub fn submit(&self, ctx: &Ctx, op: impl Into<Payload>) -> Result<Payload, RsmError> {
        self.submit_traced(ctx, op, amoeba_telemetry::TraceCtx::NONE)
    }

    /// [`submit`](Replica::submit) carrying the caller's causal-trace
    /// context through the group's ordering protocol; every replica's
    /// apply span parents to the sequencer's ordering span.
    ///
    /// # Errors
    ///
    /// Same as [`submit`](Replica::submit).
    pub fn submit_traced(
        &self,
        ctx: &Ctx,
        op: impl Into<Payload>,
        trace: amoeba_telemetry::TraceCtx,
    ) -> Result<Payload, RsmError> {
        let group = self.serving_group()?;
        {
            let mut shared = self.shared.lock();
            shared.stats.submitted += 1;
            if self.cfg.adaptive_gather {
                // Arrival-rate EWMA (α = 1/8). Gaps are clamped to 1 s so
                // one long silence does not poison the estimate for the
                // next burst; `stats.submitted` above keeps this
                // stats-only when the knob is off (bit-identical driver).
                let now_us = ctx.now().as_nanos() / 1_000;
                if shared.last_submit_us != 0 {
                    let gap = now_us.saturating_sub(shared.last_submit_us).min(1_000_000);
                    let e = shared.stats.gather_ewma_us;
                    shared.stats.gather_ewma_us = if e == 0 { gap } else { e - e / 8 + gap / 8 };
                }
                shared.last_submit_us = now_us;
            }
        }
        let seq = group
            .send_traced(ctx, op.into(), trace)
            .map_err(|_| RsmError::NotInService)?;
        self.wait_published(ctx, seq)?;
        let result = { self.shared.lock().results.remove(&seq) };
        result.ok_or(RsmError::ResultLost)
    }

    /// The Fig. 5 read path: drains everything the kernel has ordered
    /// before us, so a subsequent local read observes every update
    /// this replica could know about (one-copy serializability).
    ///
    /// # Errors
    ///
    /// Same as [`submit`](Replica::submit).
    pub fn read_barrier(&self, ctx: &Ctx) -> Result<(), RsmError> {
        let group = self.serving_group()?;
        let target = group
            .info()
            .map_err(|_| RsmError::NotInService)?
            .highest_contiguous;
        self.wait_published(ctx, target)
    }

    /// The serving group handle, after the majority check.
    fn serving_group(&self) -> Result<Arc<Group>, RsmError> {
        let group = {
            let shared = self.shared.lock();
            if shared.mode != Mode::Normal {
                return Err(RsmError::NotInService);
            }
            match &shared.group {
                Some(g) => Arc::clone(g),
                None => return Err(RsmError::NotInService),
            }
        };
        match group.info() {
            Ok(i) if !i.failed && i.view.len() >= self.cfg.majority() => Ok(group),
            _ => Err(RsmError::NotInService),
        }
    }

    fn wait_published(&self, ctx: &Ctx, target: SeqNo) -> Result<(), RsmError> {
        let behind = { self.shared.lock().published_seq < target };
        if !behind {
            return Ok(());
        }
        let (tx, rx) = ctx.handle().channel();
        {
            let mut shared = self.shared.lock();
            if shared.published_seq < target {
                shared.waiters.push((target, tx));
            } else {
                tx.send(Wake::Applied);
            }
        }
        match rx.recv(ctx) {
            Wake::Applied => Ok(()),
            Wake::Aborted => Err(RsmError::Aborted),
        }
    }

    // ------------------------------------------------------------------
    // The driver main process.
    // ------------------------------------------------------------------

    /// Recovery → normal operation → (on collapse) recovery, forever.
    fn main_loop(
        &self,
        ctx: &Ctx,
        peer: &GroupPeer,
        rpc: &RpcClient,
        pipeline: &Option<(MailboxTx<FlushJob>, MailboxRx<SeqNo>)>,
    ) {
        // Load whatever survived the reboot, once.
        self.sm.boot(ctx);
        loop {
            let group = run_recovery(ctx, &*self.sm, &self.cfg, &self.shared, peer, rpc);
            let group = Arc::new(group);
            {
                let mut shared = self.shared.lock();
                shared.group = Some(Arc::clone(&group));
                shared.mode = Mode::Normal;
                shared.stayed_up = true;
                shared.stats.recoveries += 1;
            }
            match pipeline {
                Some((job_tx, done_rx)) => self.event_loop_pipelined(ctx, &group, job_tx, done_rx),
                None => self.event_loop(ctx, &group),
            }
            // Collapsed: back to recovery.
            {
                let mut shared = self.shared.lock();
                shared.mode = Mode::Recovering;
                shared.group = None;
                shared.abort_waiters();
            }
        }
    }

    /// The group event loop. Returns when the group is beyond repair
    /// (full recovery required).
    fn event_loop(&self, ctx: &Ctx, group: &Arc<Group>) {
        loop {
            let first = match group.recv_timeout(ctx, self.cfg.idle_timeout) {
                Some(e) => e,
                None => {
                    self.sm.idle(ctx);
                    continue;
                }
            };
            // Collect a batch: the first event plus every consecutive
            // already-delivered message, up to the apply-batch cap.
            // Membership events and errors end the batch (processed
            // after the batch publishes).
            let cap = self.cfg.apply_batch.max(1);
            let mut msgs: Vec<(SeqNo, Payload, amoeba_telemetry::TraceCtx)> = Vec::new();
            let mut tail: Option<Result<GroupEvent, GroupError>> = None;
            let mut next = Some(first);
            loop {
                match next {
                    Some(Ok(GroupEvent::Message {
                        seq, data, trace, ..
                    })) => msgs.push((seq, data, trace)),
                    Some(other) => {
                        tail = Some(other);
                        break;
                    }
                    None => break,
                }
                if msgs.len() >= cap || group.pending_events() == 0 {
                    break;
                }
                next = group.recv_timeout(ctx, Duration::ZERO);
            }

            // Apply the batch, then one group-commit flush, then
            // publish: waiters never observe un-flushed state.
            if !msgs.is_empty() {
                let tele = amoeba_telemetry::Telemetry::from_handle(&ctx.handle());
                let covered = { self.shared.lock().published_seq };
                let mut results: Vec<(SeqNo, Payload)> = Vec::with_capacity(msgs.len());
                for (seq, data, trace) in &msgs {
                    if *seq <= covered {
                        continue; // already covered by a fetched state snapshot
                    }
                    let span = tele.begin_child("rsm.apply", self.machine, *trace);
                    let reply = self.sm.apply(ctx, *seq, data);
                    tele.end(span);
                    results.push((*seq, reply));
                }
                if !results.is_empty() {
                    self.sm.flush(ctx);
                    let last = results.last().map(|(s, _)| *s).unwrap_or(covered);
                    let mut shared = self.shared.lock();
                    shared.stats.applied += results.len() as u64;
                    shared.stats.batches += 1;
                    shared.published_seq = shared.published_seq.max(last);
                    for (seq, reply) in results {
                        shared.results.insert(seq, reply);
                    }
                    shared.prune_results();
                    shared.wake_published();
                }
            }

            match tail {
                None => {}
                Some(Ok(GroupEvent::Message { .. })) => unreachable!("messages batch above"),
                Some(Ok(GroupEvent::Joined { seq, .. }))
                | Some(Ok(GroupEvent::Left { seq, .. })) => {
                    let view = group.info().map(|i| i.view).unwrap_or_default();
                    self.sm.on_membership(ctx, seq, &self.config_of(&view));
                    let mut shared = self.shared.lock();
                    shared.published_seq = shared.published_seq.max(seq);
                    shared.wake_published();
                }
                Some(Ok(GroupEvent::ResetDone { view, .. })) => {
                    // A reset consumes no slot: record the new
                    // configuration only.
                    self.sm.on_membership(ctx, 0, &self.config_of(&view));
                }
                Some(Err(GroupError::Failed)) => {
                    // Rebuild a majority of the group; if that fails,
                    // fall back to full recovery.
                    match group.reset(ctx, self.cfg.majority(), Duration::from_secs(3)) {
                        Ok(_info) => continue, // ResetDone event follows
                        Err(_) => return,
                    }
                }
                Some(Err(_)) => return, // dead / expelled: recovery
            }
        }
    }

    /// The pipelined group event loop (`flush_window` > 1): applies
    /// batches and hands each, sealed, to the flusher process, running
    /// at most `flush_window` sealed-but-unretired batches ahead.
    /// Publication (waiter wakeups, `published_seq`) happens in the
    /// flusher as flushes retire in seqno order, so the durability
    /// contract is identical to the serial loop — only the overlap of
    /// apply N+1 with the disk time of batch N is new. Every
    /// non-message path (idle, membership, reset, collapse) drains the
    /// window first, so recovery and commit-block writers never race a
    /// staged flush. Returns when the group is beyond repair.
    fn event_loop_pipelined(
        &self,
        ctx: &Ctx,
        group: &Arc<Group>,
        job_tx: &MailboxTx<FlushJob>,
        done_rx: &MailboxRx<SeqNo>,
    ) {
        let tele = amoeba_telemetry::Telemetry::from_handle(&ctx.handle());
        let window = self.cfg.flush_window.max(1);
        let mut inflight = 0usize;
        let mut token = 0u64;
        // Local applied cursor: the event loop runs ahead of
        // `published_seq` by up to `window` batches, so the
        // already-covered check must use its own cursor (seeded from
        // what recovery's state fetch covered).
        let mut applied_seq = { self.shared.lock().published_seq };
        let drain = |ctx: &Ctx, inflight: &mut usize| {
            while *inflight > 0 {
                done_rx.recv(ctx);
                *inflight -= 1;
            }
        };
        loop {
            let first = match group.recv_timeout(ctx, self.cfg.idle_timeout) {
                Some(e) => e,
                None => {
                    drain(ctx, &mut inflight);
                    self.sm.idle(ctx);
                    continue;
                }
            };
            // Batch collection, identical to the serial loop.
            let cap = self.cfg.apply_batch.max(1);
            let mut msgs: Vec<(SeqNo, Payload, amoeba_telemetry::TraceCtx)> = Vec::new();
            let mut tail: Option<Result<GroupEvent, GroupError>> = None;
            let mut next = Some(first);
            loop {
                match next {
                    Some(Ok(GroupEvent::Message {
                        seq, data, trace, ..
                    })) => msgs.push((seq, data, trace)),
                    Some(other) => {
                        tail = Some(other);
                        break;
                    }
                    None => break,
                }
                if msgs.len() >= cap || group.pending_events() == 0 {
                    break;
                }
                next = group.recv_timeout(ctx, Duration::ZERO);
            }

            // Retire any flushes that completed while we were applying
            // or waiting — without blocking.
            while inflight > 0 && done_rx.try_recv().is_some() {
                inflight -= 1;
            }

            if !msgs.is_empty() {
                let mut results: Vec<(SeqNo, Payload)> = Vec::with_capacity(msgs.len());
                let mut first_trace = amoeba_telemetry::TraceCtx::NONE;
                for (seq, data, trace) in &msgs {
                    if *seq <= applied_seq {
                        continue; // already covered by a fetched state snapshot
                    }
                    if results.is_empty() {
                        first_trace = *trace;
                    }
                    let span = tele.begin_child("rsm.apply", self.machine, *trace);
                    let reply = self.sm.apply(ctx, *seq, data);
                    tele.end(span);
                    results.push((*seq, reply));
                }
                if !results.is_empty() {
                    let last = results.last().map(|(s, _)| *s).expect("non-empty");
                    applied_seq = last;
                    // Window full: block until the oldest flush retires.
                    while inflight >= window {
                        done_rx.recv(ctx);
                        inflight -= 1;
                        self.shared.lock().stats.window_stalls += 1;
                    }
                    token += 1;
                    self.sm.seal_batch(ctx, token);
                    job_tx.send(FlushJob {
                        token,
                        last_seq: last,
                        results,
                        trace: first_trace,
                    });
                    inflight += 1;
                    {
                        let mut shared = self.shared.lock();
                        shared.stats.flush_inflight_hwm =
                            shared.stats.flush_inflight_hwm.max(inflight as u64);
                    }
                    tele.gauge("rsm.flush_queue", inflight as i64);
                }
            }

            match tail {
                None => {}
                Some(Ok(GroupEvent::Message { .. })) => unreachable!("messages batch above"),
                Some(Ok(GroupEvent::Joined { seq, .. }))
                | Some(Ok(GroupEvent::Left { seq, .. })) => {
                    // Membership writes the durable configuration record:
                    // retire every staged flush first.
                    drain(ctx, &mut inflight);
                    let view = group.info().map(|i| i.view).unwrap_or_default();
                    self.sm.on_membership(ctx, seq, &self.config_of(&view));
                    applied_seq = applied_seq.max(seq);
                    let mut shared = self.shared.lock();
                    shared.published_seq = shared.published_seq.max(seq);
                    shared.wake_published();
                }
                Some(Ok(GroupEvent::ResetDone { view, .. })) => {
                    drain(ctx, &mut inflight);
                    // A reset consumes no slot: record the new
                    // configuration only.
                    self.sm.on_membership(ctx, 0, &self.config_of(&view));
                }
                Some(Err(GroupError::Failed)) => {
                    drain(ctx, &mut inflight);
                    // Rebuild a majority of the group; if that fails,
                    // fall back to full recovery.
                    match group.reset(ctx, self.cfg.majority(), Duration::from_secs(3)) {
                        Ok(_info) => continue, // ResetDone event follows
                        Err(_) => return,
                    }
                }
                Some(Err(_)) => {
                    // Dead / expelled: recovery. The window must be
                    // empty before recovery's copy/install can run.
                    drain(ctx, &mut inflight);
                    return;
                }
            }
        }
    }

    /// Maps a view onto the configuration vector (`config[i]` ⇔ the
    /// replica whose application tag is `i` is a member).
    fn config_of(&self, view: &View) -> Vec<bool> {
        let mut config = vec![false; self.cfg.n];
        for m in &view.members {
            if (m.tag as usize) < self.cfg.n {
                config[m.tag as usize] = true;
            }
        }
        config
    }
}

/// The flusher stage of the pipelined commit: retires sealed batches
/// strictly in token order — one [`StateMachine::flush_staged`] per
/// job — and *publishes* each batch (stats, `published_seq`, results,
/// waiter wakeups) only once its flush completed, so an acknowledged
/// write is durable exactly as in the serial loop. Signals the event
/// loop through `done_tx` after each retirement (its window
/// bookkeeping and drains).
#[allow(clippy::too_many_arguments)] // one call site, spawned by the driver
fn flusher_loop<S: StateMachine>(
    ctx: &Ctx,
    sm: &S,
    shared: &Arc<Mutex<DriverShared>>,
    machine: u64,
    base_gather: Duration,
    adaptive: bool,
    job_rx: &MailboxRx<FlushJob>,
    done_tx: &MailboxTx<SeqNo>,
) {
    let tele = amoeba_telemetry::Telemetry::from_handle(&ctx.handle());
    loop {
        // Queued submission: take every batch sealed while the previous
        // flush was on the disk and retire them as one run — the
        // machine merges their guard/commit blocks and coalesces writes
        // that land in the same region. The event loop's window bound
        // caps how many can be queued, so a run is at most the window.
        let mut jobs = vec![job_rx.recv(ctx)];
        let gather = if adaptive {
            // Wait twice the observed inter-submit gap (clamped to
            // [0.5 ms, base]): long enough that the burst released by
            // the previous flush lands in this run, no longer.
            let ewma = { shared.lock().stats.gather_ewma_us };
            if ewma == 0 {
                base_gather
            } else {
                let base_us = u64::try_from(base_gather.as_micros()).unwrap_or(u64::MAX);
                Duration::from_micros((2 * ewma).clamp(500, base_us.max(500)))
            }
        } else {
            base_gather
        };
        if !gather.is_zero() {
            // Anticipatory gather: initiators released together by the
            // previous flush order their next ops a few milliseconds
            // apart; waiting that long merges them into this run
            // instead of fragmenting it into a run of one plus a run
            // of the rest.
            ctx.sleep(gather);
        }
        while let Some(j) = job_rx.try_recv() {
            jobs.push(j);
        }
        let first = jobs.first().map(|j| j.token).expect("non-empty");
        let last = jobs.last().map(|j| j.token).expect("non-empty");
        let span = tele.begin_child("rsm.flush", machine, jobs[0].trace);
        sm.flush_staged_run(ctx, first, last);
        tele.end(span);
        {
            let mut sh = shared.lock();
            sh.stats.flush_runs += 1;
            for job in &jobs {
                sh.stats.applied += job.results.len() as u64;
                sh.stats.batches += 1;
                sh.published_seq = sh.published_seq.max(job.last_seq);
            }
            for job in &mut jobs {
                for (seq, reply) in std::mem::take(&mut job.results) {
                    sh.results.insert(seq, reply);
                }
            }
            sh.prune_results();
            sh.wake_published();
        }
        for job in jobs {
            done_tx.send(job.last_seq);
        }
    }
}

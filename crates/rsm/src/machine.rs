//! The [`StateMachine`] trait: what a service implements to become a
//! replicated, fault-tolerant service.

use amoeba_flip::Payload;
use amoeba_group::SeqNo;
use amoeba_sim::Ctx;

/// What a replica reports during the recovery protocol's info exchange.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryInfo {
    /// Logical version of this replica's state: monotone across group
    /// incarnations, used to elect the state-transfer source (the
    /// paper's per-directory "sequence number" generalized).
    pub update_seq: u64,
    /// `mourned[i]` is true iff server *i* crashed before this one,
    /// according to this replica's durable configuration record. A
    /// machine with no durable configuration returns all-false (it
    /// mourns no one — it cannot know).
    pub mourned: Vec<bool>,
}

/// Errors surfaced by [`Replica::submit`](crate::Replica::submit) and
/// [`Replica::read_barrier`](crate::Replica::read_barrier).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RsmError {
    /// The replica is recovering, expelled, or its view lacks a
    /// majority — the service must refuse the operation (Fig. 5's
    /// "if (!majority()) return failure").
    NotInService,
    /// The group collapsed while the operation was in flight; its
    /// outcome is unknown (it may or may not survive recovery).
    Aborted,
    /// The operation was applied but its reply was already pruned
    /// (pathologically slow initiator).
    ResultLost,
}

impl std::fmt::Display for RsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RsmError::NotInService => f.write_str("replica not in service (no majority)"),
            RsmError::Aborted => f.write_str("group collapsed mid-operation"),
            RsmError::ResultLost => f.write_str("apply result already pruned"),
        }
    }
}

impl std::error::Error for RsmError {}

/// A deterministic replicated state machine, driven by a
/// [`Replica`](crate::Replica).
///
/// Methods take `&self`: the machine is shared between the driver's
/// event loop, its internal recovery RPC server, and any service
/// request threads, so implementations do their own (fine-grained)
/// locking. The lock discipline every implementation must keep:
/// **never block on simulator I/O while holding a lock** the driver's
/// other processes take.
///
/// See the [crate docs](crate) for the full contract; in brief:
/// `apply` must be deterministic and record `seq` as its applied
/// cursor in the same critical section that mutates state (so
/// `snapshot` is consistent), and effects may be buffered until the
/// next `flush` — the driver publishes results only after `flush`.
pub trait StateMachine: Send + Sync + 'static {
    /// Applies the operation at sequence number `seq` of the total
    /// order and returns the (encoded) reply for the initiating
    /// thread. Durable effects may be deferred to [`flush`](Self::flush).
    fn apply(&self, ctx: &Ctx, seq: SeqNo, op: &Payload) -> Payload;

    /// Group-commit barrier: make every effect of the `apply` calls
    /// since the previous `flush` durable. Called once per batch,
    /// before the driver publishes the batch. Default: no-op (fully
    /// volatile machines rely on their peers for durability).
    fn flush(&self, ctx: &Ctx) {
        let _ = ctx;
    }

    /// Pipelined-commit stage one: called by the event loop, synchronously
    /// right after a batch's `apply` calls (before the next batch is
    /// applied), when the driver runs with a
    /// [`flush_window`](crate::RsmConfig::flush_window) > 1. The machine
    /// must capture everything the batch's durable flush needs — its
    /// effect set, sealed against later applies — under `token`, without
    /// touching the disk. Default: no-op (a fully volatile machine has
    /// nothing to stage).
    fn seal_batch(&self, ctx: &Ctx, token: u64) {
        let _ = (ctx, token);
    }

    /// Pipelined-commit stage two: called by the dedicated flusher
    /// process, in token order, to make the batch sealed under `token`
    /// durable. Runs concurrently with the event loop applying later
    /// batches, so implementations must work only from the sealed
    /// effect set (and their own durable bookkeeping), never from live
    /// RAM state. Default: delegates to [`flush`](Self::flush), which
    /// is correct for machines whose `flush` is a no-op.
    fn flush_staged(&self, ctx: &Ctx, token: u64) {
        let _ = token;
        self.flush(ctx);
    }

    /// Retires the sealed batches `first..=last` as one queued
    /// submission. When the flusher falls behind, several sealed
    /// batches wait in its queue; retiring them in a single call lets
    /// the machine merge their disk work (one guard, one commit block,
    /// coalesced table-block writes) instead of paying a full disk
    /// conversation per batch. Must be exactly equivalent, durably, to
    /// calling [`flush_staged`](Self::flush_staged) once per token in
    /// order — which is the default.
    fn flush_staged_run(&self, ctx: &Ctx, first: u64, last: u64) {
        for token in first..=last {
            self.flush_staged(ctx, token);
        }
    }

    /// Called when the group has been idle for the configured idle
    /// timeout (background maintenance: the directory service flushes
    /// its NVRAM log here, §4.1). In pipelined mode the driver drains
    /// the flush window first, so `idle` never races a staged flush.
    fn idle(&self, ctx: &Ctx) {
        let _ = ctx;
    }

    /// Called periodically by the driver's background checkpointer
    /// process (only spawned when
    /// [`checkpoint_interval`](crate::RsmConfig::checkpoint_interval)
    /// is set): drain journaled commits into their long-term durable
    /// form and advance the journal's tail. Runs concurrently with
    /// applies and staged flushes, so implementations must do their own
    /// sim-safe exclusion against the flush path (and never hold a lock
    /// across the drain's I/O). Default: no-op.
    fn checkpoint(&self, ctx: &Ctx) {
        let _ = ctx;
    }

    /// Called once, at process start, before the first recovery: load
    /// whatever survived the reboot (commit block, tables, NVRAM log).
    fn boot(&self, ctx: &Ctx) {
        let _ = ctx;
    }

    /// State for the recovery info exchange (Skeen's algorithm).
    fn recovery_info(&self) -> RecoveryInfo;

    /// The copy phase of recovery is about to overwrite local state
    /// with a peer's: durably mark the state as in-flux, so a crash
    /// mid-copy is detected at next boot (the paper's `recovering`
    /// commit-block flag, §3.2). Default: no-op.
    fn begin_copy(&self, ctx: &Ctx) {
        let _ = ctx;
    }

    /// Encodes the full current state for transfer to a recovering
    /// peer, together with the applied cursor it corresponds to. The
    /// pair must be read in one critical section: every operation
    /// `<= cursor` is reflected in the bytes, none beyond it.
    fn snapshot(&self, ctx: &Ctx) -> (SeqNo, Payload);

    /// Installs a peer's snapshot, replacing local state wholesale
    /// (and persisting it, if this machine is durable). `cursor` is
    /// the applied cursor the driver resolved for the current group
    /// instance (0 if the snapshot predates it); record it as the
    /// applied cursor. Returns false if the snapshot is malformed.
    fn install(&self, ctx: &Ctx, cursor: SeqNo, snap: &Payload) -> bool;

    /// Recovery determined this replica is (among) the most current
    /// and it is entering a **new group instance**, whose sequence
    /// numbers restart: set the applied cursor to exactly `cursor`
    /// (the new instance's order so far). Without this, a cursor
    /// carried over from a previous instance would make `snapshot`
    /// over-claim coverage and a fetching peer would skip real
    /// operations of the new instance.
    fn align_cursor(&self, ctx: &Ctx, cursor: SeqNo);

    /// Recovery succeeded: durably record the configuration this
    /// replica is now serving in (`config[i]` = server *i* is in the
    /// new group) and clear any copy-in-progress mark. Default: no-op.
    fn enter_service(&self, ctx: &Ctx, config: &[bool]) {
        let _ = (ctx, config);
    }

    /// A membership event was applied at `seq` (0 for a reset, which
    /// consumes no slot): update the durable configuration record and
    /// advance the applied cursor to cover `seq`. Default: no-op — a
    /// volatile machine must still advance its cursor if it implements
    /// snapshots (see `snapshot`); machines that track the cursor
    /// inside `apply` only should override this.
    fn on_membership(&self, ctx: &Ctx, seq: SeqNo, config: &[bool]) {
        let _ = (ctx, seq, config);
    }
}

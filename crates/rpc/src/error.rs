//! RPC error types.

use std::fmt;

use amoeba_flip::Port;

/// Errors surfaced by [`trans`](crate::RpcClient::trans).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RpcError {
    /// No server for the service could be reached.
    Unreachable {
        /// The service that could not be reached.
        service: Port,
        /// How many attempts were made.
        attempts: u32,
    },
}

impl fmt::Display for RpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RpcError::Unreachable { service, attempts } => {
                write!(
                    f,
                    "no server reachable for {service} after {attempts} attempts"
                )
            }
        }
    }
}

impl std::error::Error for RpcError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_service() {
        let e = RpcError::Unreachable {
            service: Port::from_raw(0xab),
            attempts: 3,
        };
        let s = e.to_string();
        assert!(s.contains("after 3 attempts"), "{s}");
    }
}

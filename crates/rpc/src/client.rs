//! The client side of Amoeba RPC: `trans`.

use std::time::Duration;

use amoeba_flip::{Dest, HostAddr, Payload, Port};
use amoeba_sim::Ctx;

use crate::error::RpcError;
use crate::msg::RpcMsg;
use crate::node::{CallEvent, RpcNode, RPC_PORT};

/// Tunables for the client transaction logic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RpcParams {
    /// How long to wait for a HEREIS after broadcasting a locate.
    pub locate_timeout: Duration,
    /// How long to wait for a reply before suspecting a server crash.
    pub reply_timeout: Duration,
    /// Attempts (locates + sends) before giving up.
    pub max_attempts: u32,
    /// Upper bound of the random dither before a re-locate, which keeps
    /// competing clients from thundering in lockstep.
    pub relocate_jitter: Duration,
}

impl Default for RpcParams {
    fn default() -> Self {
        RpcParams {
            locate_timeout: Duration::from_millis(60),
            reply_timeout: Duration::from_millis(500),
            max_attempts: 200,
            relocate_jitter: Duration::from_millis(3),
        }
    }
}

/// An RPC client bound to one machine's kernel.
///
/// `trans` implements the paper's behaviour: consult the kernel port cache,
/// otherwise broadcast-locate and take the first HEREIS; on NOTHERE evict
/// the server from the cache and try another (or re-locate); on silence
/// evict and retry.
#[derive(Debug, Clone)]
pub struct RpcClient {
    node: RpcNode,
    params: RpcParams,
}

impl RpcClient {
    /// Creates a client on `node` with default parameters.
    pub fn new(node: &RpcNode) -> Self {
        Self::with_params(node, RpcParams::default())
    }

    /// Creates a client with explicit parameters.
    pub fn with_params(node: &RpcNode, params: RpcParams) -> Self {
        RpcClient {
            node: node.clone(),
            params,
        }
    }

    /// The host this client runs on.
    pub fn addr(&self) -> HostAddr {
        self.node.addr()
    }

    /// Performs one request/reply transaction with any server of `service`.
    ///
    /// The request is encoded once by the caller; retries re-send the
    /// same shared buffer without copying it.
    ///
    /// # Errors
    ///
    /// [`RpcError::Unreachable`] if no server answered within
    /// `max_attempts` tries.
    pub fn trans(
        &self,
        ctx: &Ctx,
        service: Port,
        request: impl Into<Payload>,
    ) -> Result<Payload, RpcError> {
        self.trans_traced(ctx, service, request, amoeba_telemetry::current_ctx())
    }

    /// [`trans`](RpcClient::trans) carrying a causal-trace context as
    /// out-of-band packet metadata; the server sees it on
    /// [`IncomingRequest::trace`](crate::IncomingRequest). A `NONE`
    /// context makes this identical to `trans`.
    pub fn trans_traced(
        &self,
        ctx: &Ctx,
        service: Port,
        request: impl Into<Payload>,
        trace: amoeba_telemetry::TraceCtx,
    ) -> Result<Payload, RpcError> {
        let request = request.into();
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            if attempts > self.params.max_attempts {
                return Err(RpcError::Unreachable { service, attempts });
            }
            let server = match self.node.cache_first(service) {
                Some(s) => s,
                None => match self.locate(ctx, service) {
                    Some(s) => s,
                    None => continue, // locate timed out; try again
                },
            };
            let (tid, rx) = self.node.register_call();
            let tags = if trace.is_some() {
                vec![(0, trace)]
            } else {
                Vec::new()
            };
            self.node.stack().send_traced(
                Dest::Unicast(server),
                RPC_PORT,
                RpcMsg::Request {
                    service,
                    client: self.node.addr(),
                    tid,
                    data: request.clone(),
                }
                .encode(),
                tags,
            );
            match rx.recv_timeout(ctx, self.params.reply_timeout) {
                Some(CallEvent::Reply(data)) => return Ok(data),
                Some(CallEvent::NotHere) => {
                    // Kernel said nobody is listening there right now.
                    self.node.cache_remove(service, server);
                }
                None => {
                    // Silence: the server host probably crashed.
                    self.node.unregister_call(tid);
                    self.node.cache_remove(service, server);
                }
            }
        }
    }

    /// Expanding-ring locate: broadcasts with a growing hop limit
    /// (local segment first, then 2, 4, ... router hops up to the
    /// topology diameter) and takes the first HEREIS. Nearby servers
    /// answer without the broadcast ever crossing a router; remote ones
    /// are found without storming every segment on every locate. On a
    /// flat network this is exactly one full broadcast, as before.
    fn locate(&self, ctx: &Ctx, service: Port) -> Option<HostAddr> {
        // Dither to avoid lockstep among competing clients.
        let jitter_nanos = self.params.relocate_jitter.as_nanos() as u64;
        if jitter_nanos > 0 {
            let d = ctx.with_rng(|r| r.next_below(jitter_nanos));
            ctx.sleep(Duration::from_nanos(d));
        }
        let max = self.node.stack().max_hops();
        let mut ttl = 1u8;
        loop {
            let (lid, rx) = self.node.register_locate();
            self.node.stack().send_with_ttl(
                Dest::Broadcast,
                RPC_PORT,
                RpcMsg::Locate {
                    service,
                    client: self.node.addr(),
                    locate_id: lid,
                }
                .encode(),
                ttl,
            );
            let r = rx.recv_timeout(ctx, self.params.locate_timeout);
            self.node.unregister_locate(lid);
            if r.is_some() || ttl >= max {
                return r;
            }
            ttl = ttl.saturating_mul(2).min(max);
        }
    }
}

//! The server side of Amoeba RPC: `getreq` / `putrep`.

use amoeba_flip::{Dest, Payload, Port};
use amoeba_sim::Ctx;

use crate::msg::RpcMsg;
use crate::node::{IncomingRequest, RpcNode, RPC_PORT};

/// A server's attachment to a service port.
///
/// Each server *thread* loops `getreq` → handle → `putrep`, exactly as in
/// Amoeba. While no thread of a machine is blocked in `getreq`, that
/// machine's kernel answers requests with NOTHERE and stays silent on
/// locates — the load-spreading mechanism measured in the paper's Fig. 8.
#[derive(Debug, Clone)]
pub struct RpcServer {
    node: RpcNode,
    service: Port,
}

impl RpcServer {
    /// Registers `service` on the node and returns the server handle.
    pub fn new(node: &RpcNode, service: Port) -> Self {
        node.register_service(service);
        RpcServer {
            node: node.clone(),
            service,
        }
    }

    /// The service port this server answers on.
    pub fn service(&self) -> Port {
        self.service
    }

    /// The host this server runs on.
    pub fn addr(&self) -> amoeba_flip::HostAddr {
        self.node.addr()
    }

    /// Blocks until a request arrives for this service.
    pub fn getreq(&self, ctx: &Ctx) -> IncomingRequest {
        let (tx, rx) = ctx.handle().channel();
        self.node.push_listener(self.service, tx);
        rx.recv(ctx)
    }

    /// Sends the reply for a previously received request. The reply
    /// bytes are shared, not copied, on their way to the wire.
    pub fn putrep(&self, req: &IncomingRequest, data: impl Into<Payload>) {
        let tags = if req.trace.is_some() {
            vec![(0, req.trace)]
        } else {
            Vec::new()
        };
        self.node.stack().send_traced(
            Dest::Unicast(req.client),
            RPC_PORT,
            RpcMsg::Reply {
                tid: req.tid,
                data: data.into(),
            }
            .encode(),
            tags,
        );
    }
}

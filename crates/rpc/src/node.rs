//! The per-host RPC "kernel": dispatcher process, port cache, call tables.
//!
//! In Amoeba the kernel owns RPC port handling: it answers locate
//! broadcasts with HEREIS when a server thread is listening, hands requests
//! to waiting threads, and answers NOTHERE when none is — the behaviour the
//! paper's §4.2 server-selection analysis (Fig. 8) hinges on. [`RpcNode`]
//! reproduces exactly that, one instance per simulated machine.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use amoeba_flip::{Dest, HostAddr, NodeStack, Payload, Port};
use amoeba_sim::{MailboxRx, MailboxTx, NodeId, SimHandle, Spawn};
use parking_lot::Mutex;

use crate::msg::RpcMsg;

/// The well-known FLIP port all RPC kernel traffic uses.
pub const RPC_PORT: Port = Port::from_raw(0x0052_5043); // "RPC"

/// A request handed to a server thread by [`getreq`](crate::RpcServer::getreq).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IncomingRequest {
    /// The service port the request was addressed to.
    pub service: Port,
    /// The client host to reply to.
    pub client: HostAddr,
    /// Transaction id to echo in the reply.
    pub tid: u64,
    /// Marshalled request bytes (shared, zero-copy).
    pub data: Payload,
    /// Causal-trace context from the request packet ([`TraceCtx::NONE`]
    /// when the client is untraced); `putrep` echoes it onto the reply.
    pub trace: amoeba_telemetry::TraceCtx,
}

/// Events delivered to a blocked client transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum CallEvent {
    Reply(Payload),
    NotHere,
}

#[derive(Default)]
struct ServiceState {
    /// Server threads currently blocked in `getreq`, FIFO.
    waiting: VecDeque<MailboxTx<IncomingRequest>>,
}

/// The kernel-level port cache: service port → known servers, in the order
/// their HEREIS replies arrived (the paper's "first server that replied").
#[derive(Default)]
struct PortCache {
    map: HashMap<Port, Vec<HostAddr>>,
}

impl PortCache {
    fn add(&mut self, service: Port, server: HostAddr) {
        let v = self.map.entry(service).or_default();
        if !v.contains(&server) {
            v.push(server);
        }
    }

    fn remove(&mut self, service: Port, server: HostAddr) {
        if let Some(v) = self.map.get_mut(&service) {
            v.retain(|s| *s != server);
        }
    }

    fn first(&self, service: Port) -> Option<HostAddr> {
        self.map.get(&service).and_then(|v| v.first().copied())
    }
}

struct NodeInner {
    services: HashMap<Port, ServiceState>,
    calls: HashMap<u64, MailboxTx<CallEvent>>,
    locates: HashMap<u64, MailboxTx<HostAddr>>,
    cache: PortCache,
    next_id: u64,
}

/// One machine's RPC kernel. Cheap to clone; all clones are the same node.
///
/// Create with [`RpcNode::start`], which spawns the dispatcher process on
/// the machine's simulation node so that it dies (with its tables) when the
/// machine crashes.
#[derive(Clone)]
pub struct RpcNode {
    stack: NodeStack,
    handle: SimHandle,
    inner: Arc<Mutex<NodeInner>>,
}

impl std::fmt::Debug for RpcNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RpcNode({})", self.stack.addr())
    }
}

impl RpcNode {
    /// Binds the RPC port and starts the dispatcher on `sim_node`.
    pub fn start(spawner: &impl Spawn, sim_node: NodeId, stack: NodeStack) -> RpcNode {
        let handle = spawner.sim_handle();
        let rx = stack.bind(RPC_PORT);
        let node = RpcNode {
            stack,
            handle,
            inner: Arc::new(Mutex::new(NodeInner {
                services: HashMap::new(),
                calls: HashMap::new(),
                locates: HashMap::new(),
                cache: PortCache::default(),
                next_id: 1,
            })),
        };
        let dispatcher = node.clone();
        spawner.spawn_boxed(
            Some(sim_node),
            &format!("rpc-dispatch@{}", node.stack.addr()),
            Box::new(move |ctx| dispatcher.dispatch_loop(ctx, rx)),
        );
        node
    }

    /// This machine's host address.
    pub fn addr(&self) -> HostAddr {
        self.stack.addr()
    }

    /// The underlying network stack.
    pub fn stack(&self) -> &NodeStack {
        &self.stack
    }

    fn dispatch_loop(&self, ctx: &amoeba_sim::Ctx, rx: MailboxRx<amoeba_flip::Packet>) {
        loop {
            let pkt = rx.recv(ctx);
            let msg = match RpcMsg::decode(&pkt.payload) {
                Ok(m) => m,
                Err(_) => continue, // malformed packets are dropped
            };
            let rx_trace = pkt
                .trace
                .first()
                .map(|&(_, c)| c)
                .unwrap_or(amoeba_telemetry::TraceCtx::NONE);
            match msg {
                RpcMsg::Locate {
                    service,
                    client,
                    locate_id,
                } => {
                    let listening = {
                        let inner = self.inner.lock();
                        inner
                            .services
                            .get(&service)
                            .map(|s| !s.waiting.is_empty())
                            .unwrap_or(false)
                    };
                    if listening {
                        self.stack.send(
                            Dest::Unicast(client),
                            RPC_PORT,
                            RpcMsg::HereIs {
                                service,
                                server: self.stack.addr(),
                                locate_id,
                            }
                            .encode(),
                        );
                    }
                }
                RpcMsg::HereIs {
                    service,
                    server,
                    locate_id,
                } => {
                    let waiter = {
                        let mut inner = self.inner.lock();
                        inner.cache.add(service, server);
                        inner.locates.remove(&locate_id)
                    };
                    if let Some(w) = waiter {
                        w.send(server);
                    }
                }
                RpcMsg::Request {
                    service,
                    client,
                    tid,
                    data,
                } => {
                    let listener = {
                        let mut inner = self.inner.lock();
                        inner
                            .services
                            .get_mut(&service)
                            .and_then(|s| s.waiting.pop_front())
                    };
                    match listener {
                        Some(w) => w.send(IncomingRequest {
                            service,
                            client,
                            tid,
                            data,
                            trace: rx_trace,
                        }),
                        None => self.stack.send(
                            Dest::Unicast(client),
                            RPC_PORT,
                            RpcMsg::NotHere { tid, service }.encode(),
                        ),
                    }
                }
                RpcMsg::Reply { tid, data } => {
                    let waiter = self.inner.lock().calls.remove(&tid);
                    if let Some(w) = waiter {
                        w.send(CallEvent::Reply(data));
                    }
                }
                RpcMsg::NotHere { tid, .. } => {
                    let waiter = self.inner.lock().calls.remove(&tid);
                    if let Some(w) = waiter {
                        w.send(CallEvent::NotHere);
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Hooks used by RpcServer / RpcClient.
    // ------------------------------------------------------------------

    pub(crate) fn register_service(&self, service: Port) {
        self.inner.lock().services.entry(service).or_default();
    }

    pub(crate) fn push_listener(&self, service: Port, tx: MailboxTx<IncomingRequest>) {
        self.inner
            .lock()
            .services
            .entry(service)
            .or_default()
            .waiting
            .push_back(tx);
    }

    pub(crate) fn register_call(&self) -> (u64, MailboxRx<CallEvent>) {
        let (tx, rx) = self.handle.channel();
        let mut inner = self.inner.lock();
        let tid = inner.next_id;
        inner.next_id += 1;
        inner.calls.insert(tid, tx);
        (tid, rx)
    }

    pub(crate) fn unregister_call(&self, tid: u64) {
        self.inner.lock().calls.remove(&tid);
    }

    pub(crate) fn register_locate(&self) -> (u64, MailboxRx<HostAddr>) {
        let (tx, rx) = self.handle.channel();
        let mut inner = self.inner.lock();
        let lid = inner.next_id;
        inner.next_id += 1;
        inner.locates.insert(lid, tx);
        (lid, rx)
    }

    pub(crate) fn unregister_locate(&self, lid: u64) {
        self.inner.lock().locates.remove(&lid);
    }

    pub(crate) fn cache_first(&self, service: Port) -> Option<HostAddr> {
        self.inner.lock().cache.first(service)
    }

    pub(crate) fn cache_remove(&self, service: Port, server: HostAddr) {
        self.inner.lock().cache.remove(service, server);
    }

    /// Test/diagnostic view of the cached servers for a service.
    pub fn cached_servers(&self, service: Port) -> Vec<HostAddr> {
        self.inner
            .lock()
            .cache
            .map
            .get(&service)
            .cloned()
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn port_cache_orders_and_dedupes() {
        let mut c = PortCache::default();
        let p = Port::from_name("s");
        c.add(p, HostAddr(2));
        c.add(p, HostAddr(1));
        c.add(p, HostAddr(2));
        assert_eq!(c.first(p), Some(HostAddr(2)));
        c.remove(p, HostAddr(2));
        assert_eq!(c.first(p), Some(HostAddr(1)));
        c.remove(p, HostAddr(1));
        assert_eq!(c.first(p), None);
    }
}

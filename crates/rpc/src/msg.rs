//! RPC wire messages and their codec.

use amoeba_flip::wire::{DecodeError, WireReader, WireWriter};
use amoeba_flip::{HostAddr, Payload, Port};

/// Everything that travels on the per-host RPC port.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RpcMsg {
    /// Broadcast by a client kernel: "who serves `service`?"
    Locate {
        /// The service port being located.
        service: Port,
        /// Who is asking (replies go here).
        client: HostAddr,
        /// Correlates HEREIS replies with the locate.
        locate_id: u64,
    },
    /// Unicast answer to a locate: "I am listening on `service`".
    HereIs {
        /// The located service port.
        service: Port,
        /// The answering server host.
        server: HostAddr,
        /// Echoed locate id.
        locate_id: u64,
    },
    /// A client request for one transaction.
    Request {
        /// Target service port.
        service: Port,
        /// Requesting host (the reply destination).
        client: HostAddr,
        /// Transaction id, unique per client host.
        tid: u64,
        /// Marshalled request bytes (shared, zero-copy).
        data: Payload,
    },
    /// The server's answer to a request.
    Reply {
        /// Echoed transaction id.
        tid: u64,
        /// Marshalled reply bytes (shared, zero-copy).
        data: Payload,
    },
    /// Kernel-level refusal: no thread is listening on the port right now.
    NotHere {
        /// Echoed transaction id.
        tid: u64,
        /// The service that was not listening.
        service: Port,
    },
}

const TAG_LOCATE: u8 = 1;
const TAG_HEREIS: u8 = 2;
const TAG_REQUEST: u8 = 3;
const TAG_REPLY: u8 = 4;
const TAG_NOTHERE: u8 = 5;

impl RpcMsg {
    /// Exact encoded size, used as the writer's single-allocation hint.
    fn encoded_len(&self) -> usize {
        match self {
            RpcMsg::Locate { .. } | RpcMsg::HereIs { .. } => 1 + 8 + 4 + 8,
            RpcMsg::Request { data, .. } => 1 + 8 + 4 + 8 + 4 + data.len(),
            RpcMsg::Reply { data, .. } => 1 + 8 + 4 + data.len(),
            RpcMsg::NotHere { .. } => 1 + 8 + 8,
        }
    }

    /// Encodes into a shared buffer in a single allocation.
    pub fn encode(&self) -> Payload {
        let mut w = WireWriter::with_capacity(self.encoded_len());
        match self {
            RpcMsg::Locate {
                service,
                client,
                locate_id,
            } => {
                w.u8(TAG_LOCATE)
                    .u64(service.as_raw())
                    .u32(client.0)
                    .u64(*locate_id);
            }
            RpcMsg::HereIs {
                service,
                server,
                locate_id,
            } => {
                w.u8(TAG_HEREIS)
                    .u64(service.as_raw())
                    .u32(server.0)
                    .u64(*locate_id);
            }
            RpcMsg::Request {
                service,
                client,
                tid,
                data,
            } => {
                w.u8(TAG_REQUEST)
                    .u64(service.as_raw())
                    .u32(client.0)
                    .u64(*tid)
                    .bytes(data);
            }
            RpcMsg::Reply { tid, data } => {
                w.u8(TAG_REPLY).u64(*tid).bytes(data);
            }
            RpcMsg::NotHere { tid, service } => {
                w.u8(TAG_NOTHERE).u64(*tid).u64(service.as_raw());
            }
        }
        debug_assert_eq!(w.len(), self.encoded_len());
        w.finish_payload()
    }

    /// Decodes from a shared wire buffer; embedded payload bytes come
    /// back as zero-copy slices of `buf`.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on truncation, unknown tags, or trailing
    /// garbage.
    pub fn decode(buf: &Payload) -> Result<RpcMsg, DecodeError> {
        let mut r = WireReader::of(buf);
        let msg = match r.u8("rpc tag")? {
            TAG_LOCATE => RpcMsg::Locate {
                service: Port::from_raw(r.u64("locate service")?),
                client: HostAddr(r.u32("locate client")?),
                locate_id: r.u64("locate id")?,
            },
            TAG_HEREIS => RpcMsg::HereIs {
                service: Port::from_raw(r.u64("hereis service")?),
                server: HostAddr(r.u32("hereis server")?),
                locate_id: r.u64("hereis id")?,
            },
            TAG_REQUEST => RpcMsg::Request {
                service: Port::from_raw(r.u64("req service")?),
                client: HostAddr(r.u32("req client")?),
                tid: r.u64("req tid")?,
                data: r.payload("req data")?,
            },
            TAG_REPLY => RpcMsg::Reply {
                tid: r.u64("rep tid")?,
                data: r.payload("rep data")?,
            },
            TAG_NOTHERE => RpcMsg::NotHere {
                tid: r.u64("nothere tid")?,
                service: Port::from_raw(r.u64("nothere service")?),
            },
            _ => return Err(DecodeError::new("rpc tag")),
        };
        r.expect_end("rpc trailing")?;
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amoeba_testkit::{check, Gen};

    fn round_trip(m: RpcMsg) {
        let bytes = m.encode();
        assert_eq!(RpcMsg::decode(&bytes).unwrap(), m);
    }

    #[test]
    fn round_trips() {
        round_trip(RpcMsg::Locate {
            service: Port::from_name("dir"),
            client: HostAddr(4),
            locate_id: 77,
        });
        round_trip(RpcMsg::HereIs {
            service: Port::from_name("dir"),
            server: HostAddr(2),
            locate_id: 77,
        });
        round_trip(RpcMsg::Request {
            service: Port::from_name("dir"),
            client: HostAddr(4),
            tid: 1,
            data: vec![1, 2, 3].into(),
        });
        round_trip(RpcMsg::Reply {
            tid: 1,
            data: Payload::empty(),
        });
        round_trip(RpcMsg::NotHere {
            tid: 9,
            service: Port::from_name("dir"),
        });
    }

    #[test]
    fn unknown_tag_errors() {
        assert!(RpcMsg::decode(&Payload::from(vec![99])).is_err());
    }

    #[test]
    fn trailing_garbage_errors() {
        let mut bytes = RpcMsg::Reply {
            tid: 1,
            data: Payload::empty(),
        }
        .encode()
        .as_slice()
        .to_owned();
        bytes.push(0);
        assert!(RpcMsg::decode(&Payload::from(bytes)).is_err());
    }

    #[test]
    fn decoded_request_data_shares_wire_buffer() {
        let m = RpcMsg::Request {
            service: Port::from_raw(1),
            client: HostAddr(2),
            tid: 3,
            data: vec![5u8; 64].into(),
        };
        let wire = m.encode();
        let RpcMsg::Request { data, .. } = RpcMsg::decode(&wire).unwrap() else {
            panic!("wrong variant");
        };
        let off = data.as_slice().as_ptr() as usize - wire.as_slice().as_ptr() as usize;
        assert!(off < wire.len(), "decoded data must alias the wire buffer");
    }

    #[test]
    fn prop_request_round_trip() {
        check("rpc request round trip", 256, |g: &mut Gen| {
            let m = RpcMsg::Request {
                service: Port::from_raw(g.u64()),
                client: HostAddr(g.u32()),
                tid: g.u64(),
                data: g.bytes(512).into(),
            };
            let bytes = m.encode();
            assert_eq!(RpcMsg::decode(&bytes).unwrap(), m);
        });
    }

    #[test]
    fn prop_decode_never_panics() {
        check("rpc decode never panics", 256, |g: &mut Gen| {
            let _ = RpcMsg::decode(&g.bytes(64).into());
        });
    }
}

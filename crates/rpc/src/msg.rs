//! RPC wire messages and their codec.

use amoeba_flip::wire::{DecodeError, WireReader, WireWriter};
use amoeba_flip::{HostAddr, Port};

/// Everything that travels on the per-host RPC port.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RpcMsg {
    /// Broadcast by a client kernel: "who serves `service`?"
    Locate {
        /// The service port being located.
        service: Port,
        /// Who is asking (replies go here).
        client: HostAddr,
        /// Correlates HEREIS replies with the locate.
        locate_id: u64,
    },
    /// Unicast answer to a locate: "I am listening on `service`".
    HereIs {
        /// The located service port.
        service: Port,
        /// The answering server host.
        server: HostAddr,
        /// Echoed locate id.
        locate_id: u64,
    },
    /// A client request for one transaction.
    Request {
        /// Target service port.
        service: Port,
        /// Requesting host (the reply destination).
        client: HostAddr,
        /// Transaction id, unique per client host.
        tid: u64,
        /// Marshalled request bytes.
        data: Vec<u8>,
    },
    /// The server's answer to a request.
    Reply {
        /// Echoed transaction id.
        tid: u64,
        /// Marshalled reply bytes.
        data: Vec<u8>,
    },
    /// Kernel-level refusal: no thread is listening on the port right now.
    NotHere {
        /// Echoed transaction id.
        tid: u64,
        /// The service that was not listening.
        service: Port,
    },
}

const TAG_LOCATE: u8 = 1;
const TAG_HEREIS: u8 = 2;
const TAG_REQUEST: u8 = 3;
const TAG_REPLY: u8 = 4;
const TAG_NOTHERE: u8 = 5;

impl RpcMsg {
    /// Encodes to wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        match self {
            RpcMsg::Locate {
                service,
                client,
                locate_id,
            } => {
                w.u8(TAG_LOCATE)
                    .u64(service.as_raw())
                    .u32(client.0)
                    .u64(*locate_id);
            }
            RpcMsg::HereIs {
                service,
                server,
                locate_id,
            } => {
                w.u8(TAG_HEREIS)
                    .u64(service.as_raw())
                    .u32(server.0)
                    .u64(*locate_id);
            }
            RpcMsg::Request {
                service,
                client,
                tid,
                data,
            } => {
                w.u8(TAG_REQUEST)
                    .u64(service.as_raw())
                    .u32(client.0)
                    .u64(*tid)
                    .bytes(data);
            }
            RpcMsg::Reply { tid, data } => {
                w.u8(TAG_REPLY).u64(*tid).bytes(data);
            }
            RpcMsg::NotHere { tid, service } => {
                w.u8(TAG_NOTHERE).u64(*tid).u64(service.as_raw());
            }
        }
        w.finish()
    }

    /// Decodes from wire bytes.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on truncation, unknown tags, or trailing
    /// garbage.
    pub fn decode(buf: &[u8]) -> Result<RpcMsg, DecodeError> {
        let mut r = WireReader::new(buf);
        let msg = match r.u8("rpc tag")? {
            TAG_LOCATE => RpcMsg::Locate {
                service: Port::from_raw(r.u64("locate service")?),
                client: HostAddr(r.u32("locate client")?),
                locate_id: r.u64("locate id")?,
            },
            TAG_HEREIS => RpcMsg::HereIs {
                service: Port::from_raw(r.u64("hereis service")?),
                server: HostAddr(r.u32("hereis server")?),
                locate_id: r.u64("hereis id")?,
            },
            TAG_REQUEST => RpcMsg::Request {
                service: Port::from_raw(r.u64("req service")?),
                client: HostAddr(r.u32("req client")?),
                tid: r.u64("req tid")?,
                data: r.bytes("req data")?,
            },
            TAG_REPLY => RpcMsg::Reply {
                tid: r.u64("rep tid")?,
                data: r.bytes("rep data")?,
            },
            TAG_NOTHERE => RpcMsg::NotHere {
                tid: r.u64("nothere tid")?,
                service: Port::from_raw(r.u64("nothere service")?),
            },
            _ => return Err(DecodeError::new("rpc tag")),
        };
        r.expect_end("rpc trailing")?;
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn round_trip(m: RpcMsg) {
        let bytes = m.encode();
        assert_eq!(RpcMsg::decode(&bytes).unwrap(), m);
    }

    #[test]
    fn round_trips() {
        round_trip(RpcMsg::Locate {
            service: Port::from_name("dir"),
            client: HostAddr(4),
            locate_id: 77,
        });
        round_trip(RpcMsg::HereIs {
            service: Port::from_name("dir"),
            server: HostAddr(2),
            locate_id: 77,
        });
        round_trip(RpcMsg::Request {
            service: Port::from_name("dir"),
            client: HostAddr(4),
            tid: 1,
            data: vec![1, 2, 3],
        });
        round_trip(RpcMsg::Reply {
            tid: 1,
            data: vec![],
        });
        round_trip(RpcMsg::NotHere {
            tid: 9,
            service: Port::from_name("dir"),
        });
    }

    #[test]
    fn unknown_tag_errors() {
        assert!(RpcMsg::decode(&[99]).is_err());
    }

    #[test]
    fn trailing_garbage_errors() {
        let mut bytes = RpcMsg::Reply {
            tid: 1,
            data: vec![],
        }
        .encode();
        bytes.push(0);
        assert!(RpcMsg::decode(&bytes).is_err());
    }

    proptest! {
        #[test]
        fn prop_request_round_trip(service: u64, client: u32, tid: u64,
                                   data in proptest::collection::vec(any::<u8>(), 0..512)) {
            let m = RpcMsg::Request {
                service: Port::from_raw(service),
                client: HostAddr(client),
                tid,
                data,
            };
            let bytes = m.encode();
            prop_assert_eq!(RpcMsg::decode(&bytes).unwrap(), m);
        }

        #[test]
        fn prop_decode_never_panics(data in proptest::collection::vec(any::<u8>(), 0..64)) {
            let _ = RpcMsg::decode(&data);
        }
    }
}

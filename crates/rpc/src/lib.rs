//! # amoeba-rpc — Amoeba-style remote procedure call over simulated FLIP
//!
//! Reproduces the RPC machinery the ICDCS '93 paper's baseline directory
//! service (and its clients) are built on:
//!
//! * **`trans`** ([`RpcClient::trans`]): one request/reply transaction with
//!   *some* server of a service port.
//! * **`getreq`/`putrep`** ([`RpcServer`]): the server-thread loop.
//! * **Locate protocol**: the client kernel broadcasts a locate; every
//!   machine with a thread listening on the port answers HEREIS; the client
//!   caches every answer and uses the *first* replier.
//! * **NOTHERE**: a machine whose service has no listening thread refuses
//!   requests at kernel level; the client evicts it from the port cache and
//!   picks another server — the (deliberately imperfect) load-spreading
//!   heuristic whose effect the paper measures in Fig. 8.
//!
//! A per-machine [`RpcNode`] plays the role of the Amoeba kernel's RPC
//! layer and dies with the machine, losing the port cache and call state,
//! exactly like the real thing.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod client;
mod error;
mod msg;
mod node;
mod server;

pub use client::{RpcClient, RpcParams};
pub use error::RpcError;
pub use msg::RpcMsg;
pub use node::{IncomingRequest, RpcNode, RPC_PORT};
pub use server::RpcServer;

//! End-to-end RPC behaviour: locate, transactions, NOTHERE spreading,
//! crash handling.

use std::sync::Arc;
use std::time::Duration;

use amoeba_flip::{NetParams, Network, NodeStack, Port};
use amoeba_rpc::{RpcClient, RpcNode, RpcServer};
use amoeba_sim::{NodeId, Simulation};
use parking_lot::Mutex;

struct Host {
    node: RpcNode,
    sim_node: NodeId,
    #[allow(dead_code)]
    stack: NodeStack,
}

fn host(sim: &Simulation, net: &Network, name: &str) -> Host {
    let sim_node = sim.add_node(name);
    let stack = net.attach();
    let node = RpcNode::start(sim, sim_node, stack.clone());
    Host {
        node,
        sim_node,
        stack,
    }
}

fn echo_server(sim: &Simulation, h: &Host, service: Port) {
    let srv = RpcServer::new(&h.node, service);
    sim.spawn_on(h.sim_node, "echo-server", move |ctx| loop {
        let req = srv.getreq(ctx);
        let mut data = req.data.to_vec();
        data.reverse();
        srv.putrep(&req, data);
    });
}

#[test]
fn basic_trans_round_trip() {
    let mut sim = Simulation::new(1);
    let net = Network::new(sim.handle(), NetParams::lan_10mbps(), 2);
    let service = Port::from_name("echo");
    let s = host(&sim, &net, "server");
    let c = host(&sim, &net, "client");
    echo_server(&sim, &s, service);
    let client = RpcClient::new(&c.node);
    let out = sim.spawn("client", move |ctx| {
        client.trans(ctx, service, vec![1, 2, 3]).unwrap()
    });
    sim.run_for(Duration::from_secs(2));
    assert_eq!(out.take(), Some(amoeba_flip::Payload::from(vec![3, 2, 1])));
}

#[test]
fn locate_fills_port_cache_with_all_repliers() {
    let mut sim = Simulation::new(1);
    let net = Network::new(sim.handle(), NetParams::lan_10mbps(), 2);
    let service = Port::from_name("echo");
    let servers: Vec<Host> = (0..3).map(|i| host(&sim, &net, &format!("s{i}"))).collect();
    for s in &servers {
        echo_server(&sim, s, service);
    }
    let c = host(&sim, &net, "client");
    let client = RpcClient::new(&c.node);
    let node = c.node.clone();
    let cached = sim.spawn("client", move |ctx| {
        client.trans(ctx, service, vec![0]).unwrap();
        // All three HEREIS replies should have been cached by now (the
        // first triggered the send; the others arrived concurrently).
        ctx.sleep(Duration::from_millis(20));
        node.cached_servers(service).len()
    });
    sim.run_for(Duration::from_secs(2));
    assert_eq!(cached.take(), Some(3));
}

#[test]
fn nothere_moves_client_to_free_server() {
    let mut sim = Simulation::new(7);
    let net = Network::new(sim.handle(), NetParams::lan_10mbps(), 2);
    let service = Port::from_name("slow");
    let s1 = host(&sim, &net, "s1");
    let s2 = host(&sim, &net, "s2");
    // s1: single thread, very slow (holds the only listener for 300 ms).
    let srv1 = RpcServer::new(&s1.node, service);
    let served_by = Arc::new(Mutex::new(Vec::<&'static str>::new()));
    let log1 = Arc::clone(&served_by);
    sim.spawn_on(s1.sim_node, "slow-server", move |ctx| loop {
        let req = srv1.getreq(ctx);
        ctx.sleep(Duration::from_millis(300));
        log1.lock().push("s1");
        srv1.putrep(&req, vec![1]);
    });
    // s2: fast server.
    let srv2 = RpcServer::new(&s2.node, service);
    let log2 = Arc::clone(&served_by);
    sim.spawn_on(s2.sim_node, "fast-server", move |ctx| loop {
        let req = srv2.getreq(ctx);
        ctx.sleep(Duration::from_millis(1));
        log2.lock().push("s2");
        srv2.putrep(&req, vec![2]);
    });
    // Two clients: the first occupies s1 (or s2); the second must end up on
    // the free server rather than queueing.
    let c1 = host(&sim, &net, "c1");
    let c2 = host(&sim, &net, "c2");
    let cl1 = RpcClient::new(&c1.node);
    let cl2 = RpcClient::new(&c2.node);
    let o1 = sim.spawn("c1", move |ctx| cl1.trans(ctx, service, vec![0]).unwrap());
    let o2 = sim.spawn("c2", move |ctx| {
        ctx.sleep(Duration::from_millis(5)); // let c1 claim a server first
        cl2.trans(ctx, service, vec![0]).unwrap()
    });
    sim.run_for(Duration::from_secs(3));
    let r1 = o1.take().unwrap();
    let r2 = o2.take().unwrap();
    // Both completed, on *different* servers.
    assert_ne!(r1, r2, "clients should have been spread across servers");
}

#[test]
fn trans_fails_cleanly_when_no_server_exists() {
    let mut sim = Simulation::new(1);
    let net = Network::new(sim.handle(), NetParams::lan_10mbps(), 2);
    let c = host(&sim, &net, "client");
    let params = amoeba_rpc::RpcParams {
        max_attempts: 3,
        ..Default::default()
    };
    let client = RpcClient::with_params(&c.node, params);
    let out = sim.spawn("client", move |ctx| {
        client.trans(ctx, Port::from_name("ghost"), vec![]).is_err()
    });
    sim.run_for(Duration::from_secs(5));
    assert_eq!(out.take(), Some(true));
}

#[test]
fn client_fails_over_when_server_crashes() {
    let mut sim = Simulation::new(3);
    let net = Network::new(sim.handle(), NetParams::lan_10mbps(), 2);
    let service = Port::from_name("echo");
    let s1 = host(&sim, &net, "s1");
    let s2 = host(&sim, &net, "s2");
    echo_server(&sim, &s1, service);
    echo_server(&sim, &s2, service);
    let c = host(&sim, &net, "client");
    let client = RpcClient::new(&c.node);
    let out = sim.spawn("client", move |ctx| {
        let a = client.trans(ctx, service, vec![1]).is_ok();
        ctx.sleep(Duration::from_millis(500));
        let b = client.trans(ctx, service, vec![2]).is_ok();
        (a, b)
    });
    // Crash s1 shortly after the first transaction; mark it down in the
    // network too (machine crash = NIC silent).
    let crash_at = Duration::from_millis(100);
    let s1_addr = s1.node.addr();
    let s1_sim = s1.sim_node;
    let net2 = net.clone();
    sim.spawn("chaos", move |ctx| {
        ctx.sleep(crash_at);
        net2.set_down(s1_addr);
        ctx.crash_node(s1_sim);
    });
    sim.run_for(Duration::from_secs(10));
    assert_eq!(out.take(), Some((true, true)));
}

#[test]
fn concurrent_clients_all_complete() {
    let mut sim = Simulation::new(11);
    let net = Network::new(sim.handle(), NetParams::lan_10mbps(), 2);
    let service = Port::from_name("echo");
    for i in 0..2 {
        let s = host(&sim, &net, &format!("s{i}"));
        // Two threads per server.
        let srv = RpcServer::new(&s.node, service);
        for t in 0..2 {
            let srv = srv.clone();
            sim.spawn_on(s.sim_node, &format!("srv{i}t{t}"), move |ctx| loop {
                let req = srv.getreq(ctx);
                ctx.sleep(Duration::from_millis(2));
                srv.putrep(&req, req.data.clone());
            });
        }
    }
    let mut outs = Vec::new();
    for i in 0..6 {
        let c = host(&sim, &net, &format!("c{i}"));
        let client = RpcClient::new(&c.node);
        outs.push(sim.spawn(&format!("client{i}"), move |ctx| {
            let mut ok = 0;
            for k in 0..20u8 {
                if client.trans(ctx, service, vec![k]) == Ok(amoeba_flip::Payload::from(vec![k])) {
                    ok += 1;
                }
            }
            ok
        }));
    }
    sim.run_for(Duration::from_secs(30));
    for o in outs {
        assert_eq!(o.take(), Some(20));
    }
}

#[test]
fn expanding_ring_locate_finds_servers_across_segments() {
    use amoeba_flip::{SegmentId, Topology};
    // Client on net-a, the only server on net-c of a 3-segment chain:
    // the ring must widen past two routers before the locate succeeds,
    // and the subsequent request/reply unicasts are routed.
    let mut sim = Simulation::new(0x51E6);
    let net = Network::with_topology(
        sim.handle(),
        NetParams::lan_10mbps(),
        Topology::chain(3),
        0x51E6,
    );
    let service = Port::from_name("far-echo");
    let s_node = sim.add_node("server");
    let s_stack = net.attach_to(SegmentId(2));
    let s = Host {
        node: RpcNode::start(&sim, s_node, s_stack.clone()),
        sim_node: s_node,
        stack: s_stack,
    };
    echo_server(&sim, &s, service);
    let c_node = sim.add_node("client");
    let c_stack = net.attach_to(SegmentId(0));
    let c = RpcClient::new(&RpcNode::start(&sim, c_node, c_stack));
    let out = sim.spawn("client", move |ctx| {
        c.trans(ctx, service, vec![1, 2, 3])
            .ok()
            .map(|p| p.to_vec())
    });
    sim.run_for(Duration::from_secs(10));
    assert_eq!(out.take(), Some(Some(vec![3, 2, 1])));
    let st = net.stats();
    assert!(
        st.packets_forwarded >= 4,
        "locate + HEREIS + request + reply all cross two routers (saw {})",
        st.packets_forwarded
    );
    // The TTL-1 first ring died at the first router and was counted.
    assert!(st.dropped_ttl > 0, "the narrow rings must expire en route");
}

#[test]
fn locate_on_unreachable_segment_fails_cleanly() {
    use amoeba_flip::{SegmentId, Topology};
    // Two segments with NO router: the server is unreachable and trans
    // must give up with Unreachable instead of hanging.
    let mut topo = Topology::new();
    topo.add_segment("a");
    topo.add_segment("b");
    let mut sim = Simulation::new(0x0FF);
    let net = Network::with_topology(sim.handle(), NetParams::lan_10mbps(), topo, 1);
    let service = Port::from_name("island");
    let s_node = sim.add_node("server");
    let s_stack = net.attach_to(SegmentId(1));
    let s = Host {
        node: RpcNode::start(&sim, s_node, s_stack.clone()),
        sim_node: s_node,
        stack: s_stack,
    };
    echo_server(&sim, &s, service);
    let c_node = sim.add_node("client");
    let c_stack = net.attach_to(SegmentId(0));
    let params = amoeba_rpc::RpcParams {
        max_attempts: 5,
        ..Default::default()
    };
    let c = RpcClient::with_params(&RpcNode::start(&sim, c_node, c_stack), params);
    let out = sim.spawn("client", move |ctx| c.trans(ctx, service, vec![9]).is_err());
    sim.run_for(Duration::from_secs(30));
    assert_eq!(out.take(), Some(true), "unreachable service must error");
}

//! End-to-end group communication over the simulated network: total order,
//! resilience, membership, crash recovery, partitions.

use std::sync::Arc;
use std::time::Duration;

use amoeba_flip::{NetParams, Network, Port};
use amoeba_group::{Group, GroupConfig, GroupError, GroupEvent, GroupPeer};
use amoeba_sim::{NodeId, Simulation};
use parking_lot::Mutex;

struct Machine {
    peer: GroupPeer,
    sim_node: NodeId,
    host: amoeba_flip::HostAddr,
}

fn machine(sim: &Simulation, net: &Network, name: &str, cfg: &GroupConfig) -> Machine {
    let sim_node = sim.add_node(name);
    let stack = net.attach();
    let host = stack.addr();
    let peer = GroupPeer::start(sim, sim_node, stack, cfg.clone());
    Machine {
        peer,
        sim_node,
        host,
    }
}

/// Spawns `n` machines; machine 0 creates the group, the rest join at
/// staggered times. Each runs `body(i, group, ctx)`.
fn run_members<F, R>(
    sim: &Simulation,
    net: &Network,
    cfg: &GroupConfig,
    n: usize,
    body: F,
) -> Vec<amoeba_sim::ProcOutput<R>>
where
    F: Fn(usize, Group, &amoeba_sim::Ctx) -> R + Send + Sync + Clone + 'static,
    R: Send + 'static,
{
    let port = Port::from_name("test-group");
    let mut outs = Vec::new();
    for i in 0..n {
        let m = machine(sim, net, &format!("m{i}"), cfg);
        let peer = m.peer.clone();
        let body = body.clone();
        outs.push(sim.spawn_on(m.sim_node, &format!("app{i}"), move |ctx| {
            if i == 0 {
                let g = peer.create(port, i as u64);
                body(i, g, ctx)
            } else {
                // Stagger joins so the creator exists first.
                ctx.sleep(Duration::from_millis(10 * i as u64));
                let g = peer
                    .join(ctx, port, i as u64, Duration::from_secs(2))
                    .expect("join failed");
                body(i, g, ctx)
            }
        }));
    }
    outs
}

fn cfg_r(r: u32) -> GroupConfig {
    GroupConfig::with_resilience(r)
}

#[test]
fn all_members_see_same_total_order() {
    let mut sim = Simulation::new(42);
    let net = Network::new(sim.handle(), NetParams::lan_10mbps(), 1);
    let n = 3;
    let sends_per_member = 10u8;
    let outs = run_members(&sim, &net, &cfg_r(2), n, move |i, g, ctx| {
        // Joiners only see events after their join, so wait for full
        // membership before sending (virtual synchrony).
        while g.info().unwrap().view.len() < 3 {
            ctx.sleep(Duration::from_millis(5));
        }
        // Everyone sends concurrently and collects what it receives.
        let sender_g = Arc::new(g);
        let mut log: Vec<(u64, amoeba_flip::Payload)> = Vec::new();
        // Interleave sends and receives in one process: send all, then
        // drain until we have n * sends_per_member messages.
        for k in 0..sends_per_member {
            sender_g
                .send(ctx, vec![i as u8, k])
                .expect("send must succeed");
        }
        let expected = 3 * sends_per_member as usize;
        while log.iter().filter(|(_, d)| d.len() == 2).count() < expected {
            match sender_g.recv(ctx) {
                Ok(GroupEvent::Message { seq, data, .. }) => log.push((seq, data)),
                Ok(_) => continue,
                Err(e) => panic!("member {i}: unexpected group error {e}"),
            }
        }
        log
    });
    sim.run_for(Duration::from_secs(30));
    let logs: Vec<_> = outs
        .iter()
        .map(|o| o.take().expect("member finished"))
        .collect();
    // Every member delivered the same messages in the same seq order.
    assert_eq!(logs[0], logs[1]);
    assert_eq!(logs[1], logs[2]);
    // Sequence numbers strictly increase.
    for log in &logs {
        for w in log.windows(2) {
            assert!(w[0].0 < w[1].0, "seqnos must increase: {w:?}");
        }
    }
}

#[test]
fn send_with_r2_takes_five_packets() {
    // §3.1: one SendToGroup with r=2 in a 3-member group costs 5 packets
    // (request + accept multicast + 2 acks + done). Heartbeats are pushed
    // out of the measurement window.
    let mut sim = Simulation::new(7);
    let net = Network::new(sim.handle(), NetParams::lan_10mbps(), 1);
    let mut cfg = cfg_r(2);
    cfg.heartbeat_interval = Duration::from_secs(60);
    cfg.failure_timeout = Duration::from_secs(300);
    let counted = Arc::new(Mutex::new(None::<u64>));
    let counted2 = Arc::clone(&counted);
    let net2 = net.clone();
    let outs = run_members(&sim, &net, &cfg, 3, move |i, g, ctx| {
        if i == 1 {
            // A non-sequencer member sends once, after membership settles.
            ctx.sleep(Duration::from_millis(200));
            let before = net2.stats().packets_sent;
            g.send(ctx, vec![9, 9, 9]).unwrap();
            let after = net2.stats().packets_sent;
            *counted2.lock() = Some(after - before);
        } else {
            // Others must drain their queues so acks flow.
            loop {
                if g.recv_timeout(ctx, Duration::from_secs(1)).is_none() {
                    break;
                }
            }
        }
    });
    sim.run_for(Duration::from_secs(5));
    let _ = outs;
    assert_eq!(
        counted.lock().unwrap_or(0),
        5,
        "PB send with r=2 costs 5 packets"
    );
}

#[test]
fn membership_events_are_ordered_and_visible() {
    let mut sim = Simulation::new(5);
    let net = Network::new(sim.handle(), NetParams::lan_10mbps(), 1);
    let outs = run_members(&sim, &net, &cfg_r(0), 3, move |i, g, ctx| {
        if i == 0 {
            let mut joins = 0;
            while joins < 2 {
                if let Ok(GroupEvent::Joined { .. }) = g.recv(ctx) {
                    joins += 1;
                }
            }
            let info = g.info().unwrap();
            (
                info.view.len(),
                info.view.members.iter().map(|m| m.tag).collect::<Vec<_>>(),
            )
        } else {
            ctx.sleep(Duration::from_millis(300));
            let info = g.info().unwrap();
            (
                info.view.len(),
                info.view.members.iter().map(|m| m.tag).collect::<Vec<_>>(),
            )
        }
    });
    sim.run_for(Duration::from_secs(5));
    for o in outs {
        let (len, tags) = o.take().unwrap();
        assert_eq!(len, 3);
        assert_eq!(tags, vec![0, 1, 2], "tags in member-id order");
    }
}

#[test]
fn crash_of_member_fails_group_and_reset_rebuilds_majority() {
    let mut sim = Simulation::new(13);
    let net = Network::new(sim.handle(), NetParams::lan_10mbps(), 1);
    let cfg = cfg_r(2);
    let port = Port::from_name("test-group");
    let machines: Vec<Machine> = (0..3)
        .map(|i| machine(&sim, &net, &format!("m{i}"), &cfg))
        .collect();
    let crash_host = machines[2].host;
    let crash_node = machines[2].sim_node;

    let mut outs = Vec::new();
    for (i, m) in machines.iter().enumerate() {
        let peer = m.peer.clone();
        outs.push(sim.spawn_on(m.sim_node, &format!("app{i}"), move |ctx| {
            let g = if i == 0 {
                peer.create(port, i as u64)
            } else {
                ctx.sleep(Duration::from_millis(10 * i as u64));
                peer.join(ctx, port, i as u64, Duration::from_secs(2))
                    .unwrap()
            };
            // Run the Fig. 5 group-thread loop: receive until failure, then
            // reset with majority (2 of 3).
            let mut resets = 0;
            let mut received = Vec::new();
            loop {
                match g.recv_timeout(ctx, Duration::from_secs(3)) {
                    Some(Ok(GroupEvent::Message { data, .. })) => received.push(data),
                    Some(Ok(_)) => continue,
                    Some(Err(GroupError::Failed)) => {
                        let info = g.reset(ctx, 2, Duration::from_secs(5)).expect("reset");
                        resets += 1;
                        assert_eq!(info.view.len(), 2, "majority view after crash");
                        // After reset, sends must work again.
                        g.send(ctx, vec![100 + i as u8]).expect("post-reset send");
                    }
                    Some(Err(e)) => panic!("member {i}: {e}"),
                    None => return (resets, received),
                }
            }
        }));
    }
    // Chaos: crash machine 2 after the group settles.
    let net2 = net.clone();
    sim.spawn("chaos", move |ctx| {
        ctx.sleep(Duration::from_millis(500));
        net2.set_down(crash_host);
        ctx.crash_node(crash_node);
    });
    sim.run_for(Duration::from_secs(20));
    for (i, o) in outs.iter().enumerate().take(2) {
        let (resets, received) = o.take().expect("survivor finished");
        assert_eq!(resets, 1, "member {i} reset once");
        // Both survivors saw both post-reset messages, in the same order.
        assert!(
            received.iter().any(|d| d.as_slice() == [100]),
            "member {i}: {received:?}"
        );
        assert!(
            received.iter().any(|d| d.as_slice() == [101]),
            "member {i}: {received:?}"
        );
    }
    let a = outs[0].take();
    let b = outs[1].take();
    drop((a, b));
}

#[test]
fn minority_partition_cannot_reset_majority_can() {
    let mut sim = Simulation::new(17);
    let net = Network::new(sim.handle(), NetParams::lan_10mbps(), 1);
    let cfg = cfg_r(2);
    let port = Port::from_name("test-group");
    let machines: Vec<Machine> = (0..3)
        .map(|i| machine(&sim, &net, &format!("m{i}"), &cfg))
        .collect();
    let lone_host = machines[2].host;

    let mut outs = Vec::new();
    for (i, m) in machines.iter().enumerate() {
        let peer = m.peer.clone();
        outs.push(sim.spawn_on(m.sim_node, &format!("app{i}"), move |ctx| {
            let g = if i == 0 {
                peer.create(port, i as u64)
            } else {
                ctx.sleep(Duration::from_millis(10 * i as u64));
                peer.join(ctx, port, i as u64, Duration::from_secs(2))
                    .unwrap()
            };
            loop {
                match g.recv_timeout(ctx, Duration::from_secs(4)) {
                    Some(Ok(_)) => continue,
                    Some(Err(GroupError::Failed)) => {
                        return match g.reset(ctx, 2, Duration::from_secs(3)) {
                            Ok(info) => ("ok", info.view.len()),
                            Err(_) => ("fail", 0),
                        };
                    }
                    Some(Err(_)) => return ("dead", 0),
                    None => return ("quiet", 0),
                }
            }
        }));
    }
    let net2 = net.clone();
    sim.spawn("chaos", move |ctx| {
        ctx.sleep(Duration::from_millis(500));
        net2.isolate(&[lone_host]);
    });
    sim.run_for(Duration::from_secs(30));
    let r0 = outs[0].take().unwrap();
    let r1 = outs[1].take().unwrap();
    let r2 = outs[2].take().unwrap();
    assert_eq!(r0, ("ok", 2), "majority member 0 resets to a 2-view");
    assert_eq!(r1, ("ok", 2), "majority member 1 resets to a 2-view");
    assert_eq!(r2.0, "fail", "minority member cannot reach quorum");
}

#[test]
fn graceful_leave_shrinks_view_everywhere() {
    let mut sim = Simulation::new(23);
    let net = Network::new(sim.handle(), NetParams::lan_10mbps(), 1);
    let outs = run_members(&sim, &net, &cfg_r(0), 3, move |i, g, ctx| {
        if i == 2 {
            ctx.sleep(Duration::from_millis(300));
            g.leave(ctx);
            0
        } else {
            // Wait for the Left event.
            loop {
                match g.recv_timeout(ctx, Duration::from_secs(2)) {
                    Some(Ok(GroupEvent::Left { member, .. })) => {
                        assert_eq!(member.tag, 2);
                        return g.info().unwrap().view.len();
                    }
                    Some(Ok(_)) => continue,
                    other => panic!("member {i}: unexpected {other:?}"),
                }
            }
        }
    });
    sim.run_for(Duration::from_secs(10));
    assert_eq!(outs[0].take(), Some(2));
    assert_eq!(outs[1].take(), Some(2));
    assert_eq!(outs[2].take(), Some(0));
}

#[test]
fn sequencer_crash_is_survivable() {
    // Machine 0 (creator = sequencer) dies; the others reset and continue.
    let mut sim = Simulation::new(29);
    let net = Network::new(sim.handle(), NetParams::lan_10mbps(), 1);
    let cfg = cfg_r(2);
    let port = Port::from_name("test-group");
    let machines: Vec<Machine> = (0..3)
        .map(|i| machine(&sim, &net, &format!("m{i}"), &cfg))
        .collect();
    let seq_host = machines[0].host;
    let seq_node = machines[0].sim_node;
    let mut outs = Vec::new();
    for (i, m) in machines.iter().enumerate() {
        let peer = m.peer.clone();
        outs.push(sim.spawn_on(m.sim_node, &format!("app{i}"), move |ctx| {
            let g = if i == 0 {
                peer.create(port, i as u64)
            } else {
                ctx.sleep(Duration::from_millis(10 * i as u64));
                peer.join(ctx, port, i as u64, Duration::from_secs(2))
                    .unwrap()
            };
            loop {
                match g.recv_timeout(ctx, Duration::from_secs(4)) {
                    Some(Ok(_)) => continue,
                    Some(Err(GroupError::Failed)) => {
                        let info = g.reset(ctx, 2, Duration::from_secs(5)).expect("reset");
                        // The new sequencer sequences new messages fine.
                        let seq = g.send(ctx, vec![i as u8]).expect("send after reset");
                        return (info.view.len(), seq > 0);
                    }
                    Some(Err(e)) => panic!("member {i}: {e}"),
                    None => panic!("member {i}: no failure observed"),
                }
            }
        }));
    }
    let net2 = net.clone();
    sim.spawn("chaos", move |ctx| {
        ctx.sleep(Duration::from_millis(500));
        net2.set_down(seq_host);
        ctx.crash_node(seq_node);
    });
    sim.run_for(Duration::from_secs(20));
    assert_eq!(outs[1].take(), Some((2, true)));
    assert_eq!(outs[2].take(), Some((2, true)));
}

#[test]
fn total_order_holds_under_packet_loss() {
    let mut sim = Simulation::new(31);
    let net = Network::new(sim.handle(), NetParams::lossy(0.05), 1);
    let n = 3;
    let outs = run_members(&sim, &net, &cfg_r(2), n, move |i, g, ctx| {
        while g.info().unwrap().view.len() < 3 {
            ctx.sleep(Duration::from_millis(5));
        }
        for k in 0..5u8 {
            g.send(ctx, vec![i as u8, k]).expect("send");
        }
        let mut got = Vec::new();
        while got.len() < 15 {
            match g.recv_timeout(ctx, Duration::from_secs(10)) {
                Some(Ok(GroupEvent::Message { seq, data, .. })) => got.push((seq, data)),
                Some(Ok(_)) => continue,
                Some(Err(e)) => panic!("member {i}: {e}"),
                None => panic!("member {i}: stalled with {} msgs", got.len()),
            }
        }
        got
    });
    sim.run_for(Duration::from_secs(60));
    let logs: Vec<_> = outs.iter().map(|o| o.take().expect("finished")).collect();
    assert_eq!(logs[0], logs[1]);
    assert_eq!(logs[1], logs[2]);
}

#[test]
fn big_messages_use_bb_and_still_order() {
    let mut sim = Simulation::new(37);
    let net = Network::new(sim.handle(), NetParams::lan_10mbps(), 1);
    let mut cfg = cfg_r(2);
    cfg.bb_threshold = 1000;
    let outs = run_members(&sim, &net, &cfg, 3, move |i, g, ctx| {
        if i == 1 {
            ctx.sleep(Duration::from_millis(100));
            // Interleave small (PB) and large (BB) messages.
            g.send(ctx, vec![1u8; 10]).unwrap();
            g.send(ctx, vec![2u8; 5000]).unwrap();
            g.send(ctx, vec![3u8; 10]).unwrap();
        }
        let mut sizes = Vec::new();
        while sizes.len() < 3 {
            match g.recv_timeout(ctx, Duration::from_secs(5)) {
                Some(Ok(GroupEvent::Message { data, .. })) => sizes.push(data.len()),
                Some(Ok(_)) => continue,
                other => panic!("member {i}: unexpected {other:?}"),
            }
        }
        sizes
    });
    sim.run_for(Duration::from_secs(20));
    for o in outs {
        assert_eq!(o.take(), Some(vec![10, 5000, 10]), "send order preserved");
    }
}

#[test]
fn batched_delivery_preserves_total_order_across_crash_and_rejoin() {
    // Concurrent senders drive the sequencer's accept batching; a member
    // crashes mid-stream (group fails, survivors reset) and its host
    // later reboots and rejoins. Every log must agree on the total
    // order, batched or not.
    let mut sim = Simulation::new(77);
    let net = Network::new(sim.handle(), NetParams::lan_10mbps(), 5);
    let mut cfg = cfg_r(0);
    cfg.max_batch = 8; // batching on (also the default)
    let port = Port::from_name("test-group");

    type Log = Vec<(u64, amoeba_flip::Payload)>;
    let collect = |g: &Group, ctx: &amoeba_sim::Ctx, log: &mut Log, quiet: Duration| loop {
        match g.recv_timeout(ctx, quiet) {
            Some(Ok(GroupEvent::Message { seq, data, .. })) => log.push((seq, data)),
            Some(Ok(_)) => continue,
            Some(Err(GroupError::Failed)) => {
                if g.reset(ctx, 3, Duration::from_secs(5)).is_err() {
                    return;
                }
            }
            Some(Err(_)) | None => return,
        }
    };

    let machines: Vec<Machine> = (0..3)
        .map(|i| machine(&sim, &net, &format!("m{i}"), &cfg))
        .collect();
    let mut outs = Vec::new();
    for (i, m) in machines.iter().enumerate() {
        let peer = m.peer.clone();
        outs.push(sim.spawn_on(m.sim_node, &format!("app{i}"), move |ctx| {
            let g = if i == 0 {
                peer.create(port, i as u64)
            } else {
                ctx.sleep(Duration::from_millis(10 * i as u64));
                peer.join(ctx, port, i as u64, Duration::from_secs(2))
                    .expect("join failed")
            };
            while g.info().unwrap().view.len() < 4 {
                ctx.sleep(Duration::from_millis(5));
            }
            let g = std::sync::Arc::new(g);
            // Two pipelined senders per member: bursts that the
            // sequencer coalesces. Phase 2 runs after the rejoin so the
            // rebooted member sees fresh traffic.
            for s in 0..2u8 {
                let g = std::sync::Arc::clone(&g);
                ctx.spawn(&format!("send{i}-{s}"), move |ctx| {
                    for phase in 0..2u8 {
                        if phase == 1 {
                            let wake = amoeba_sim::SimTime::ZERO + Duration::from_millis(2500);
                            ctx.sleep_until(wake);
                        }
                        let mut k = 0u8;
                        while k < 8 {
                            match g.send(ctx, vec![i as u8, s, phase, k]) {
                                Ok(_) => k += 1,
                                Err(GroupError::Dead) => return,
                                Err(_) => ctx.sleep(Duration::from_millis(40)),
                            }
                        }
                    }
                });
            }
            let mut log = Log::new();
            collect(&g, ctx, &mut log, Duration::from_secs(2));
            log
        }));
    }

    // Member 3: joins, crashes at 700 ms, host reboots and rejoins.
    let m3 = machine(&sim, &net, "m3", &cfg);
    let crash_host = m3.host;
    let crash_node = m3.sim_node;
    {
        let peer = m3.peer.clone();
        sim.spawn_on(m3.sim_node, "app3", move |ctx| {
            ctx.sleep(Duration::from_millis(30));
            let g = peer
                .join(ctx, port, 3, Duration::from_secs(2))
                .expect("initial join failed");
            loop {
                let _ = g.recv(ctx); // consume until the crash kills us
            }
        });
    }
    let net2 = net.clone();
    sim.spawn("chaos", move |ctx| {
        ctx.sleep(Duration::from_millis(700));
        net2.set_down(crash_host);
        ctx.crash_node(crash_node);
    });
    // The reboot: same simulation, fresh machine (fresh NIC + peer), at
    // 1.8 s — after the survivors' reset settles.
    let rejoin_log = {
        let rejoin = machine(&sim, &net, "m3-reborn", &cfg);
        let peer = rejoin.peer.clone();
        sim.spawn_on(rejoin.sim_node, "app3-reborn", move |ctx| {
            ctx.sleep(Duration::from_millis(1800));
            let g = peer
                .join(ctx, port, 33, Duration::from_secs(5))
                .expect("rejoin failed");
            let mut log = Log::new();
            collect(&g, ctx, &mut log, Duration::from_secs(2));
            log
        })
    };

    sim.run_for(Duration::from_secs(20));
    let logs: Vec<Log> = outs.iter().map(|o| o.take().expect("finished")).collect();
    let reborn = rejoin_log.take().expect("rejoined member finished");

    // Survivors agree exactly.
    assert!(!logs[0].is_empty());
    assert_eq!(logs[0], logs[1], "members 0 and 1 diverge");
    assert_eq!(logs[1], logs[2], "members 1 and 2 diverge");
    // Sequence numbers strictly increase (no duplicates, no reorders).
    for (i, log) in logs.iter().enumerate() {
        assert!(
            log.windows(2).all(|w| w[0].0 < w[1].0),
            "member {i}: non-monotonic seqs"
        );
    }
    // Phase-2 traffic flowed after the crash/reset/rejoin.
    assert!(
        logs[0].iter().any(|(_, d)| d.len() == 4 && d[2] == 1),
        "no post-rejoin messages observed"
    );
    // The rebooted member's log is a slice of the survivors' order: every
    // entry matches the survivors' entry at the same seq.
    assert!(!reborn.is_empty(), "rejoined member saw no messages");
    for (seq, data) in &reborn {
        let matching = logs[0].iter().find(|(s, _)| s == seq);
        assert_eq!(
            matching.map(|(_, d)| d),
            Some(data),
            "rejoined member disagrees at seq {seq}"
        );
    }
}

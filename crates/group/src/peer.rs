//! The per-machine group-communication kernel: packet dispatch, timers,
//! and the app-facing primitive implementations.

use std::collections::HashMap;
use std::sync::Arc;

use amoeba_flip::{Dest, GroupAddr, HostAddr, NodeStack, Packet, Port};
use amoeba_sim::{Ctx, MailboxRx, MailboxTx, NodeId, SimHandle, Spawn};
use parking_lot::Mutex;

use crate::config::GroupConfig;
use crate::error::GroupError;
use crate::instance::{Action, GroupStats, Instance};
use crate::msg::GroupMsg;
use crate::types::{GroupEvent, GroupInfo, SeqNo};

/// The well-known FLIP port for all group-communication traffic.
pub const GROUP_PORT: Port = Port::from_raw(0x0047_5250); // "GRP"

type AppItem = Result<GroupEvent, GroupError>;

pub(crate) struct InstanceSlot {
    pub inst: Instance,
    pub app_tx: MailboxTx<AppItem>,
    pub send_waiters: HashMap<u64, MailboxTx<Result<SeqNo, GroupError>>>,
    pub reset_waiter: Option<MailboxTx<Result<(), GroupError>>>,
    pub leave_waiter: Option<MailboxTx<()>>,
}

pub(crate) struct PeerInner {
    pub instances: HashMap<u64, InstanceSlot>,
    pub join_reply_waiters: HashMap<u64, MailboxTx<GroupMsg>>,
    pub join_ack_waiters: HashMap<u64, MailboxTx<GroupMsg>>,
    pub next_local_id: u64,
}

/// One machine's group-communication kernel.
///
/// Start with [`GroupPeer::start`]; then use
/// [`create`](GroupPeer::create) / [`join`](GroupPeer::join) to obtain
/// [`Group`](crate::Group) handles. Cloning is cheap. All protocol state
/// dies with the machine (spawn a fresh peer after a reboot).
#[derive(Clone)]
pub struct GroupPeer {
    pub(crate) stack: NodeStack,
    pub(crate) handle: SimHandle,
    pub(crate) cfg: GroupConfig,
    pub(crate) inner: Arc<Mutex<PeerInner>>,
}

impl std::fmt::Debug for GroupPeer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "GroupPeer({})", self.stack.addr())
    }
}

impl GroupPeer {
    /// Binds the group port and starts the dispatcher and ticker processes
    /// on `sim_node` (they die when the machine crashes).
    pub fn start(
        spawner: &impl Spawn,
        sim_node: NodeId,
        stack: NodeStack,
        cfg: GroupConfig,
    ) -> GroupPeer {
        let handle = spawner.sim_handle();
        let rx = stack.bind(GROUP_PORT);
        let peer = GroupPeer {
            stack,
            handle,
            cfg,
            inner: Arc::new(Mutex::new(PeerInner {
                instances: HashMap::new(),
                join_reply_waiters: HashMap::new(),
                join_ack_waiters: HashMap::new(),
                next_local_id: 1,
            })),
        };
        let dispatcher = peer.clone();
        let (flush_tx, flush_rx) = peer.handle.channel::<()>();
        spawner.spawn_boxed(
            Some(sim_node),
            &format!("grp-dispatch@{}", peer.stack.addr()),
            Box::new(move |ctx| dispatcher.dispatch_loop(ctx, rx, flush_tx, flush_rx)),
        );
        let ticker = peer.clone();
        spawner.spawn_boxed(
            Some(sim_node),
            &format!("grp-tick@{}", peer.stack.addr()),
            Box::new(move |ctx| ticker.tick_loop(ctx)),
        );
        peer
    }

    /// This machine's host address.
    pub fn addr(&self) -> HostAddr {
        self.stack.addr()
    }

    /// Protocol statistics for the instance backing `group`.
    pub fn stats_of(&self, instance: u64) -> Option<GroupStats> {
        self.inner
            .lock()
            .instances
            .get(&instance)
            .map(|s| s.inst.stats)
    }

    fn dispatch_loop(
        &self,
        ctx: &Ctx,
        rx: MailboxRx<Packet>,
        flush_tx: MailboxTx<()>,
        flush_rx: MailboxRx<()>,
    ) {
        // With a coalescing window configured, packet handling defers the
        // sequencer's accept multicasts; a one-shot timer flushes what
        // accumulated. (The engine itself still flushes early the moment
        // `max_batch` accepts are pending, and the 20 ms tick is the
        // fallback bound.)
        let batch_delay = self.cfg.batch_delay;
        let windowed = self.cfg.max_batch > 1 && !batch_delay.is_zero();
        let mut flush_scheduled = false;
        loop {
            match amoeba_sim::select2(ctx, &rx, &flush_rx) {
                amoeba_sim::Either::Left(first) => {
                    // Drain the burst: every packet already queued arrived
                    // in the same network round and batches regardless of
                    // the window.
                    let mut pkt = first;
                    loop {
                        let more_pending = !rx.is_empty();
                        if let Ok(msg) = GroupMsg::decode(&pkt.payload) {
                            let tags = std::mem::take(&mut pkt.trace);
                            self.handle_msg(ctx, pkt.src, msg, windowed || more_pending, tags);
                        }
                        match rx.try_recv() {
                            Some(next) => pkt = next,
                            None => break,
                        }
                    }
                    if !windowed {
                        self.flush_all(ctx);
                    } else if !flush_scheduled && self.any_pending_batch() {
                        flush_tx.send_after(batch_delay, ());
                        flush_scheduled = true;
                    }
                }
                amoeba_sim::Either::Right(()) => {
                    flush_scheduled = false;
                    self.flush_all(ctx);
                }
            }
        }
    }

    /// Whether any instance holds accepts awaiting a batch flush.
    fn any_pending_batch(&self) -> bool {
        self.inner
            .lock()
            .instances
            .values()
            .any(|s| s.inst.has_pending_batch())
    }

    /// Flushes every instance's pending accept batch (end of a burst).
    fn flush_all(&self, ctx: &Ctx) {
        let mut work: Vec<(u64, Vec<Action>)> = {
            let mut inner = self.inner.lock();
            inner
                .instances
                .iter_mut()
                .map(|(id, slot)| (*id, slot.inst.flush_pending()))
                .filter(|(_, actions)| !actions.is_empty())
                .collect()
        };
        // Instance-id order: the map iterates in hash order, which varies
        // between runs, and the flush order decides message emission order.
        work.sort_unstable_by_key(|(id, _)| *id);
        for (id, actions) in work {
            for a in actions {
                self.execute(ctx, id, a);
            }
        }
    }

    fn handle_msg(
        &self,
        ctx: &Ctx,
        src: HostAddr,
        msg: GroupMsg,
        defer_flush: bool,
        tags: Vec<(u64, amoeba_telemetry::TraceCtx)>,
    ) {
        match &msg {
            GroupMsg::JoinLocate {
                port,
                joiner,
                join_id,
            } => {
                if *joiner == self.stack.addr() {
                    return; // our own broadcast
                }
                let mut replies: Vec<(u64, Action)> = {
                    let inner = self.inner.lock();
                    inner
                        .instances
                        .values()
                        .filter(|s| s.inst.port == *port)
                        .filter_map(|s| {
                            s.inst.join_reply(*joiner, *join_id).map(|a| (s.inst.id, a))
                        })
                        .collect()
                };
                replies.sort_unstable_by_key(|(id, _)| *id);
                for (id, action) in replies {
                    self.execute(ctx, id, action);
                }
            }
            GroupMsg::JoinReply { join_id, .. } => {
                let waiter = self.inner.lock().join_reply_waiters.remove(join_id);
                if let Some(w) = waiter {
                    w.send(msg);
                }
            }
            GroupMsg::JoinAck { join_id, .. } => {
                let waiter = self.inner.lock().join_ack_waiters.remove(join_id);
                if let Some(w) = waiter {
                    w.send(msg);
                }
            }
            other => {
                let instance = match instance_of(other) {
                    Some(i) => i,
                    None => return,
                };
                let now = self.handle.now();
                let actions = {
                    let mut inner = self.inner.lock();
                    match inner.instances.get_mut(&instance) {
                        Some(slot) if defer_flush => {
                            slot.inst.set_rx_tags(tags);
                            slot.inst.handle_deferred(now, src, other.clone())
                        }
                        Some(slot) => {
                            slot.inst.set_rx_tags(tags);
                            slot.inst.handle(now, src, other.clone())
                        }
                        None => Vec::new(),
                    }
                };
                for a in actions {
                    self.execute(ctx, instance, a);
                }
            }
        }
    }

    fn tick_loop(&self, ctx: &Ctx) {
        let interval = self.cfg.tick_interval;
        loop {
            ctx.sleep(interval);
            let now = self.handle.now();
            let work: Vec<(u64, Vec<Action>)> = {
                let mut inner = self.inner.lock();
                inner
                    .instances
                    .iter_mut()
                    .map(|(id, slot)| (*id, slot.inst.tick(now)))
                    .collect()
            };
            for (id, actions) in work {
                for a in actions {
                    self.execute(ctx, id, a);
                }
            }
        }
    }

    /// Executes one engine action. Must NOT be called with `inner` locked.
    pub(crate) fn execute(&self, _ctx: &Ctx, instance: u64, action: Action) {
        match action {
            Action::Traced(tags, inner) => match *inner {
                Action::Unicast(host, msg) => {
                    self.stack
                        .send_traced(Dest::Unicast(host), GROUP_PORT, msg.encode(), tags);
                }
                Action::Multicast(msg) => {
                    self.stack.send_traced(
                        Dest::Multicast(GroupAddr(instance)),
                        GROUP_PORT,
                        msg.encode(),
                        tags,
                    );
                }
                other => self.execute(_ctx, instance, other),
            },
            Action::Unicast(host, msg) => {
                self.stack
                    .send(Dest::Unicast(host), GROUP_PORT, msg.encode());
            }
            Action::Multicast(msg) => {
                self.stack.send(
                    Dest::Multicast(GroupAddr(instance)),
                    GROUP_PORT,
                    msg.encode(),
                );
            }
            Action::Deliver(event) => {
                let tx = self
                    .inner
                    .lock()
                    .instances
                    .get(&instance)
                    .map(|s| s.app_tx.clone());
                if let Some(tx) = tx {
                    tx.send(Ok(event));
                }
            }
            Action::NotifyFailure => {
                let tx = self
                    .inner
                    .lock()
                    .instances
                    .get(&instance)
                    .map(|s| s.app_tx.clone());
                if let Some(tx) = tx {
                    tx.send(Err(GroupError::Failed));
                }
            }
            Action::CompleteSend(msgid, result) => {
                let w = self
                    .inner
                    .lock()
                    .instances
                    .get_mut(&instance)
                    .and_then(|s| s.send_waiters.remove(&msgid));
                if let Some(w) = w {
                    w.send(result);
                }
            }
            Action::CompleteReset(result) => {
                let w = self
                    .inner
                    .lock()
                    .instances
                    .get_mut(&instance)
                    .and_then(|s| s.reset_waiter.take());
                if let Some(w) = w {
                    w.send(result);
                }
            }
            Action::CompleteLeave => {
                let w = self
                    .inner
                    .lock()
                    .instances
                    .get_mut(&instance)
                    .and_then(|s| s.leave_waiter.take());
                if let Some(w) = w {
                    w.send(());
                }
            }
            Action::Dissolve => {
                let slot = self.inner.lock().instances.remove(&instance);
                if let Some(mut slot) = slot {
                    self.stack.leave_group(GroupAddr(instance));
                    // Fail anything still blocked on this instance.
                    for a in slot.inst.fail_pending() {
                        if let Action::CompleteSend(msgid, result) = a {
                            if let Some(w) = slot.send_waiters.remove(&msgid) {
                                w.send(result);
                            }
                        }
                    }
                    slot.app_tx.send(Err(GroupError::Dead));
                    if let Some(w) = slot.reset_waiter.take() {
                        w.send(Err(GroupError::Dead));
                    }
                    if let Some(w) = slot.leave_waiter.take() {
                        w.send(());
                    }
                }
            }
        }
    }

    pub(crate) fn with_slot<T>(
        &self,
        instance: u64,
        f: impl FnOnce(&mut InstanceSlot) -> T,
    ) -> Option<T> {
        self.inner.lock().instances.get_mut(&instance).map(f)
    }

    pub(crate) fn info_of(&self, instance: u64) -> Option<GroupInfo> {
        self.inner
            .lock()
            .instances
            .get(&instance)
            .map(|s| s.inst.info())
    }

    /// Runs engine actions produced while holding the lock, after release.
    pub(crate) fn run_actions(&self, ctx: &Ctx, instance: u64, actions: Vec<Action>) {
        for a in actions {
            self.execute(ctx, instance, a);
        }
    }
}

/// Extracts the instance id from any instance-scoped message.
fn instance_of(msg: &GroupMsg) -> Option<u64> {
    match msg {
        GroupMsg::JoinLocate { .. } | GroupMsg::JoinReply { .. } | GroupMsg::JoinAck { .. } => None,
        GroupMsg::JoinRequest { instance, .. }
        | GroupMsg::SendReq { instance, .. }
        | GroupMsg::BbData { instance, .. }
        | GroupMsg::Accept { instance, .. }
        | GroupMsg::AcceptBatch { instance, .. }
        | GroupMsg::Ack { instance, .. }
        | GroupMsg::Done { instance, .. }
        | GroupMsg::DoneBatch { instance, .. }
        | GroupMsg::Retrans { instance, .. }
        | GroupMsg::Heartbeat { instance, .. }
        | GroupMsg::HeartbeatAck { instance, .. }
        | GroupMsg::LeaveRequest { instance, .. }
        | GroupMsg::FailNotice { instance, .. }
        | GroupMsg::ResetInvite { instance, .. }
        | GroupMsg::ResetVote { instance, .. }
        | GroupMsg::ResetResult { instance, .. }
        | GroupMsg::ExpelNotice { instance, .. } => Some(*instance),
    }
}

//! Core vocabulary types for group communication.

use std::fmt;

use amoeba_flip::{HostAddr, Payload};

/// Sequence number in the group's total order. Every event — application
/// message or membership change — consumes exactly one.
pub type SeqNo = u64;

/// Group incarnation: bumped by every successful `ResetGroup`.
pub type Incarnation = u64;

/// A member's stable identity within one group instance.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MemberId(pub u32);

impl fmt::Debug for MemberId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

impl fmt::Display for MemberId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// Everything the group layer knows about one member.
#[derive(Debug, Copy, Clone, PartialEq, Eq)]
pub struct MemberInfo {
    /// Stable id within the instance.
    pub id: MemberId,
    /// The member's host address.
    pub host: HostAddr,
    /// Application-supplied tag (the directory service stores its server
    /// number here so recovery can map members to replicas).
    pub tag: u64,
}

/// The current membership view.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct View {
    /// Members sorted by id.
    pub members: Vec<MemberInfo>,
}

impl View {
    /// The member acting as sequencer: the lowest live member id.
    pub fn sequencer(&self) -> Option<MemberInfo> {
        self.members.first().copied()
    }

    /// Looks up a member by id.
    pub fn member(&self, id: MemberId) -> Option<MemberInfo> {
        self.members.iter().find(|m| m.id == id).copied()
    }

    /// Whether `id` is in the view.
    pub fn contains(&self, id: MemberId) -> bool {
        self.member(id).is_some()
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Inserts keeping id order (replaces an existing entry with same id).
    pub fn insert(&mut self, m: MemberInfo) {
        self.members.retain(|x| x.id != m.id);
        let pos = self
            .members
            .iter()
            .position(|x| x.id > m.id)
            .unwrap_or(self.members.len());
        self.members.insert(pos, m);
    }

    /// Removes a member by id.
    pub fn remove(&mut self, id: MemberId) {
        self.members.retain(|x| x.id != id);
    }
}

/// Snapshot returned by `GetInfoGroup`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupInfo {
    /// This member's id.
    pub me: MemberId,
    /// Current incarnation.
    pub incarnation: Incarnation,
    /// Current membership view.
    pub view: View,
    /// Highest sequence number buffered *contiguously* by the kernel
    /// (everything up to here can be received without waiting).
    pub highest_contiguous: SeqNo,
    /// Sequence number of the last event handed to the application.
    pub delivered: SeqNo,
    /// Whether the group has failed and needs `ResetGroup`.
    pub failed: bool,
}

impl GroupInfo {
    /// Events buffered by the kernel but not yet received by the app —
    /// the quantity the directory service's read path drains first
    /// (paper §3.1).
    pub fn buffered(&self) -> u64 {
        self.highest_contiguous.saturating_sub(self.delivered)
    }
}

/// An event in the group's total order, as seen by the application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GroupEvent {
    /// An application message.
    Message {
        /// Sequence number (consecutive across all event kinds).
        seq: SeqNo,
        /// Sending member.
        from: MemberId,
        /// Sender's application tag.
        from_tag: u64,
        /// The payload (shared with the wire buffer it arrived in).
        data: Payload,
        /// Ordering-span context assigned by the sequencer when telemetry
        /// is enabled and the submitter was traced; `NONE` otherwise.
        /// Consumers (the RSM apply loop) parent their work to it.
        trace: amoeba_telemetry::TraceCtx,
    },
    /// A member joined (not delivered to the joiner itself).
    Joined {
        /// Sequence number of the view change.
        seq: SeqNo,
        /// The new member.
        member: MemberInfo,
    },
    /// A member left gracefully.
    Left {
        /// Sequence number of the view change.
        seq: SeqNo,
        /// The departed member.
        member: MemberInfo,
    },
    /// The group was rebuilt by `ResetGroup`; members may have been
    /// expelled. Delivered to every surviving member.
    ResetDone {
        /// The new view.
        view: View,
        /// The new incarnation.
        incarnation: Incarnation,
    },
}

impl GroupEvent {
    /// The event's sequence number, if it occupies a slot in the order.
    pub fn seq(&self) -> Option<SeqNo> {
        match self {
            GroupEvent::Message { seq, .. }
            | GroupEvent::Joined { seq, .. }
            | GroupEvent::Left { seq, .. } => Some(*seq),
            GroupEvent::ResetDone { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mi(id: u32) -> MemberInfo {
        MemberInfo {
            id: MemberId(id),
            host: HostAddr(id),
            tag: u64::from(id),
        }
    }

    #[test]
    fn view_keeps_id_order() {
        let mut v = View::default();
        v.insert(mi(5));
        v.insert(mi(1));
        v.insert(mi(3));
        let ids: Vec<u32> = v.members.iter().map(|m| m.id.0).collect();
        assert_eq!(ids, vec![1, 3, 5]);
        assert_eq!(v.sequencer().unwrap().id, MemberId(1));
    }

    #[test]
    fn view_insert_replaces_same_id() {
        let mut v = View::default();
        v.insert(mi(1));
        let mut updated = mi(1);
        updated.tag = 99;
        v.insert(updated);
        assert_eq!(v.len(), 1);
        assert_eq!(v.member(MemberId(1)).unwrap().tag, 99);
    }

    #[test]
    fn view_remove() {
        let mut v = View::default();
        v.insert(mi(1));
        v.insert(mi(2));
        v.remove(MemberId(1));
        assert!(!v.contains(MemberId(1)));
        assert_eq!(v.sequencer().unwrap().id, MemberId(2));
    }

    #[test]
    fn buffered_counts_pending_events() {
        let info = GroupInfo {
            me: MemberId(0),
            incarnation: 0,
            view: View::default(),
            highest_contiguous: 10,
            delivered: 7,
            failed: false,
        };
        assert_eq!(info.buffered(), 3);
    }

    #[test]
    fn event_seq_accessor() {
        let e = GroupEvent::Message {
            seq: 4,
            from: MemberId(1),
            from_tag: 0,
            data: Payload::empty(),
            trace: amoeba_telemetry::TraceCtx::NONE,
        };
        assert_eq!(e.seq(), Some(4));
        let r = GroupEvent::ResetDone {
            view: View::default(),
            incarnation: 1,
        };
        assert_eq!(r.seq(), None);
    }
}

//! Group communication errors.

use std::fmt;

/// Errors surfaced by the Fig. 1 primitives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupError {
    /// A member or the sequencer failed; the group must be rebuilt with
    /// `ResetGroup` before further sends/receives.
    Failed,
    /// This member has been expelled or the instance dissolved; rejoin or
    /// recreate the group.
    Dead,
    /// `ResetGroup` could not assemble the required number of members.
    ResetFailed,
    /// `JoinGroup` found no live group for the port within the timeout.
    JoinTimeout,
    /// The operation needs a view with a sequencer but there is none.
    NoSequencer,
}

impl fmt::Display for GroupError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            GroupError::Failed => "group failed; ResetGroup required",
            GroupError::Dead => "group membership lost; rejoin required",
            GroupError::ResetFailed => "group reset could not reach the required size",
            GroupError::JoinTimeout => "no group located within the join timeout",
            GroupError::NoSequencer => "group has no sequencer",
        };
        f.write_str(s)
    }
}

impl std::error::Error for GroupError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_distinct() {
        let all = [
            GroupError::Failed,
            GroupError::Dead,
            GroupError::ResetFailed,
            GroupError::JoinTimeout,
            GroupError::NoSequencer,
        ];
        let mut texts: Vec<String> = all.iter().map(|e| e.to_string()).collect();
        texts.sort();
        texts.dedup();
        assert_eq!(texts.len(), all.len());
    }
}

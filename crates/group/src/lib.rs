//! # amoeba-group — reliable, totally-ordered group communication
//!
//! A from-scratch implementation of Amoeba's group-communication
//! primitives (Kaashoek & Tanenbaum, ICDCS '91), the substrate the ICDCS
//! '93 fault-tolerant directory service is built on:
//!
//! | Paper primitive (Fig. 1) | Here |
//! |---|---|
//! | `CreateGroup` | [`GroupPeer::create`] |
//! | `JoinGroup` | [`GroupPeer::join`] |
//! | `LeaveGroup` | [`Group::leave`] |
//! | `SendToGroup` | [`Group::send`] |
//! | `ReceiveFromGroup` | [`Group::recv`] |
//! | `ResetGroup` | [`Group::reset`] |
//! | `GetInfoGroup` | [`Group::info`] |
//!
//! **Guarantees.** All members observe all events (messages and membership
//! changes) in one total order. With resilience degree *r*, a completed
//! `send` survives up to *r* member crashes. On failure the group refuses
//! further traffic until `reset` rebuilds it from the surviving members,
//! which recover any in-flight tail of the order from the most up-to-date
//! member before resuming.
//!
//! **Mechanism.** A sequencer (lowest member id) assigns sequence numbers.
//! Small messages take the PB path (point-to-point to the sequencer, which
//! multicasts an accept carrying the data — 5 packets for n=3, r=2, §3.1 of
//! the '93 paper); large messages take the BB path (sender multicasts data,
//! sequencer multicasts a short accept). Gaps are repaired by
//! retransmission; liveness comes from heartbeats.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod api;
mod config;
mod error;
mod instance;
mod msg;
mod peer;
mod types;

pub use api::Group;
pub use config::GroupConfig;
pub use error::GroupError;
pub use instance::GroupStats;
pub use msg::{AcceptBody, AcceptItem, DoneItem, GroupMsg};
pub use peer::{GroupPeer, GROUP_PORT};
pub use types::{GroupEvent, GroupInfo, Incarnation, MemberId, MemberInfo, SeqNo, View};

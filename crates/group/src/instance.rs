//! The protocol engine for one group instance at one member.
//!
//! Pure state machine: inputs are messages (with arrival time and source
//! host) and clock ticks; outputs are [`Action`]s that the peer layer
//! executes (send packets, deliver events to the app, complete blocked
//! calls). Keeping I/O out makes every protocol rule unit-testable.
//!
//! ## Protocol summary
//!
//! Total order comes from a **sequencer** — the lowest-id member of the
//! current view. Two data paths (Kaashoek & Tanenbaum 1991):
//!
//! * **PB method** (small messages): sender unicasts `SendReq` to the
//!   sequencer, which assigns the next sequence number and multicasts an
//!   `Accept` carrying the data.
//! * **BB method** (large messages): sender multicasts the data (`BbData`);
//!   the sequencer multicasts a short `Accept` referencing it.
//!
//! With resilience degree *r* > 0, members acknowledge each accept and the
//! sequencer notifies the sender (`Done`) only after `r + 1` members hold
//! the message, so `SendToGroup` returning guarantees survival of `r`
//! crashes (paper §1; 1 request + 1 multicast + (n−1) acks + 1 done = 5
//! packets for n = 3, r = 2, the figure in §3.1).
//!
//! Membership changes are themselves sequenced (`Join`/`Leave` accept
//! bodies), giving virtual synchrony. Failures are detected by heartbeat
//! silence and announced with `FailNotice`; the group then refuses traffic
//! until `ResetGroup` rebuilds it around the members that are still alive,
//! choosing as state source a member holding the highest contiguous prefix.

use amoeba_flip::{HostAddr, Payload, Port};
use amoeba_sim::SimTime;
use amoeba_telemetry::{Telemetry, TraceCtx};
use std::collections::{BTreeMap, BTreeSet, HashMap};

use crate::config::GroupConfig;
use crate::error::GroupError;
use crate::msg::{AcceptBody, AcceptItem, DoneItem, GroupMsg, MAX_ACCEPT_BATCH_ITEMS};
use crate::types::{GroupEvent, GroupInfo, Incarnation, MemberId, MemberInfo, SeqNo, View};

/// Most slots one retransmission request may cover: servers refuse wider
/// requests, and requesters clamp to it so a deep laggard recovers in
/// chunks rather than stalling on an over-wide ask.
const MAX_RETRANS_SPAN: u64 = 10_000;

/// Effects requested by the engine, executed by the peer layer.
#[derive(Debug)]
pub(crate) enum Action {
    /// A network-bound action carrying causal-trace tags, attached to
    /// the packet as out-of-band metadata by the peer layer. Wrapping
    /// (instead of widening `Unicast`/`Multicast`) keeps every untraced
    /// construction and match site unchanged.
    Traced(Vec<(u64, TraceCtx)>, Box<Action>),
    /// Send a message to one host.
    Unicast(HostAddr, GroupMsg),
    /// Multicast a message to the instance's group address.
    Multicast(GroupMsg),
    /// Hand an event to the application queue.
    Deliver(GroupEvent),
    /// Signal the application that the group failed (one sentinel).
    NotifyFailure,
    /// Complete a blocked `SendToGroup`.
    CompleteSend(u64, Result<SeqNo, GroupError>),
    /// Complete a blocked `ResetGroup`.
    CompleteReset(Result<(), GroupError>),
    /// Complete a blocked `LeaveGroup`.
    CompleteLeave,
    /// This member is gone (left or expelled); remove the instance.
    Dissolve,
}

/// Protocol counters for diagnostics and the cost-analysis experiment.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct GroupStats {
    /// `SendToGroup` calls initiated here.
    pub sends: u64,
    /// Accepts applied (messages + view changes).
    pub applied: u64,
    /// Retransmission requests issued.
    pub retrans_requests: u64,
    /// Accepts re-sent to others.
    pub retrans_served: u64,
    /// Send requests retransmitted to the sequencer.
    pub send_retries: u64,
    /// Group failures observed.
    pub failures: u64,
    /// Successful resets.
    pub resets: u64,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct AcceptRec {
    pub incarnation: Incarnation,
    pub from: MemberId,
    pub from_tag: u64,
    pub msgid: u64,
    pub body: AcceptBody,
}

#[derive(Debug)]
struct PendingSend {
    /// Shared payload; retries re-send the same buffer.
    data: Payload,
    sent_at: SimTime,
    bb: bool,
    /// Submitter's causal-trace context (NONE when untraced); retries
    /// re-attach it so the span tree stays connected across loss.
    trace: TraceCtx,
}

#[derive(Debug)]
struct AckState {
    acked: BTreeSet<MemberId>,
    from: MemberId,
    msgid: u64,
    done_sent: bool,
}

#[derive(Debug)]
struct ResetCoord {
    round: u64,
    min_size: usize,
    votes: HashMap<MemberId, (MemberInfo, SeqNo)>,
    deadline: SimTime,
    announced: bool,
}

#[derive(Debug)]
struct PendingInstall {
    new_incarnation: Incarnation,
    view: View,
    cutoff: SeqNo,
    source: HostAddr,
}

pub(crate) struct Instance {
    pub id: u64,
    pub port: Port,
    pub cfg: GroupConfig,
    pub me: MemberId,
    pub my_tag: u64,
    pub my_host: HostAddr,
    pub incarnation: Incarnation,
    pub view: View,
    next_member_id: u32,
    /// Sequencer only: the next sequence number to assign.
    next_seq: SeqNo,
    /// Received accepts by seqno (history and out-of-order future).
    buffer: BTreeMap<SeqNo, AcceptRec>,
    /// Everything `<= highest_contiguous` has been applied in order.
    pub highest_contiguous: SeqNo,
    /// Highest sequence number known to have been assigned anywhere
    /// (from buffered accepts and heartbeat `next_seq`); the upper bound
    /// for gap-recovery retransmission requests.
    highest_seen: SeqNo,
    /// Last seqno handed to the application.
    pub delivered: SeqNo,
    /// BB payloads waiting for (or paired with) their accept.
    bb_store: HashMap<(MemberId, u64), Payload>,
    /// (sender, msgid) → seq, for duplicate suppression.
    seen_msgids: HashMap<(MemberId, u64), SeqNo>,
    next_msgid: u64,
    pending_sends: HashMap<u64, PendingSend>,
    /// Sequencer only: accepts assigned a slot but not yet multicast,
    /// awaiting coalescing into one packet (flushed at the end of every
    /// entry point, or earlier when `cfg.max_batch` is reached).
    pending_batch: Vec<(SeqNo, AcceptRec)>,
    /// Sequencer only: resilience notifications not yet sent. They
    /// piggyback on the next accept multicast, or coalesce per sender
    /// into a `DoneBatch`, instead of one `Done` unicast each.
    pending_dones: Vec<DoneItem>,
    /// Sequencer only: ack bookkeeping per outstanding seqno.
    pending_acks: BTreeMap<SeqNo, AckState>,
    /// Liveness: member → last time we heard from it.
    last_heard: HashMap<MemberId, SimTime>,
    last_heartbeat_sent: SimTime,
    pub failed: bool,
    pub dissolved: bool,
    failure_notified: bool,
    /// When the current contiguity gap was first observed.
    gap_since: Option<SimTime>,
    /// Reset: my latched vote (coordinator, round, when).
    voted: Option<(MemberId, u64, SimTime)>,
    reset_coord: Option<ResetCoord>,
    pending_install: Option<PendingInstall>,
    next_reset_round: u64,
    pub stats: GroupStats,
    /// Telemetry handle; disabled by default, installed by the peer
    /// layer right after construction ([`Instance::set_telemetry`]).
    tele: Telemetry,
    /// Ordering-span context per sequence number: written by the
    /// sequencer when it assigns a slot and by members when a tagged
    /// accept arrives; read at delivery and when serving
    /// retransmissions; pruned with the accept buffer's history.
    trace_by_seq: BTreeMap<SeqNo, TraceCtx>,
    /// Trace tags of the packet currently being handled, keyed by msgid
    /// (send requests, BB data) or seqno (accepts). Set by the peer
    /// before each `handle` call; empty for untraced packets.
    rx_tags: Vec<(u64, TraceCtx)>,
}

impl std::fmt::Debug for Instance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Instance")
            .field("id", &self.id)
            .field("me", &self.me)
            .field("incarnation", &self.incarnation)
            .field("view", &self.view.members.len())
            .field("highest", &self.highest_contiguous)
            .field("failed", &self.failed)
            .finish()
    }
}

impl Instance {
    /// Creates the founding member (member 0, sequencer) of a new instance.
    pub fn create(
        id: u64,
        port: Port,
        cfg: GroupConfig,
        my_host: HostAddr,
        my_tag: u64,
        now: SimTime,
    ) -> Instance {
        let me = MemberId(0);
        let mut view = View::default();
        view.insert(MemberInfo {
            id: me,
            host: my_host,
            tag: my_tag,
        });
        Instance {
            id,
            port,
            cfg,
            me,
            my_tag,
            my_host,
            incarnation: 0,
            view,
            next_member_id: 1,
            next_seq: 1,
            buffer: BTreeMap::new(),
            highest_contiguous: 0,
            highest_seen: 0,
            delivered: 0,
            bb_store: HashMap::new(),
            seen_msgids: HashMap::new(),
            next_msgid: 1,
            pending_sends: HashMap::new(),
            pending_batch: Vec::new(),
            pending_dones: Vec::new(),
            pending_acks: BTreeMap::new(),
            last_heard: HashMap::new(),
            last_heartbeat_sent: now,
            failed: false,
            dissolved: false,
            failure_notified: false,
            gap_since: None,
            voted: None,
            reset_coord: None,
            pending_install: None,
            next_reset_round: 1,
            stats: GroupStats::default(),
            tele: Telemetry::disabled(),
            trace_by_seq: BTreeMap::new(),
            rx_tags: Vec::new(),
        }
    }

    /// Creates a member that just joined via `JoinAck`.
    #[allow(clippy::too_many_arguments)]
    pub fn from_join(
        id: u64,
        port: Port,
        cfg: GroupConfig,
        my_host: HostAddr,
        my_tag: u64,
        me: MemberId,
        incarnation: Incarnation,
        view: View,
        start_seq: SeqNo,
        now: SimTime,
    ) -> Instance {
        let next_member_id = view.members.iter().map(|m| m.id.0 + 1).max().unwrap_or(1);
        let mut last_heard = HashMap::new();
        for m in &view.members {
            last_heard.insert(m.id, now);
        }
        Instance {
            id,
            port,
            cfg,
            me,
            my_tag,
            my_host,
            incarnation,
            view,
            next_member_id,
            next_seq: start_seq + 1,
            buffer: BTreeMap::new(),
            highest_contiguous: start_seq,
            highest_seen: start_seq,
            delivered: start_seq,
            bb_store: HashMap::new(),
            seen_msgids: HashMap::new(),
            next_msgid: 1,
            pending_sends: HashMap::new(),
            pending_batch: Vec::new(),
            pending_dones: Vec::new(),
            pending_acks: BTreeMap::new(),
            last_heard,
            last_heartbeat_sent: now,
            failed: false,
            dissolved: false,
            failure_notified: false,
            gap_since: None,
            voted: None,
            reset_coord: None,
            pending_install: None,
            next_reset_round: 1,
            stats: GroupStats::default(),
            tele: Telemetry::disabled(),
            trace_by_seq: BTreeMap::new(),
            rx_tags: Vec::new(),
        }
    }

    /// Installs the telemetry handle (called by the peer layer right
    /// after construction; constructors default to disabled so the many
    /// direct-construction unit tests need no changes).
    pub(crate) fn set_telemetry(&mut self, tele: Telemetry) {
        self.tele = tele;
    }

    /// Stashes the trace tags of the packet about to be handled.
    pub(crate) fn set_rx_tags(&mut self, tags: Vec<(u64, TraceCtx)>) {
        self.rx_tags = tags;
    }

    /// The incoming tag for `key` (msgid or seqno), or `NONE`.
    fn rx_tag(&self, key: u64) -> TraceCtx {
        self.rx_tags
            .iter()
            .find(|&&(k, _)| k == key)
            .map(|&(_, c)| c)
            .unwrap_or(TraceCtx::NONE)
    }

    /// Wraps a network-bound action with trace tags (identity when the
    /// tag list is empty, so untraced runs build identical actions).
    fn traced(tags: Vec<(u64, TraceCtx)>, action: Action) -> Action {
        if tags.is_empty() {
            action
        } else {
            Action::Traced(tags, Box::new(action))
        }
    }

    fn is_sequencer(&self) -> bool {
        self.view.sequencer().map(|m| m.id) == Some(self.me)
    }

    fn sequencer_host(&self) -> Option<HostAddr> {
        self.view.sequencer().map(|m| m.host)
    }

    /// Resilience capped by the current view size.
    fn effective_r(&self) -> u32 {
        (self.cfg.resilience).min(self.view.len().saturating_sub(1) as u32)
    }

    /// Snapshot for `GetInfoGroup`.
    pub fn info(&self) -> GroupInfo {
        GroupInfo {
            me: self.me,
            incarnation: self.incarnation,
            view: self.view.clone(),
            highest_contiguous: self.highest_contiguous,
            delivered: self.delivered,
            failed: self.failed,
        }
    }

    // ==================================================================
    // Application entry points.
    // ==================================================================

    /// `SendToGroup`: begins sending; completion arrives via
    /// [`Action::CompleteSend`]. The payload is shared from here on:
    /// retries, sequencing and delivery never copy the bytes again.
    #[cfg_attr(not(test), allow(dead_code))] // production callers trace
    pub fn app_send(&mut self, now: SimTime, data: Payload) -> (u64, Vec<Action>) {
        self.app_send_traced(now, data, TraceCtx::NONE)
    }

    /// [`app_send`](Instance::app_send) with the submitter's causal-trace
    /// context: outgoing `SendReq`/`BbData` carry it keyed by msgid, and
    /// the sequencer parents its ordering span to it.
    pub fn app_send_traced(
        &mut self,
        now: SimTime,
        data: Payload,
        trace: TraceCtx,
    ) -> (u64, Vec<Action>) {
        let msgid = self.next_msgid;
        self.next_msgid += 1;
        self.stats.sends += 1;
        if self.failed || self.dissolved {
            return (
                msgid,
                vec![Action::CompleteSend(msgid, Err(GroupError::Failed))],
            );
        }
        let bb = data.len() >= self.cfg.bb_threshold;
        // Register before sequencing: a sequencer's own r=0 send completes
        // during the local apply inside sequence_message.
        self.pending_sends.insert(
            msgid,
            PendingSend {
                data: data.clone(),
                sent_at: now,
                bb,
                trace,
            },
        );
        let tags = if trace.is_some() {
            vec![(msgid, trace)]
        } else {
            Vec::new()
        };
        let mut actions = Vec::new();
        if bb {
            actions.push(Self::traced(
                tags,
                Action::Multicast(GroupMsg::BbData {
                    instance: self.id,
                    incarnation: self.incarnation,
                    from: self.me,
                    msgid,
                    data,
                }),
            ));
            // The sequencer learns of the message from the BbData itself.
        } else if self.is_sequencer() {
            let mut acts = self.sequence_message(
                now,
                self.me,
                self.my_tag,
                msgid,
                AcceptBody::Data(data),
                trace,
            );
            actions.append(&mut acts);
        } else {
            match self.sequencer_host() {
                Some(h) => actions.push(Self::traced(
                    tags,
                    Action::Unicast(
                        h,
                        GroupMsg::SendReq {
                            instance: self.id,
                            incarnation: self.incarnation,
                            from: self.me,
                            msgid,
                            data,
                        },
                    ),
                )),
                None => {
                    self.pending_sends.remove(&msgid);
                    return (
                        msgid,
                        vec![Action::CompleteSend(msgid, Err(GroupError::NoSequencer))],
                    );
                }
            }
        }
        actions.extend(self.flush_pending_batch());
        (msgid, actions)
    }

    /// `LeaveGroup`.
    pub fn app_leave(&mut self, now: SimTime) -> Vec<Action> {
        if self.dissolved {
            return vec![Action::CompleteLeave, Action::Dissolve];
        }
        if self.failed || self.view.len() == 1 {
            // Alone or broken: dissolve unilaterally.
            self.dissolved = true;
            return vec![Action::CompleteLeave, Action::Dissolve];
        }
        if self.is_sequencer() {
            let mut actions = self.sequence_message(
                now,
                self.me,
                self.my_tag,
                0,
                AcceptBody::Leave(self.me),
                TraceCtx::NONE,
            );
            actions.extend(self.flush_pending_batch());
            actions
        } else {
            match self.sequencer_host() {
                Some(h) => vec![Action::Unicast(
                    h,
                    GroupMsg::LeaveRequest {
                        instance: self.id,
                        incarnation: self.incarnation,
                        member: self.me,
                    },
                )],
                None => {
                    self.dissolved = true;
                    vec![Action::CompleteLeave, Action::Dissolve]
                }
            }
        }
    }

    /// `ResetGroup`: become a reset coordinator.
    pub fn app_reset(&mut self, now: SimTime, min_size: usize) -> Vec<Action> {
        if self.dissolved {
            return vec![Action::CompleteReset(Err(GroupError::Dead))];
        }
        let round = self.next_reset_round;
        self.next_reset_round += 1;
        let mut votes = HashMap::new();
        votes.insert(
            self.me,
            (
                MemberInfo {
                    id: self.me,
                    host: self.my_host,
                    tag: self.my_tag,
                },
                self.highest_contiguous,
            ),
        );
        self.reset_coord = Some(ResetCoord {
            round,
            min_size,
            votes,
            deadline: now + self.cfg.reset_vote_window,
            announced: false,
        });
        // Latch our own vote so lower-priority coordinators are ignored.
        self.voted = Some((self.me, round, now));
        vec![Action::Multicast(GroupMsg::ResetInvite {
            instance: self.id,
            old_incarnation: self.incarnation,
            coord: self.me,
            coord_host: self.my_host,
            round,
        })]
    }

    // ==================================================================
    // Sequencer-side helpers.
    // ==================================================================

    /// Assigns the next slot to a message and queues its accept for the
    /// next multicast flush. Consecutive sequencing calls within one
    /// network round coalesce into a single [`GroupMsg::AcceptBatch`]
    /// packet; the flush happens at the end of every protocol entry
    /// point, or immediately once `cfg.max_batch` slots are pending.
    fn sequence_message(
        &mut self,
        now: SimTime,
        from: MemberId,
        from_tag: u64,
        msgid: u64,
        body: AcceptBody,
        trace: TraceCtx,
    ) -> Vec<Action> {
        let seq = self.next_seq;
        self.next_seq += 1;
        if trace.is_some() {
            // The ordering span: opened when the slot is assigned, closed
            // when the message reaches its resilience degree (see
            // `check_resilience`). Every member's delivery parents to it.
            let order = self
                .tele
                .begin_child("grp.order", u64::from(self.my_host.0), trace);
            if order.is_some() {
                self.trace_by_seq.insert(seq, order);
            }
        }
        let rec = AcceptRec {
            incarnation: self.incarnation,
            from,
            from_tag,
            msgid,
            body,
        };
        self.pending_batch.push((seq, rec.clone()));
        let mut actions = Vec::new();
        // The wire format caps a batch at MAX_ACCEPT_BATCH_ITEMS; clamp
        // however large the knob is set, or oversized batches would be
        // undecodable and silently dropped by every member.
        if self.pending_batch.len() >= self.cfg.max_batch.clamp(1, MAX_ACCEPT_BATCH_ITEMS) {
            actions.extend(self.flush_pending_batch());
        }
        // Track acks before applying: apply may complete r=0 sends.
        let mut acked = BTreeSet::new();
        acked.insert(self.me);
        self.pending_acks.insert(
            seq,
            AckState {
                acked,
                from,
                msgid,
                done_sent: false,
            },
        );
        self.insert_accept(seq, rec);
        let mut more = self.advance(now);
        actions.append(&mut more);
        let mut done = self.check_resilience(seq);
        actions.append(&mut done);
        actions
    }

    /// Multicasts everything queued by [`sequence_message`] as one
    /// packet: a plain `Accept` for a single slot, an `AcceptBatch` for
    /// several consecutive slots (or for one slot with pending done
    /// notifications riding along). Dones with no accept to ride on
    /// coalesce per sender into `DoneBatch` packets.
    fn flush_pending_batch(&mut self) -> Vec<Action> {
        let mut dones = std::mem::take(&mut self.pending_dones);
        if self.pending_batch.is_empty() {
            return self.flush_dones_alone(dones);
        }
        // The wire format caps a dones vector at MAX_ACCEPT_BATCH_ITEMS;
        // an oversized one would be undecodable and drop the whole
        // packet (accepts included). Overflow goes out as separate
        // DoneBatch packets below.
        let overflow = if dones.len() > MAX_ACCEPT_BATCH_ITEMS {
            dones.split_off(MAX_ACCEPT_BATCH_ITEMS)
        } else {
            Vec::new()
        };
        let batch = std::mem::take(&mut self.pending_batch);
        debug_assert!(
            batch.windows(2).all(|w| w[1].0 == w[0].0 + 1),
            "batched accepts must hold consecutive slots"
        );
        // Outgoing accepts carry each traced slot's ordering context,
        // keyed by seqno, so receivers can parent their deliveries.
        let tags: Vec<(u64, TraceCtx)> = batch
            .iter()
            .filter_map(|&(seq, _)| self.trace_by_seq.get(&seq).map(|&c| (seq, c)))
            .collect();
        if batch.len() == 1 && dones.is_empty() {
            let (seq, rec) = batch.into_iter().next().expect("len checked");
            return vec![Self::traced(
                tags,
                Action::Multicast(GroupMsg::Accept {
                    instance: self.id,
                    incarnation: rec.incarnation,
                    seq,
                    from: rec.from,
                    from_tag: rec.from_tag,
                    msgid: rec.msgid,
                    body: rec.body,
                }),
            )];
        }
        let first_seq = batch[0].0;
        let incarnation = batch[0].1.incarnation;
        let items = batch
            .into_iter()
            .map(|(_, rec)| AcceptItem {
                from: rec.from,
                from_tag: rec.from_tag,
                msgid: rec.msgid,
                body: rec.body,
            })
            .collect();
        let mut actions = vec![Self::traced(
            tags,
            Action::Multicast(GroupMsg::AcceptBatch {
                instance: self.id,
                incarnation,
                first_seq,
                items,
                dones,
            }),
        )];
        actions.extend(self.flush_dones_alone(overflow));
        actions
    }

    /// Sends queued done notifications when no accept multicast is
    /// pending to carry them: one `DoneBatch` unicast per sender when
    /// a single sender is owed, one multicast when one packet can
    /// serve several senders. Chunked at the wire format's
    /// MAX_ACCEPT_BATCH_ITEMS cap so every packet stays decodable.
    fn flush_dones_alone(&mut self, dones: Vec<DoneItem>) -> Vec<Action> {
        if dones.is_empty() {
            return Vec::new();
        }
        let mut senders: Vec<MemberId> = dones.iter().map(|d| d.from).collect();
        senders.sort_unstable();
        senders.dedup();
        let single_host = if senders.len() == 1 {
            match self.view.member(senders[0]) {
                Some(m) => Some(m.host),
                None => return Vec::new(),
            }
        } else {
            None
        };
        dones
            .chunks(MAX_ACCEPT_BATCH_ITEMS)
            .map(|chunk| {
                let msg = GroupMsg::DoneBatch {
                    instance: self.id,
                    items: chunk.to_vec(),
                };
                match single_host {
                    Some(h) => Action::Unicast(h, msg),
                    None => Action::Multicast(msg),
                }
            })
            .collect()
    }

    /// If `seq` has reached r+1 holders, notify the sender.
    fn check_resilience(&mut self, seq: SeqNo) -> Vec<Action> {
        let r = self.effective_r();
        let st = match self.pending_acks.get_mut(&seq) {
            Some(s) => s,
            None => return Vec::new(),
        };
        if st.done_sent || (st.acked.len() as u32) < r + 1 {
            return Vec::new();
        }
        st.done_sent = true;
        let (from, msgid) = (st.from, st.msgid);
        // The ordering span ends here: the message has reached its
        // resilience degree and the protocol's obligation is met.
        if let Some(&ctx) = self.trace_by_seq.get(&seq) {
            self.tele.end(ctx);
        }
        if st.acked.len() >= self.view.len() {
            self.pending_acks.remove(&seq);
        }
        if msgid == 0 {
            return Vec::new(); // view changes have no sender to notify
        }
        if from == self.me {
            if self.pending_sends.remove(&msgid).is_some() {
                return vec![Action::CompleteSend(msgid, Ok(seq))];
            }
            return Vec::new();
        }
        if self.view.contains(from) {
            // Batch the reply direction: queue the notification for
            // the next flush instead of one unicast per message.
            self.pending_dones.push(DoneItem { from, msgid, seq });
        }
        Vec::new()
    }

    // ==================================================================
    // Receive path.
    // ==================================================================

    fn insert_accept(&mut self, seq: SeqNo, rec: AcceptRec) {
        self.highest_seen = self.highest_seen.max(seq);
        if seq > self.highest_contiguous {
            match self.buffer.entry(seq) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(rec);
                }
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    // A retransmission may resolve a buffered `BbRef` into
                    // inline data (the server substitutes the bulk bytes,
                    // see `on_retrans`); the upgrade must win or a member
                    // whose BbData was lost would stall on the stale
                    // reference forever. Same slot, same message —
                    // everything else about the record is identical.
                    let existing = e.get();
                    if matches!(existing.body, AcceptBody::BbRef)
                        && matches!(rec.body, AcceptBody::Data(_))
                        && existing.from == rec.from
                        && existing.msgid == rec.msgid
                    {
                        e.insert(rec);
                    }
                }
            }
        }
    }

    /// Applies buffered accepts in order; returns deliveries plus, when
    /// r > 0, one **cumulative** ack for the highest slot applied (one
    /// ack per batch of progress, not one per accept).
    fn advance(&mut self, now: SimTime) -> Vec<Action> {
        let mut actions = Vec::new();
        let start_contiguous = self.highest_contiguous;
        loop {
            let next = self.highest_contiguous + 1;
            let rec = match self.buffer.get(&next) {
                Some(r) => r.clone(),
                None => break,
            };
            // BB messages can only be applied once their data is here.
            if matches!(rec.body, AcceptBody::BbRef)
                && !self.bb_store.contains_key(&(rec.from, rec.msgid))
            {
                if self.gap_since.is_none() {
                    self.gap_since = Some(now);
                }
                break;
            }
            self.highest_contiguous = next;
            self.gap_since = None;
            self.stats.applied += 1;
            if rec.msgid != 0 {
                self.seen_msgids.insert((rec.from, rec.msgid), next);
            }
            let trace = self
                .trace_by_seq
                .get(&next)
                .copied()
                .unwrap_or(TraceCtx::NONE);
            match rec.body.clone() {
                AcceptBody::Data(data) => {
                    actions.push(Action::Deliver(GroupEvent::Message {
                        seq: next,
                        from: rec.from,
                        from_tag: rec.from_tag,
                        data,
                        trace,
                    }));
                    self.delivered = next;
                }
                AcceptBody::BbRef => {
                    let data = self
                        .bb_store
                        .get(&(rec.from, rec.msgid))
                        .cloned()
                        .unwrap_or_default();
                    actions.push(Action::Deliver(GroupEvent::Message {
                        seq: next,
                        from: rec.from,
                        from_tag: rec.from_tag,
                        data,
                        trace,
                    }));
                    self.delivered = next;
                }
                AcceptBody::Join(m) => {
                    self.view.insert(m);
                    self.next_member_id = self.next_member_id.max(m.id.0 + 1);
                    self.last_heard.insert(m.id, now);
                    if m.id != self.me {
                        actions.push(Action::Deliver(GroupEvent::Joined {
                            seq: next,
                            member: m,
                        }));
                        self.delivered = next;
                    } else {
                        self.delivered = next;
                    }
                }
                AcceptBody::Leave(id) => {
                    let info = self.view.member(id);
                    self.view.remove(id);
                    self.last_heard.remove(&id);
                    if id == self.me {
                        self.dissolved = true;
                        actions.push(Action::CompleteLeave);
                        actions.push(Action::Dissolve);
                        return actions;
                    }
                    if let Some(m) = info {
                        actions.push(Action::Deliver(GroupEvent::Left {
                            seq: next,
                            member: m,
                        }));
                    }
                    self.delivered = next;
                    // If the sequencer left, the new lowest id takes over.
                    if self.is_sequencer() {
                        self.next_seq = self.highest_contiguous + 1;
                    }
                }
            }
            // r == 0 senders complete on observing their own accept.
            if rec.from == self.me
                && rec.msgid != 0
                && self.effective_r() == 0
                && self.pending_sends.remove(&rec.msgid).is_some()
            {
                actions.push(Action::CompleteSend(rec.msgid, Ok(next)));
            }
            // Prune old history.
            let keep_from = self.highest_contiguous.saturating_sub(self.cfg.history);
            while let Some((&first, _)) = self.buffer.iter().next() {
                if first < keep_from {
                    self.buffer.remove(&first);
                } else {
                    break;
                }
            }
            if !self.trace_by_seq.is_empty() {
                self.trace_by_seq = self.trace_by_seq.split_off(&keep_from);
            }
        }
        // r > 0: acknowledge all progress to the sequencer with a single
        // cumulative ack (it counts holders per slot up to this seqno).
        if self.highest_contiguous > start_contiguous
            && self.effective_r() > 0
            && !self.is_sequencer()
        {
            if let Some(h) = self.sequencer_host() {
                actions.push(Action::Unicast(
                    h,
                    GroupMsg::Ack {
                        instance: self.id,
                        incarnation: self.incarnation,
                        seq: self.highest_contiguous,
                        member: self.me,
                    },
                ));
            }
        }
        // Check whether a pending reset can now be installed.
        if let Some(p) = &self.pending_install {
            if self.highest_contiguous >= p.cutoff {
                let mut more = self.install_reset(now);
                actions.append(&mut more);
            }
        }
        actions
    }

    /// Marks the group failed and tells everyone.
    fn fail_group(&mut self, suspect: MemberId) -> Vec<Action> {
        if self.failed {
            return Vec::new();
        }
        self.failed = true;
        self.stats.failures += 1;
        // Push out any accepts still waiting on a batch flush first, so
        // members hold as much of the order as possible going into reset.
        let mut actions = self.flush_pending_batch();
        actions.push(Action::Multicast(GroupMsg::FailNotice {
            instance: self.id,
            incarnation: self.incarnation,
            suspect,
        }));
        actions.append(&mut self.on_failed());
        actions
    }

    /// Local bookkeeping when the group enters the failed state.
    fn on_failed(&mut self) -> Vec<Action> {
        let mut actions = Vec::new();
        if !self.failure_notified {
            self.failure_notified = true;
            actions.push(Action::NotifyFailure);
        }
        actions
    }

    // ==================================================================
    // Message handling.
    // ==================================================================

    /// Handles a message from the network, flushing any accepts the
    /// message caused to be sequenced.
    pub fn handle(&mut self, now: SimTime, src: HostAddr, msg: GroupMsg) -> Vec<Action> {
        let mut actions = self.handle_deferred(now, src, msg);
        actions.extend(self.flush_pending_batch());
        actions
    }

    /// [`handle`](Instance::handle) without the trailing flush: the peer
    /// layer uses this while draining a burst of same-instant packets so
    /// the sequencer coalesces their accepts into one multicast, then
    /// calls [`flush_pending`](Instance::flush_pending) once at the end
    /// of the burst.
    pub(crate) fn handle_deferred(
        &mut self,
        now: SimTime,
        src: HostAddr,
        msg: GroupMsg,
    ) -> Vec<Action> {
        if self.dissolved {
            return Vec::new();
        }
        match msg {
            GroupMsg::JoinRequest {
                joiner,
                tag,
                join_id,
                ..
            } => self.on_join_request(now, joiner, tag, join_id),
            GroupMsg::SendReq {
                incarnation,
                from,
                msgid,
                data,
                ..
            } => self.on_send_req(now, incarnation, from, msgid, data),
            GroupMsg::BbData {
                incarnation,
                from,
                msgid,
                data,
                ..
            } => self.on_bb_data(now, incarnation, from, msgid, data),
            GroupMsg::Accept {
                incarnation,
                seq,
                from,
                from_tag,
                msgid,
                body,
                ..
            } => self.on_accept(now, src, incarnation, seq, from, from_tag, msgid, body),
            GroupMsg::AcceptBatch {
                incarnation,
                first_seq,
                items,
                dones,
                ..
            } => self.on_accept_batch(now, src, incarnation, first_seq, items, dones),
            GroupMsg::DoneBatch { items, .. } => self.on_done_batch(items),
            GroupMsg::Ack {
                incarnation,
                seq,
                member,
                ..
            } => self.on_ack(now, incarnation, seq, member),
            GroupMsg::Done { msgid, seq, .. } => self.on_done(msgid, seq),
            GroupMsg::Retrans {
                from_seq,
                to_seq,
                requester,
                ..
            } => self.on_retrans(from_seq, to_seq, requester),
            GroupMsg::Heartbeat {
                incarnation,
                next_seq,
                sequencer,
                ..
            } => self.on_heartbeat(now, src, incarnation, next_seq, sequencer),
            GroupMsg::HeartbeatAck {
                incarnation,
                member,
                ..
            } => {
                if incarnation == self.incarnation {
                    self.last_heard.insert(member, now);
                }
                Vec::new()
            }
            GroupMsg::LeaveRequest {
                incarnation,
                member,
                ..
            } => {
                if incarnation == self.incarnation && self.is_sequencer() && !self.failed {
                    if let Some(m) = self.view.member(member) {
                        return self.sequence_message(
                            now,
                            m.id,
                            m.tag,
                            0,
                            AcceptBody::Leave(member),
                            TraceCtx::NONE,
                        );
                    }
                }
                Vec::new()
            }
            GroupMsg::FailNotice { incarnation, .. } => {
                if incarnation == self.incarnation && !self.failed {
                    self.failed = true;
                    self.stats.failures += 1;
                    return self.on_failed();
                }
                Vec::new()
            }
            GroupMsg::ResetInvite {
                old_incarnation,
                coord,
                coord_host,
                round,
                ..
            } => self.on_reset_invite(now, old_incarnation, coord, coord_host, round),
            GroupMsg::ResetVote {
                old_incarnation,
                round,
                coord,
                voter,
                highest,
                ..
            } => self.on_reset_vote(now, old_incarnation, round, coord, voter, highest),
            GroupMsg::ResetResult {
                old_incarnation,
                round,
                coord,
                new_incarnation,
                view,
                cutoff,
                source,
                ..
            } => self.on_reset_result(
                now,
                old_incarnation,
                round,
                coord,
                new_incarnation,
                view,
                cutoff,
                source,
            ),
            GroupMsg::ExpelNotice {
                current_incarnation,
                ..
            } => {
                if current_incarnation > self.incarnation {
                    self.dissolved = true;
                    let mut actions = self.on_failed();
                    actions.push(Action::Dissolve);
                    return actions;
                }
                Vec::new()
            }
            // Handled at the peer layer.
            GroupMsg::JoinLocate { .. } | GroupMsg::JoinReply { .. } | GroupMsg::JoinAck { .. } => {
                Vec::new()
            }
        }
    }

    fn on_join_request(
        &mut self,
        now: SimTime,
        joiner: HostAddr,
        tag: u64,
        join_id: u64,
    ) -> Vec<Action> {
        if !self.is_sequencer() || self.failed {
            return Vec::new();
        }
        // Idempotence: a retried join from the same host re-uses its slot.
        if let Some(existing) = self.view.members.iter().find(|m| m.host == joiner) {
            let existing = *existing;
            return vec![Action::Unicast(
                joiner,
                GroupMsg::JoinAck {
                    instance: self.id,
                    join_id,
                    member_id: existing.id,
                    incarnation: self.incarnation,
                    view: self.view.clone(),
                    start_seq: self.highest_contiguous,
                },
            )];
        }
        let member = MemberInfo {
            id: MemberId(self.next_member_id),
            host: joiner,
            tag,
        };
        self.next_member_id += 1;
        let mut actions = self.sequence_message(
            now,
            member.id,
            tag,
            0,
            AcceptBody::Join(member),
            TraceCtx::NONE,
        );
        // View changes leave the batch immediately (joins are rare and
        // existing members must learn of the new view without delay).
        actions.extend(self.flush_pending_batch());
        // The join accept was applied locally just now, so the view already
        // contains the joiner and highest_contiguous is its start position.
        actions.push(Action::Unicast(
            joiner,
            GroupMsg::JoinAck {
                instance: self.id,
                join_id,
                member_id: member.id,
                incarnation: self.incarnation,
                view: self.view.clone(),
                start_seq: self.highest_contiguous,
            },
        ));
        actions
    }

    fn on_send_req(
        &mut self,
        now: SimTime,
        incarnation: Incarnation,
        from: MemberId,
        msgid: u64,
        data: Payload,
    ) -> Vec<Action> {
        if !self.is_sequencer() || self.failed {
            return Vec::new();
        }
        if incarnation != self.incarnation {
            if incarnation < self.incarnation && !self.view.contains(from) {
                if let Some(h) = self.host_of_unknown(from) {
                    return vec![Action::Unicast(
                        h,
                        GroupMsg::ExpelNotice {
                            instance: self.id,
                            current_incarnation: self.incarnation,
                        },
                    )];
                }
            }
            return Vec::new();
        }
        // Duplicate suppression for sender retries.
        if let Some(&seq) = self.seen_msgids.get(&(from, msgid)) {
            if let Some(m) = self.view.member(from) {
                return vec![Action::Unicast(
                    m.host,
                    GroupMsg::Done {
                        instance: self.id,
                        msgid,
                        seq,
                    },
                )];
            }
            return Vec::new();
        }
        let tag = self.view.member(from).map(|m| m.tag).unwrap_or(0);
        if !self.view.contains(from) {
            return Vec::new();
        }
        let trace = self.rx_tag(msgid);
        self.sequence_message(now, from, tag, msgid, AcceptBody::Data(data), trace)
    }

    fn on_bb_data(
        &mut self,
        now: SimTime,
        incarnation: Incarnation,
        from: MemberId,
        msgid: u64,
        data: Payload,
    ) -> Vec<Action> {
        if incarnation != self.incarnation {
            return Vec::new();
        }
        self.bb_store.insert((from, msgid), data);
        let mut actions = self.advance(now); // a stalled BbRef may now apply
        if self.is_sequencer() && !self.failed && !self.seen_msgids.contains_key(&(from, msgid)) {
            let tag = self.view.member(from).map(|m| m.tag).unwrap_or(0);
            if self.view.contains(from) {
                let trace = self.rx_tag(msgid);
                let mut more =
                    self.sequence_message(now, from, tag, msgid, AcceptBody::BbRef, trace);
                actions.append(&mut more);
            }
        }
        actions
    }

    /// Whether an incoming accept for `seq` may enter the buffer.
    /// Accepts from an older incarnation are only acceptable while we
    /// are catching up to a reset cutoff, and only from our view/source.
    fn accept_admissible(&self, incarnation: Incarnation, seq: SeqNo, src: HostAddr) -> bool {
        if incarnation == self.incarnation {
            true
        } else if let Some(p) = &self.pending_install {
            incarnation < p.new_incarnation && seq <= p.cutoff && src == p.source
        } else {
            false
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn on_accept(
        &mut self,
        now: SimTime,
        src: HostAddr,
        incarnation: Incarnation,
        seq: SeqNo,
        from: MemberId,
        from_tag: u64,
        msgid: u64,
        body: AcceptBody,
    ) -> Vec<Action> {
        if !self.accept_admissible(incarnation, seq, src) {
            return Vec::new();
        }
        if seq <= self.highest_contiguous {
            return Vec::new(); // duplicate
        }
        let rx = self.rx_tag(seq);
        if rx.is_some() {
            self.trace_by_seq.insert(seq, rx);
        }
        self.insert_accept(
            seq,
            AcceptRec {
                incarnation,
                from,
                from_tag,
                msgid,
                body,
            },
        );
        if seq > self.highest_contiguous + 1 && self.gap_since.is_none() {
            self.gap_since = Some(now);
        }
        self.advance(now)
    }

    /// Handles a coalesced batch of consecutive accepts: buffer every
    /// admissible slot, then apply once — producing one cumulative ack
    /// for the whole batch instead of one per slot. Piggybacked done
    /// notifications addressed to us complete their sends first.
    fn on_accept_batch(
        &mut self,
        now: SimTime,
        src: HostAddr,
        incarnation: Incarnation,
        first_seq: SeqNo,
        items: Vec<AcceptItem>,
        dones: Vec<DoneItem>,
    ) -> Vec<Action> {
        let mut done_actions = self.on_done_batch(dones);
        let mut any = false;
        for (i, item) in items.into_iter().enumerate() {
            let seq = first_seq + i as SeqNo;
            if !self.accept_admissible(incarnation, seq, src) {
                continue;
            }
            if seq <= self.highest_contiguous {
                continue; // duplicate
            }
            let rx = self.rx_tag(seq);
            if rx.is_some() {
                self.trace_by_seq.insert(seq, rx);
            }
            self.insert_accept(
                seq,
                AcceptRec {
                    incarnation,
                    from: item.from,
                    from_tag: item.from_tag,
                    msgid: item.msgid,
                    body: item.body,
                },
            );
            any = true;
        }
        if !any {
            return done_actions;
        }
        if first_seq > self.highest_contiguous + 1 && self.gap_since.is_none() {
            self.gap_since = Some(now);
        }
        let mut actions = self.advance(now);
        done_actions.append(&mut actions);
        done_actions
    }

    /// Completes every pending send a batched done notification names
    /// us for; items for other members are ignored.
    fn on_done_batch(&mut self, items: Vec<DoneItem>) -> Vec<Action> {
        let mut actions = Vec::new();
        for d in items {
            if d.from == self.me {
                actions.extend(self.on_done(d.msgid, d.seq));
            }
        }
        actions
    }

    fn on_ack(
        &mut self,
        _now: SimTime,
        incarnation: Incarnation,
        seq: SeqNo,
        member: MemberId,
    ) -> Vec<Action> {
        if incarnation != self.incarnation || !self.is_sequencer() {
            return Vec::new();
        }
        // Acks are cumulative: `seq` covers every outstanding slot up to
        // and including it.
        let covered: Vec<SeqNo> = self.pending_acks.range(..=seq).map(|(s, _)| *s).collect();
        let mut actions = Vec::new();
        for s in covered {
            if let Some(st) = self.pending_acks.get_mut(&s) {
                st.acked.insert(member);
            }
            actions.extend(self.check_resilience(s));
        }
        actions
    }

    fn on_done(&mut self, msgid: u64, seq: SeqNo) -> Vec<Action> {
        if self.pending_sends.remove(&msgid).is_some() {
            vec![Action::CompleteSend(msgid, Ok(seq))]
        } else {
            Vec::new()
        }
    }

    fn on_retrans(&mut self, from_seq: SeqNo, to_seq: SeqNo, requester: HostAddr) -> Vec<Action> {
        if requester == self.my_host {
            return Vec::new();
        }
        // Only serve members of our view (keeps divergent partitioned
        // histories from leaking across a heal).
        let in_view = self.view.members.iter().any(|m| m.host == requester);
        if !in_view {
            return Vec::new();
        }
        let mut actions = Vec::new();
        let span = to_seq.saturating_sub(from_seq);
        if span > MAX_RETRANS_SPAN {
            return Vec::new();
        }
        for seq in from_seq..=to_seq {
            if let Some(rec) = self.buffer.get(&seq) {
                let body = match &rec.body {
                    // Resolve BB references so the requester need not chase
                    // the bulk data separately.
                    AcceptBody::BbRef => match self.bb_store.get(&(rec.from, rec.msgid)) {
                        Some(d) => AcceptBody::Data(d.clone()),
                        None => continue,
                    },
                    other => other.clone(),
                };
                self.stats.retrans_served += 1;
                let tags = match self.trace_by_seq.get(&seq) {
                    Some(&c) => vec![(seq, c)],
                    None => Vec::new(),
                };
                actions.push(Self::traced(
                    tags,
                    Action::Unicast(
                        requester,
                        GroupMsg::Accept {
                            instance: self.id,
                            incarnation: rec.incarnation,
                            seq,
                            from: rec.from,
                            from_tag: rec.from_tag,
                            msgid: rec.msgid,
                            body,
                        },
                    ),
                ));
            }
        }
        actions
    }

    fn on_heartbeat(
        &mut self,
        now: SimTime,
        src: HostAddr,
        incarnation: Incarnation,
        next_seq: SeqNo,
        sequencer: MemberId,
    ) -> Vec<Action> {
        if incarnation != self.incarnation {
            // A heartbeat from a stale incarnation means its sender was
            // expelled by a reset it did not see.
            if incarnation < self.incarnation {
                return vec![Action::Unicast(
                    src,
                    GroupMsg::ExpelNotice {
                        instance: self.id,
                        current_incarnation: self.incarnation,
                    },
                )];
            }
            return Vec::new();
        }
        self.last_heard.insert(sequencer, now);
        self.highest_seen = self.highest_seen.max(next_seq.saturating_sub(1));
        let mut actions = Vec::new();
        if !self.is_sequencer() {
            actions.push(Action::Unicast(
                src,
                GroupMsg::HeartbeatAck {
                    instance: self.id,
                    incarnation: self.incarnation,
                    member: self.me,
                },
            ));
            // Idle-period gap detection.
            if next_seq > self.highest_contiguous + 1 && self.gap_since.is_none() {
                self.gap_since = Some(now);
            }
        }
        actions
    }

    // ==================================================================
    // Reset protocol.
    // ==================================================================

    fn on_reset_invite(
        &mut self,
        now: SimTime,
        old_incarnation: Incarnation,
        coord: MemberId,
        coord_host: HostAddr,
        round: u64,
    ) -> Vec<Action> {
        if old_incarnation != self.incarnation {
            return Vec::new();
        }
        // Vote latching: prefer the lowest member id as coordinator; a
        // latched vote expires after two vote windows.
        let latch_expired = match self.voted {
            Some((_, _, at)) => now.saturating_since(at) > self.cfg.reset_vote_window * 2,
            None => true,
        };
        let better = match self.voted {
            Some((c, r, _)) => coord < c || (coord == c && round >= r),
            None => true,
        };
        if !(latch_expired || better) {
            return Vec::new();
        }
        self.voted = Some((coord, round, now));
        vec![Action::Unicast(
            coord_host,
            GroupMsg::ResetVote {
                instance: self.id,
                old_incarnation,
                round,
                coord,
                voter: MemberInfo {
                    id: self.me,
                    host: self.my_host,
                    tag: self.my_tag,
                },
                highest: self.highest_contiguous,
            },
        )]
    }

    fn on_reset_vote(
        &mut self,
        now: SimTime,
        old_incarnation: Incarnation,
        round: u64,
        coord: MemberId,
        voter: MemberInfo,
        highest: SeqNo,
    ) -> Vec<Action> {
        if old_incarnation != self.incarnation || coord != self.me {
            return Vec::new();
        }
        let rc = match &mut self.reset_coord {
            Some(rc) if rc.round == round && !rc.announced => rc,
            _ => return Vec::new(),
        };
        rc.votes.insert(voter.id, (voter, highest));
        // Announce as soon as every current-view member voted; otherwise
        // the tick announces at the deadline if min_size is met.
        if rc.votes.len() >= self.view.len() {
            self.announce_reset(now)
        } else {
            Vec::new()
        }
    }

    /// Coordinator: finalize the reset with the votes collected so far.
    fn announce_reset(&mut self, now: SimTime) -> Vec<Action> {
        let rc = match &mut self.reset_coord {
            Some(rc) if !rc.announced => rc,
            _ => return Vec::new(),
        };
        if rc.votes.len() < rc.min_size {
            return Vec::new();
        }
        rc.announced = true;
        let round = rc.round;
        let mut view = View::default();
        let mut cutoff = 0;
        let mut source = self.my_host;
        let mut best = (0u64, u32::MAX); // (highest, member id) — prefer highest, tie lowest id
        for (info, highest) in rc.votes.values() {
            view.insert(*info);
            if *highest > cutoff {
                cutoff = *highest;
            }
            if *highest > best.0 || (*highest == best.0 && info.id.0 < best.1) {
                best = (*highest, info.id.0);
                source = info.host;
            }
        }
        let new_incarnation = self.incarnation + 1;
        let result = GroupMsg::ResetResult {
            instance: self.id,
            old_incarnation: self.incarnation,
            round,
            coord: self.me,
            new_incarnation,
            view: view.clone(),
            cutoff,
            source,
        };
        let mut actions = vec![Action::Multicast(result)];
        // Apply locally as well (multicast loopback also arrives, but be
        // robust to its loss).
        let mut more = self.on_reset_result(
            now,
            self.incarnation,
            round,
            self.me,
            new_incarnation,
            view,
            cutoff,
            source,
        );
        actions.append(&mut more);
        actions
    }

    #[allow(clippy::too_many_arguments)]
    fn on_reset_result(
        &mut self,
        now: SimTime,
        old_incarnation: Incarnation,
        _round: u64,
        _coord: MemberId,
        new_incarnation: Incarnation,
        view: View,
        cutoff: SeqNo,
        source: HostAddr,
    ) -> Vec<Action> {
        if old_incarnation != self.incarnation || new_incarnation <= self.incarnation {
            return Vec::new();
        }
        if !view.contains(self.me) {
            // Expelled: dissolve.
            self.dissolved = true;
            let mut actions = self.on_failed();
            actions.push(Action::CompleteReset(Err(GroupError::Dead)));
            actions.push(Action::Dissolve);
            return actions;
        }
        self.pending_install = Some(PendingInstall {
            new_incarnation,
            view,
            cutoff,
            source,
        });
        if self.highest_contiguous >= cutoff {
            self.install_reset(now)
        } else {
            // Catch up from the source first.
            self.stats.retrans_requests += 1;
            vec![Action::Unicast(
                source,
                GroupMsg::Retrans {
                    instance: self.id,
                    from_seq: self.highest_contiguous + 1,
                    to_seq: cutoff,
                    requester: self.my_host,
                },
            )]
        }
    }

    /// Installs a pending reset once caught up to the cutoff.
    fn install_reset(&mut self, now: SimTime) -> Vec<Action> {
        let p = match self.pending_install.take() {
            Some(p) => p,
            None => return Vec::new(),
        };
        debug_assert!(self.highest_contiguous >= p.cutoff);
        // Any accepts still queued under the old incarnation are covered
        // by our own history buffer (we applied them locally); drop the
        // stale multicast rather than leak the old incarnation.
        self.pending_batch.clear();
        // Out-of-order buffer entries beyond what the reset agreed on are
        // abandoned old-incarnation slots. They must not survive: the new
        // sequencer will reassign those sequence numbers, and a stale
        // record would shadow the new accept via `insert_accept`'s
        // or_insert and break total order. `highest_seen` likewise resets
        // to the agreed prefix.
        let hc = self.highest_contiguous;
        self.buffer.retain(|seq, _| *seq <= hc);
        self.highest_seen = hc;
        self.incarnation = p.new_incarnation;
        self.view = p.view;
        self.next_member_id = self
            .view
            .members
            .iter()
            .map(|m| m.id.0 + 1)
            .max()
            .unwrap_or(self.next_member_id);
        self.next_seq = self.highest_contiguous + 1;
        self.pending_acks.clear();
        self.failed = false;
        self.failure_notified = false;
        self.reset_coord = None;
        self.voted = None;
        self.stats.resets += 1;
        self.last_heard.clear();
        for m in &self.view.members {
            self.last_heard.insert(m.id, now);
        }
        let mut actions = vec![
            Action::Deliver(GroupEvent::ResetDone {
                view: self.view.clone(),
                incarnation: self.incarnation,
            }),
            Action::CompleteReset(Ok(())),
        ];
        // Re-drive unfinished sends through the new sequencer (duplicate
        // suppression via seen_msgids keeps this exactly-once). Sorted by
        // msgid: HashMap iteration order varies between runs and the
        // re-drive order decides seqno assignment.
        let mut pending: Vec<(u64, Payload, bool)> = self
            .pending_sends
            .iter()
            .map(|(id, p)| (*id, p.data.clone(), p.bb))
            .collect();
        pending.sort_unstable_by_key(|(id, _, _)| *id);
        for (msgid, data, bb) in pending {
            if let Some(&seq) = self.seen_msgids.get(&(self.me, msgid)) {
                self.pending_sends.remove(&msgid);
                actions.push(Action::CompleteSend(msgid, Ok(seq)));
                continue;
            }
            let mut resend = self.resend_pending(now, msgid, data, bb);
            actions.append(&mut resend);
        }
        actions
    }

    fn resend_pending(&mut self, now: SimTime, msgid: u64, data: Payload, bb: bool) -> Vec<Action> {
        self.stats.send_retries += 1;
        let mut trace = TraceCtx::NONE;
        if let Some(p) = self.pending_sends.get_mut(&msgid) {
            p.sent_at = now;
            trace = p.trace;
        }
        let tags = if trace.is_some() {
            vec![(msgid, trace)]
        } else {
            Vec::new()
        };
        if bb {
            vec![Self::traced(
                tags,
                Action::Multicast(GroupMsg::BbData {
                    instance: self.id,
                    incarnation: self.incarnation,
                    from: self.me,
                    msgid,
                    data,
                }),
            )]
        } else if self.is_sequencer() {
            if self.seen_msgids.contains_key(&(self.me, msgid)) {
                return Vec::new();
            }
            self.sequence_message(
                now,
                self.me,
                self.my_tag,
                msgid,
                AcceptBody::Data(data),
                trace,
            )
        } else {
            match self.sequencer_host() {
                Some(h) => vec![Action::Unicast(
                    h,
                    GroupMsg::SendReq {
                        instance: self.id,
                        incarnation: self.incarnation,
                        from: self.me,
                        msgid,
                        data,
                    },
                )],
                None => Vec::new(),
            }
        }
    }

    // ==================================================================
    // Periodic work.
    // ==================================================================

    /// Clock tick: heartbeats, liveness checks, retransmissions, reset
    /// deadlines.
    pub fn tick(&mut self, now: SimTime) -> Vec<Action> {
        if self.dissolved {
            return Vec::new();
        }
        let mut actions = Vec::new();
        // Reset coordinator deadline.
        let announce = match &self.reset_coord {
            Some(rc) if !rc.announced && now >= rc.deadline => {
                if rc.votes.len() >= rc.min_size {
                    1
                } else {
                    2
                }
            }
            _ => 0,
        };
        if announce == 1 {
            actions.append(&mut self.announce_reset(now));
        } else if announce == 2 {
            self.reset_coord = None;
            actions.push(Action::CompleteReset(Err(GroupError::ResetFailed)));
        }
        if self.failed {
            return actions;
        }
        if self.is_sequencer() {
            // Heartbeat.
            if now.saturating_since(self.last_heartbeat_sent) >= self.cfg.heartbeat_interval {
                self.last_heartbeat_sent = now;
                actions.push(Action::Multicast(GroupMsg::Heartbeat {
                    instance: self.id,
                    incarnation: self.incarnation,
                    next_seq: self.next_seq,
                    sequencer: self.me,
                }));
            }
            // Member liveness.
            let dead: Vec<MemberId> = self
                .view
                .members
                .iter()
                .filter(|m| m.id != self.me)
                .filter(|m| {
                    self.last_heard
                        .get(&m.id)
                        .map(|t| now.saturating_since(*t) > self.cfg.failure_timeout)
                        .unwrap_or(false)
                })
                .map(|m| m.id)
                .collect();
            if let Some(suspect) = dead.first() {
                actions.append(&mut self.fail_group(*suspect));
                return actions;
            }
        } else if let Some(seq_member) = self.view.sequencer() {
            // Sequencer liveness (we only track it after hearing once).
            if let Some(t) = self.last_heard.get(&seq_member.id) {
                if now.saturating_since(*t) > self.cfg.failure_timeout {
                    actions.append(&mut self.fail_group(seq_member.id));
                    return actions;
                }
            } else {
                self.last_heard.insert(seq_member.id, now);
            }
        }
        // Gap recovery.
        if let Some(since) = self.gap_since {
            if now.saturating_since(since) >= self.cfg.gap_timeout {
                self.gap_since = Some(now); // re-arm
                self.stats.retrans_requests += 1;
                // Ask for everything up to the highest slot we know was
                // assigned — the buffer alone understates an
                // end-of-order gap (its last key may already be applied
                // history below the gap) — clamped to what a server is
                // willing to serve in one request.
                let to = if self.cfg.buggy_retrans_bound {
                    // Historical (pre-fix) bound, kept reachable for the
                    // explore harness's seeded-bug self-test: when the
                    // lost accepts are the newest ones, the buffer's last
                    // key sits at (or below) `highest_contiguous`, the
                    // request comes out empty and the gap never closes.
                    self.buffer
                        .keys()
                        .next_back()
                        .copied()
                        .unwrap_or(self.highest_contiguous)
                } else {
                    self.highest_seen
                        .min(self.highest_contiguous + MAX_RETRANS_SPAN)
                        .max(self.highest_contiguous + 1)
                };
                actions.push(Action::Multicast(GroupMsg::Retrans {
                    instance: self.id,
                    from_seq: self.highest_contiguous + 1,
                    to_seq: to,
                    requester: self.my_host,
                }));
            }
        }
        // Sender retransmission. Sorted by msgid so the resend (and thus
        // message) order does not depend on HashMap iteration order.
        let mut stale: Vec<(u64, Payload, bool)> = self
            .pending_sends
            .iter()
            .filter(|(_, p)| now.saturating_since(p.sent_at) >= self.cfg.ack_timeout)
            .map(|(id, p)| (*id, p.data.clone(), p.bb))
            .collect();
        stale.sort_unstable_by_key(|(id, _, _)| *id);
        for (msgid, data, bb) in stale {
            let mut resend = self.resend_pending(now, msgid, data, bb);
            actions.append(&mut resend);
        }
        actions.extend(self.flush_pending_batch());
        actions
    }

    /// Multicasts any accepts still queued for batching; the peer layer
    /// calls this at the end of a packet burst or coalescing window.
    pub(crate) fn flush_pending(&mut self) -> Vec<Action> {
        self.flush_pending_batch()
    }

    /// Whether accepts or done notifications are queued awaiting a
    /// batch flush.
    pub(crate) fn has_pending_batch(&self) -> bool {
        !self.pending_batch.is_empty() || !self.pending_dones.is_empty()
    }

    /// Answers a join locate (peer layer decides whether to call this).
    pub fn join_reply(&self, joiner: HostAddr, join_id: u64) -> Option<Action> {
        if self.failed || self.dissolved {
            return None;
        }
        let seq = self.view.sequencer()?;
        Some(Action::Unicast(
            joiner,
            GroupMsg::JoinReply {
                port: self.port,
                instance: self.id,
                members: self.view.len() as u32,
                sequencer: seq.host,
                incarnation: self.incarnation,
                join_id,
            },
        ))
    }

    /// Fail all pending operations because the instance is being dropped.
    pub fn fail_pending(&mut self) -> Vec<Action> {
        let mut actions = Vec::new();
        for msgid in self.pending_sends.keys().copied().collect::<Vec<_>>() {
            actions.push(Action::CompleteSend(msgid, Err(GroupError::Dead)));
        }
        self.pending_sends.clear();
        actions
    }

    /// We have no idea which host an unknown member lives on.
    fn host_of_unknown(&self, _m: MemberId) -> Option<HostAddr> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    const H0: HostAddr = HostAddr(0);
    const H1: HostAddr = HostAddr(1);
    const H2: HostAddr = HostAddr(2);
    const T0: SimTime = SimTime::ZERO;

    fn cfg(r: u32) -> GroupConfig {
        GroupConfig::with_resilience(r)
    }

    /// Builds a 3-member instance as seen by the sequencer (member 0).
    fn seq_with_three(r: u32) -> Instance {
        let mut inst = Instance::create(1, Port::from_name("g"), cfg(r), H0, 100, T0);
        for (host, tag, jid) in [(H1, 101, 1u64), (H2, 102, 2u64)] {
            let _ = inst.on_join_request(T0, host, tag, jid);
        }
        assert_eq!(inst.view.len(), 3);
        inst
    }

    fn deliver_count(actions: &[Action]) -> usize {
        actions
            .iter()
            .filter(|a| matches!(a, Action::Deliver(GroupEvent::Message { .. })))
            .count()
    }

    #[test]
    fn create_makes_single_member_sequencer() {
        let inst = Instance::create(1, Port::from_name("g"), cfg(0), H0, 7, T0);
        assert!(inst.is_sequencer());
        assert_eq!(inst.view.len(), 1);
        assert_eq!(inst.effective_r(), 0);
    }

    #[test]
    fn join_assigns_incrementing_ids_and_sequences_view_changes() {
        let inst = seq_with_three(2);
        let ids: Vec<u32> = inst.view.members.iter().map(|m| m.id.0).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        // Two join accepts were applied: seqnos 1 and 2.
        assert_eq!(inst.highest_contiguous, 2);
    }

    #[test]
    fn rejoin_same_host_reuses_member_id() {
        let mut inst = seq_with_three(2);
        let before = inst.view.len();
        let actions = inst.on_join_request(T0, H1, 101, 9);
        assert_eq!(inst.view.len(), before);
        assert!(matches!(
            actions.as_slice(),
            [Action::Unicast(h, GroupMsg::JoinAck { member_id, .. })]
                if *h == H1 && *member_id == MemberId(1)
        ));
    }

    #[test]
    fn sequencer_send_with_r0_completes_immediately() {
        let mut inst = Instance::create(1, Port::from_name("g"), cfg(0), H0, 7, T0);
        let (msgid, actions) = inst.app_send(T0, vec![1, 2].into());
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::CompleteSend(m, Ok(seq)) if *m == msgid && *seq == 1)));
        assert_eq!(deliver_count(&actions), 1);
    }

    #[test]
    fn r2_send_completes_only_after_both_acks() {
        let mut inst = seq_with_three(2);
        let (msgid, actions) = inst.app_send(T0, vec![9].into());
        // Not complete yet: only the sequencer holds it.
        assert!(!actions
            .iter()
            .any(|a| matches!(a, Action::CompleteSend(..))));
        let a1 = inst.on_ack(T0, 0, 3, MemberId(1));
        assert!(!a1.iter().any(|a| matches!(a, Action::CompleteSend(..))));
        let a2 = inst.on_ack(T0, 0, 3, MemberId(2));
        assert!(a2
            .iter()
            .any(|a| matches!(a, Action::CompleteSend(m, Ok(3)) if *m == msgid)));
    }

    #[test]
    fn remote_send_req_gets_sequenced_and_done_after_acks() {
        let mut inst = seq_with_three(2);
        let actions = inst.handle(
            T0,
            H1,
            GroupMsg::SendReq {
                instance: 1,
                incarnation: 0,
                from: MemberId(1),
                msgid: 50,
                data: vec![5].into(),
            },
        );
        // Multicast accept, no done yet.
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::Multicast(GroupMsg::Accept { .. }))));
        let _ = inst.on_ack(T0, 0, 3, MemberId(1));
        // The second ack makes the message r-resilient; the done is
        // queued, not unicast immediately, and the flush coalesces it
        // into one DoneBatch unicast to the single sender owed.
        let done = inst.on_ack(T0, 0, 3, MemberId(2));
        assert!(
            !done
                .iter()
                .any(|a| matches!(a, Action::Unicast(_, GroupMsg::Done { .. }))),
            "dones must batch, not unicast one-by-one"
        );
        let flushed = inst.flush_pending();
        assert!(flushed.iter().any(|a| matches!(
            a,
            Action::Unicast(h, GroupMsg::DoneBatch { items, .. })
                if *h == H1 && items.len() == 1 && items[0].msgid == 50 && items[0].seq == 3
        )));
    }

    #[test]
    fn dones_for_several_senders_coalesce_into_one_multicast() {
        let mut inst = seq_with_three(1); // r = 1: one ack suffices
        let _ = inst.handle_deferred(
            T0,
            H1,
            GroupMsg::SendReq {
                instance: 1,
                incarnation: 0,
                from: MemberId(1),
                msgid: 50,
                data: vec![5].into(),
            },
        );
        let _ = inst.handle_deferred(
            T0,
            H2,
            GroupMsg::SendReq {
                instance: 1,
                incarnation: 0,
                from: MemberId(2),
                msgid: 60,
                data: vec![6].into(),
            },
        );
        let _ = inst.flush_pending();
        // One cumulative ack from member 1 completes both slots
        // (r = 1), owing dones to two different senders.
        let _ = inst.handle_deferred(
            T0,
            H1,
            GroupMsg::Ack {
                instance: 1,
                incarnation: 0,
                seq: 4,
                member: MemberId(1),
            },
        );
        let flushed = inst.flush_pending();
        let [Action::Multicast(GroupMsg::DoneBatch { items, .. })] = flushed.as_slice() else {
            panic!("expected one multicast DoneBatch, got {flushed:?}");
        };
        let mut pairs: Vec<(u32, u64)> = items.iter().map(|d| (d.from.0, d.msgid)).collect();
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(1, 50), (2, 60)]);
    }

    #[test]
    fn oversized_done_queue_chunks_into_decodable_packets() {
        // A single cumulative ack can complete far more slots than one
        // wire packet may carry dones for; the flush must chunk at the
        // decoder's cap instead of emitting one undecodable packet.
        let mut inst = seq_with_three(1);
        let total = MAX_ACCEPT_BATCH_ITEMS + 500;
        for k in 0..total {
            inst.pending_dones.push(crate::msg::DoneItem {
                from: MemberId(1 + (k % 2) as u32),
                msgid: 1_000 + k as u64,
                seq: 10 + k as SeqNo,
            });
        }
        let actions = inst.flush_pending();
        let mut carried = 0;
        for a in &actions {
            let msg = match a {
                Action::Multicast(m) | Action::Unicast(_, m) => m,
                other => panic!("expected only packet actions, got {other:?}"),
            };
            let GroupMsg::DoneBatch { items, .. } = msg else {
                panic!("expected only DoneBatch packets, got {msg:?}");
            };
            assert!(items.len() <= MAX_ACCEPT_BATCH_ITEMS);
            // Every emitted packet must survive the wire round trip.
            assert_eq!(&GroupMsg::decode(&msg.encode()).unwrap(), msg);
            carried += items.len();
        }
        assert_eq!(carried, total, "every done must be delivered");
        assert!(actions.len() >= 2, "overflow must split packets");
    }

    #[test]
    fn dones_piggyback_on_next_accept_batch() {
        let mut inst = seq_with_three(1);
        let sr = |from: u32, msgid: u64| GroupMsg::SendReq {
            instance: 1,
            incarnation: 0,
            from: MemberId(from),
            msgid,
            data: vec![1].into(),
        };
        let _ = inst.handle_deferred(T0, H1, sr(1, 50));
        let _ = inst.flush_pending();
        // The ack (making msg 50 resilient) and two new send requests
        // arrive in one burst: the dones must ride the AcceptBatch.
        let _ = inst.handle_deferred(
            T0,
            H1,
            GroupMsg::Ack {
                instance: 1,
                incarnation: 0,
                seq: 3,
                member: MemberId(1),
            },
        );
        let _ = inst.handle_deferred(T0, H1, sr(1, 51));
        let _ = inst.handle_deferred(T0, H2, sr(2, 61));
        let flushed = inst.flush_pending();
        let [Action::Multicast(GroupMsg::AcceptBatch { items, dones, .. })] = flushed.as_slice()
        else {
            panic!("expected one AcceptBatch, got {flushed:?}");
        };
        assert_eq!(items.len(), 2);
        assert_eq!(
            dones.as_slice(),
            &[crate::msg::DoneItem {
                from: MemberId(1),
                msgid: 50,
                seq: 3
            }]
        );
        // A member receiving the batch completes its own send from the
        // piggybacked done.
        let mut m1 = member_one(1);
        let (msgid, _) = m1.app_send(T0, vec![9].into());
        assert_eq!(msgid, 1);
        let batch = GroupMsg::AcceptBatch {
            instance: 1,
            incarnation: 0,
            first_seq: 1,
            items: vec![AcceptItem {
                from: MemberId(2),
                from_tag: 102,
                msgid: 7,
                body: AcceptBody::Data(vec![2].into()),
            }],
            dones: vec![crate::msg::DoneItem {
                from: MemberId(1),
                msgid,
                seq: 9,
            }],
        };
        let actions = m1.handle(T0, H0, batch);
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::CompleteSend(m, Ok(9)) if *m == msgid)));
    }

    #[test]
    fn deferred_send_reqs_coalesce_into_one_accept_batch() {
        let mut inst = seq_with_three(0);
        let sr = |from: u32, msgid: u64, byte: u8| GroupMsg::SendReq {
            instance: 1,
            incarnation: 0,
            from: MemberId(from),
            msgid,
            data: vec![byte].into(),
        };
        // A burst: two send requests handled without an intermediate
        // flush (what the peer does while more packets are queued).
        let a1 = inst.handle_deferred(T0, H1, sr(1, 50, 5));
        let a2 = inst.handle_deferred(T0, H2, sr(2, 60, 6));
        assert!(
            !a1.iter()
                .chain(a2.iter())
                .any(|a| matches!(a, Action::Multicast(_))),
            "no multicast before the flush"
        );
        let flushed = inst.flush_pending();
        let [Action::Multicast(GroupMsg::AcceptBatch {
            first_seq, items, ..
        })] = flushed.as_slice()
        else {
            panic!("expected one AcceptBatch, got {flushed:?}");
        };
        // Joins took slots 1 and 2; the burst occupies 3 and 4.
        assert_eq!(*first_seq, 3);
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].msgid, 50);
        assert_eq!(items[1].msgid, 60);
        // Nothing left pending after the flush.
        assert!(inst.flush_pending().is_empty());
    }

    #[test]
    fn accept_batch_applies_in_order_with_one_cumulative_ack() {
        let mut inst = member_one(2);
        let batch = GroupMsg::AcceptBatch {
            instance: 1,
            incarnation: 0,
            first_seq: 1,
            items: (0..3)
                .map(|k| crate::msg::AcceptItem {
                    from: MemberId(0),
                    from_tag: 100,
                    msgid: 10 + k,
                    body: AcceptBody::Data(vec![k as u8].into()),
                })
                .collect(),
            dones: vec![],
        };
        let actions = feed(&mut inst, batch);
        assert_eq!(deliver_count(&actions), 3);
        assert_eq!(inst.highest_contiguous, 3);
        // Exactly one (cumulative) ack for the whole batch.
        let acks: Vec<SeqNo> = actions
            .iter()
            .filter_map(|a| match a {
                Action::Unicast(_, GroupMsg::Ack { seq, .. }) => Some(*seq),
                _ => None,
            })
            .collect();
        assert_eq!(acks, vec![3]);
    }

    #[test]
    fn retrans_resolved_data_upgrades_buffered_bbref() {
        // A member buffered the short BbRef accept but its BbData was
        // lost; the retransmission substitutes inline data for the same
        // slot — the upgrade must replace the stale reference.
        let mut inst = member_one(0);
        // Out of order so the BbRef stays buffered instead of applying.
        let bbref = GroupMsg::Accept {
            instance: 1,
            incarnation: 0,
            seq: 2,
            from: MemberId(2),
            from_tag: 102,
            msgid: 30,
            body: AcceptBody::BbRef,
        };
        let a = feed(&mut inst, bbref);
        assert_eq!(deliver_count(&a), 0);
        // Retrans-served accept for the same slot carries the data.
        let resolved = GroupMsg::Accept {
            instance: 1,
            incarnation: 0,
            seq: 2,
            from: MemberId(2),
            from_tag: 102,
            msgid: 30,
            body: AcceptBody::Data(vec![7, 7].into()),
        };
        let _ = feed(&mut inst, resolved);
        // Fill the gap; both must now deliver — seq 2 with the data.
        let actions = feed(&mut inst, accept(1, 0, 10, vec![1]));
        assert_eq!(deliver_count(&actions), 2);
        assert!(actions.iter().any(|a| matches!(
            a,
            Action::Deliver(GroupEvent::Message { seq: 2, data, .. }) if data.as_slice() == [7, 7]
        )));
    }

    #[test]
    fn oversized_max_batch_is_clamped_to_wire_limit() {
        let mut cfg = cfg(0);
        cfg.max_batch = 100_000; // far beyond what the wire format allows
        let mut inst = Instance::create(1, Port::from_name("g"), cfg, H0, 100, T0);
        let _ = inst.on_join_request(T0, H1, 101, 1);
        let mut batches = Vec::new();
        for k in 0..(MAX_ACCEPT_BATCH_ITEMS as u64 + 10) {
            let actions = inst.handle_deferred(
                T0,
                H1,
                GroupMsg::SendReq {
                    instance: 1,
                    incarnation: 0,
                    from: MemberId(1),
                    msgid: 100 + k,
                    data: vec![1].into(),
                },
            );
            for a in actions {
                if let Action::Multicast(m @ GroupMsg::AcceptBatch { .. }) = a {
                    batches.push(m);
                }
            }
        }
        batches.extend(inst.flush_pending().into_iter().filter_map(|a| match a {
            Action::Multicast(m @ GroupMsg::AcceptBatch { .. }) => Some(m),
            _ => None,
        }));
        assert!(!batches.is_empty(), "clamp must force an early flush");
        for b in &batches {
            let GroupMsg::AcceptBatch { items, .. } = b else {
                unreachable!()
            };
            assert!(items.len() <= MAX_ACCEPT_BATCH_ITEMS);
            // Every emitted batch must survive the wire round trip.
            assert_eq!(&GroupMsg::decode(&b.encode()).unwrap(), b);
        }
    }

    #[test]
    fn install_reset_purges_stale_out_of_order_buffer() {
        // m1 buffered an out-of-order accept (seq 2) that the reset then
        // abandons (cutoff 0): the stale record must not shadow the new
        // incarnation's slot 2.
        let mut inst = member_one(0);
        let _ = feed(&mut inst, accept(2, 0, 11, vec![0xEE]));
        assert_eq!(inst.highest_contiguous, 0, "gap: seq 2 only buffered");
        let _ = inst.handle(
            T0,
            H0,
            GroupMsg::ResetResult {
                instance: 1,
                old_incarnation: 0,
                round: 1,
                coord: MemberId(0),
                new_incarnation: 1,
                view: inst.view.clone(),
                cutoff: 0,
                source: H0,
            },
        );
        assert_eq!(inst.incarnation, 1);
        assert_eq!(inst.highest_seen, 0, "frontier reset to the agreed prefix");
        // The new sequencer reassigns slots 1 and 2; the fresh data must
        // win over the abandoned pre-reset record.
        let mk = |seq: SeqNo, msgid: u64, byte: u8| GroupMsg::Accept {
            instance: 1,
            incarnation: 1,
            seq,
            from: MemberId(0),
            from_tag: 100,
            msgid,
            body: AcceptBody::Data(vec![byte].into()),
        };
        let _ = feed(&mut inst, mk(1, 20, 1));
        let a2 = feed(&mut inst, mk(2, 21, 2));
        let delivered: Vec<Vec<u8>> = a2
            .iter()
            .filter_map(|a| match a {
                Action::Deliver(GroupEvent::Message { data, .. }) => Some(data.to_vec()),
                _ => None,
            })
            .collect();
        assert_eq!(
            delivered,
            vec![vec![2u8]],
            "stale record must not resurface"
        );
    }

    #[test]
    fn gap_recovery_request_is_clamped_to_serveable_span() {
        let mut inst = member_one(0);
        // A heartbeat advertises a frontier far beyond what one retrans
        // request may cover.
        let _ = feed(
            &mut inst,
            GroupMsg::Heartbeat {
                instance: 1,
                incarnation: 0,
                next_seq: 50_000,
                sequencer: MemberId(0),
            },
        );
        let later = T0 + inst.cfg.gap_timeout + Duration::from_millis(1);
        let actions = inst.tick(later);
        let req = actions
            .iter()
            .find_map(|a| match a {
                Action::Multicast(GroupMsg::Retrans {
                    from_seq, to_seq, ..
                }) => Some((*from_seq, *to_seq)),
                _ => None,
            })
            .expect("gap must trigger a retrans request");
        assert_eq!(req.0, 1);
        assert!(
            req.1 - req.0 <= MAX_RETRANS_SPAN,
            "request {req:?} wider than servers will serve"
        );
    }

    #[test]
    fn cumulative_ack_covers_all_outstanding_slots() {
        let mut inst = seq_with_three(2);
        // Two sends occupy slots 3 and 4.
        let (m1, _) = inst.app_send(T0, vec![1].into());
        let (m2, _) = inst.app_send(T0, vec![2].into());
        // One cumulative ack per member for slot 4 completes both.
        let a1 = inst.on_ack(T0, 0, 4, MemberId(1));
        assert!(!a1.iter().any(|a| matches!(a, Action::CompleteSend(..))));
        let a2 = inst.on_ack(T0, 0, 4, MemberId(2));
        let completed: Vec<u64> = a2
            .iter()
            .filter_map(|a| match a {
                Action::CompleteSend(id, Ok(_)) => Some(*id),
                _ => None,
            })
            .collect();
        assert_eq!(completed, vec![m1, m2]);
    }

    #[test]
    fn duplicate_send_req_is_suppressed() {
        let mut inst = seq_with_three(0);
        let _ = inst.on_send_req(T0, 0, MemberId(1), 50, vec![5].into());
        let before = inst.highest_contiguous;
        let actions = inst.on_send_req(T0, 0, MemberId(1), 50, vec![5].into());
        assert_eq!(inst.highest_contiguous, before, "must not re-sequence");
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::Unicast(_, GroupMsg::Done { msgid: 50, .. }))));
    }

    /// Builds a non-sequencer member (member 1 of 3, sequencer = member 0).
    fn member_one(r: u32) -> Instance {
        let mut view = View::default();
        view.insert(MemberInfo {
            id: MemberId(0),
            host: H0,
            tag: 100,
        });
        view.insert(MemberInfo {
            id: MemberId(1),
            host: H1,
            tag: 101,
        });
        view.insert(MemberInfo {
            id: MemberId(2),
            host: H2,
            tag: 102,
        });
        Instance::from_join(
            1,
            Port::from_name("g"),
            cfg(r),
            H1,
            101,
            MemberId(1),
            0,
            view,
            0,
            T0,
        )
    }

    fn accept(seq: SeqNo, from: u32, msgid: u64, data: Vec<u8>) -> GroupMsg {
        GroupMsg::Accept {
            instance: 1,
            incarnation: 0,
            seq,
            from: MemberId(from),
            from_tag: 100 + u64::from(from),
            msgid,
            body: AcceptBody::Data(data.into()),
        }
    }

    fn feed(inst: &mut Instance, msg: GroupMsg) -> Vec<Action> {
        inst.handle(T0, H0, msg)
    }

    #[test]
    fn member_delivers_in_seq_order_despite_reordering() {
        let mut inst = member_one(0);
        let a2 = feed(&mut inst, accept(2, 0, 11, vec![2]));
        assert_eq!(deliver_count(&a2), 0, "gap: must buffer");
        let a1 = feed(&mut inst, accept(1, 0, 10, vec![1]));
        assert_eq!(deliver_count(&a1), 2, "both deliver in order");
        let seqs: Vec<SeqNo> = a1
            .iter()
            .filter_map(|a| match a {
                Action::Deliver(e) => e.seq(),
                _ => None,
            })
            .collect();
        assert_eq!(seqs, vec![1, 2]);
    }

    #[test]
    fn member_acks_when_r_positive() {
        let mut inst = member_one(2);
        let actions = feed(&mut inst, accept(1, 0, 10, vec![1]));
        assert!(actions.iter().any(|a| matches!(
            a,
            Action::Unicast(h, GroupMsg::Ack { seq: 1, member: MemberId(1), .. }) if *h == H0
        )));
    }

    #[test]
    fn member_ignores_duplicate_accept() {
        let mut inst = member_one(0);
        let _ = feed(&mut inst, accept(1, 0, 10, vec![1]));
        let dup = feed(&mut inst, accept(1, 0, 10, vec![1]));
        assert_eq!(deliver_count(&dup), 0);
    }

    #[test]
    fn member_ignores_wrong_incarnation_accept() {
        let mut inst = member_one(0);
        let msg = GroupMsg::Accept {
            instance: 1,
            incarnation: 5,
            seq: 1,
            from: MemberId(0),
            from_tag: 100,
            msgid: 10,
            body: AcceptBody::Data(vec![1].into()),
        };
        let actions = feed(&mut inst, msg);
        assert_eq!(deliver_count(&actions), 0);
        assert_eq!(inst.highest_contiguous, 0);
    }

    #[test]
    fn heartbeat_gap_triggers_retrans_request_on_tick() {
        let mut inst = member_one(0);
        let hb = GroupMsg::Heartbeat {
            instance: 1,
            incarnation: 0,
            next_seq: 4, // we have nothing; 3 accepts missing
            sequencer: MemberId(0),
        };
        let _ = feed(&mut inst, hb);
        let later = T0 + inst.cfg.gap_timeout + Duration::from_millis(1);
        let actions = inst.tick(later);
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::Multicast(GroupMsg::Retrans { from_seq: 1, .. }))));
    }

    #[test]
    fn retrans_served_from_buffer_for_view_members() {
        let mut inst = member_one(0);
        let _ = feed(&mut inst, accept(1, 0, 10, vec![1]));
        let actions = inst.on_retrans(1, 1, H2);
        assert!(actions.iter().any(|a| matches!(
            a,
            Action::Unicast(h, GroupMsg::Accept { seq: 1, .. }) if *h == H2
        )));
        // Unknown host gets nothing.
        let nothing = inst.on_retrans(1, 1, HostAddr(99));
        assert!(nothing.is_empty());
    }

    #[test]
    fn sequencer_silence_fails_group_on_member() {
        let mut inst = member_one(0);
        let _ = feed(
            &mut inst,
            GroupMsg::Heartbeat {
                instance: 1,
                incarnation: 0,
                next_seq: 1,
                sequencer: MemberId(0),
            },
        );
        let late = T0 + inst.cfg.failure_timeout + Duration::from_millis(50);
        let actions = inst.tick(late);
        assert!(inst.failed);
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::Multicast(GroupMsg::FailNotice { .. }))));
        assert!(actions.iter().any(|a| matches!(a, Action::NotifyFailure)));
    }

    #[test]
    fn member_silence_fails_group_on_sequencer() {
        let mut inst = seq_with_three(2);
        // Members never ack/heartbeat-ack.
        let late = T0 + inst.cfg.failure_timeout + Duration::from_millis(50);
        // last_heard was set at join time (T0).
        let actions = inst.tick(late);
        assert!(inst.failed);
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::Multicast(GroupMsg::FailNotice { .. }))));
    }

    #[test]
    fn send_on_failed_group_errors() {
        let mut inst = member_one(0);
        let _ = feed(
            &mut inst,
            GroupMsg::FailNotice {
                instance: 1,
                incarnation: 0,
                suspect: MemberId(0),
            },
        );
        let (msgid, actions) = inst.app_send(T0, vec![1].into());
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::CompleteSend(m, Err(GroupError::Failed)) if *m == msgid)));
    }

    #[test]
    fn reset_two_of_three_rebuilds_group() {
        // Member 1 coordinates a reset after member 0 (sequencer) dies.
        let mut m1 = member_one(2);
        let mut m2 = Instance::from_join(
            1,
            Port::from_name("g"),
            cfg(2),
            H2,
            102,
            MemberId(2),
            0,
            m1.view.clone(),
            0,
            T0,
        );
        // Both see the failure.
        for m in [&mut m1, &mut m2] {
            let _ = m.handle(
                T0,
                H1,
                GroupMsg::FailNotice {
                    instance: 1,
                    incarnation: 0,
                    suspect: MemberId(0),
                },
            );
            assert!(m.failed);
        }
        // m1 invites; m2 votes; m1 announces; both install.
        let invite_actions = m1.app_reset(T0, 2);
        let invite = invite_actions
            .iter()
            .find_map(|a| match a {
                Action::Multicast(m @ GroupMsg::ResetInvite { .. }) => Some(m.clone()),
                _ => None,
            })
            .unwrap();
        let vote_actions = m2.handle(T0, H1, invite);
        let vote = vote_actions
            .iter()
            .find_map(|a| match a {
                Action::Unicast(_, m @ GroupMsg::ResetVote { .. }) => Some(m.clone()),
                _ => None,
            })
            .unwrap();
        // The dead member never votes, so the coordinator announces at the
        // vote-window deadline.
        let mut result_actions = m1.handle(T0, H2, vote);
        result_actions.extend(m1.tick(T0 + m1.cfg.reset_vote_window + Duration::from_millis(1)));
        let result = result_actions
            .iter()
            .find_map(|a| match a {
                Action::Multicast(m @ GroupMsg::ResetResult { .. }) => Some(m.clone()),
                _ => None,
            })
            .unwrap();
        assert!(
            result_actions
                .iter()
                .any(|a| matches!(a, Action::CompleteReset(Ok(())))),
            "coordinator completes its own reset"
        );
        assert!(!m1.failed);
        assert_eq!(m1.incarnation, 1);
        assert_eq!(m1.view.len(), 2);
        // New sequencer is the lowest id: member 1.
        assert!(m1.is_sequencer());

        let m2_actions = m2.handle(T0, H1, result);
        assert!(m2_actions
            .iter()
            .any(|a| matches!(a, Action::Deliver(GroupEvent::ResetDone { .. }))));
        assert!(!m2.failed);
        assert_eq!(m2.incarnation, 1);
        assert_eq!(m2.view.len(), 2);
        assert!(!m2.is_sequencer());
    }

    #[test]
    fn reset_without_quorum_fails_at_deadline() {
        let mut m1 = member_one(2);
        m1.failed = true;
        let _ = m1.app_reset(T0, 2); // needs 2 votes, gets only itself
        let late = T0 + m1.cfg.reset_vote_window + Duration::from_millis(1);
        let actions = m1.tick(late);
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::CompleteReset(Err(GroupError::ResetFailed)))));
    }

    #[test]
    fn reset_catches_up_laggard_to_cutoff_before_install() {
        // m2 lags: it never saw accept 1. Coordinator m1 has it.
        let mut m1 = member_one(2);
        let _ = feed(&mut m1, accept(1, 0, 10, vec![1]));
        let mut m2 = Instance::from_join(
            1,
            Port::from_name("g"),
            cfg(2),
            H2,
            102,
            MemberId(2),
            0,
            m1.view.clone(),
            0,
            T0,
        );
        for m in [&mut m1, &mut m2] {
            m.failed = true;
        }
        let invite_actions = m1.app_reset(T0, 2);
        let invite = invite_actions
            .iter()
            .find_map(|a| match a {
                Action::Multicast(m @ GroupMsg::ResetInvite { .. }) => Some(m.clone()),
                _ => None,
            })
            .unwrap();
        let vote = m2
            .handle(T0, H1, invite)
            .into_iter()
            .find_map(|a| match a {
                Action::Unicast(_, m @ GroupMsg::ResetVote { .. }) => Some(m),
                _ => None,
            })
            .unwrap();
        let mut result_actions = m1.handle(T0, H2, vote);
        result_actions.extend(m1.tick(T0 + m1.cfg.reset_vote_window + Duration::from_millis(1)));
        let result = result_actions
            .into_iter()
            .find_map(|a| match a {
                Action::Multicast(m @ GroupMsg::ResetResult { .. }) => Some(m),
                _ => None,
            })
            .unwrap();
        // m2 receives the result but is behind cutoff=1: asks for retrans.
        let m2_actions = m2.handle(T0, H1, result);
        let retrans = m2_actions
            .iter()
            .find_map(|a| match a {
                Action::Unicast(h, m @ GroupMsg::Retrans { .. }) => Some((*h, m.clone())),
                _ => None,
            })
            .expect("laggard must request retransmission");
        assert_eq!(retrans.0, H1, "source is the up-to-date member");
        assert_eq!(m2.incarnation, 0, "not installed yet");
        // m1 serves the retrans (m2's host is in m1's new view).
        let serve = m1.handle(T0, H2, retrans.1);
        let acc = serve
            .into_iter()
            .find_map(|a| match a {
                Action::Unicast(_, m @ GroupMsg::Accept { .. }) => Some(m),
                _ => None,
            })
            .unwrap();
        // The old-incarnation accept is accepted during catch-up and the
        // reset installs.
        let m2_final = m2.handle(T0, H1, acc);
        assert!(m2_final
            .iter()
            .any(|a| matches!(a, Action::Deliver(GroupEvent::ResetDone { .. }))));
        assert_eq!(m2.incarnation, 1);
        assert_eq!(m2.highest_contiguous, 1);
    }

    #[test]
    fn expelled_member_dissolves_on_notice() {
        let mut inst = member_one(0);
        let actions = feed(
            &mut inst,
            GroupMsg::ExpelNotice {
                instance: 1,
                current_incarnation: 3,
            },
        );
        assert!(inst.dissolved);
        assert!(actions.iter().any(|a| matches!(a, Action::Dissolve)));
    }

    #[test]
    fn leave_of_sequencer_hands_over_and_dissolves() {
        let mut inst = seq_with_three(0);
        let actions = inst.app_leave(T0);
        assert!(inst.dissolved);
        assert!(actions.iter().any(|a| matches!(
            a,
            Action::Multicast(GroupMsg::Accept {
                body: AcceptBody::Leave(MemberId(0)),
                ..
            })
        )));
        assert!(actions.iter().any(|a| matches!(a, Action::Dissolve)));
    }

    #[test]
    fn follower_applies_leave_and_takes_over_sequencing() {
        let mut m1 = member_one(0);
        let leave = GroupMsg::Accept {
            instance: 1,
            incarnation: 0,
            seq: 1,
            from: MemberId(0),
            from_tag: 100,
            msgid: 0,
            body: AcceptBody::Leave(MemberId(0)),
        };
        let actions = feed(&mut m1, leave);
        assert!(m1.is_sequencer());
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::Deliver(GroupEvent::Left { .. }))));
        // It can now sequence sends itself.
        let (_, send_actions) = m1.app_send(T0, vec![7].into());
        assert!(send_actions
            .iter()
            .any(|a| matches!(a, Action::Multicast(GroupMsg::Accept { seq: 2, .. }))));
    }

    #[test]
    fn bb_method_waits_for_data_then_delivers() {
        let mut inst = member_one(0);
        let bbref = GroupMsg::Accept {
            instance: 1,
            incarnation: 0,
            seq: 1,
            from: MemberId(2),
            from_tag: 102,
            msgid: 30,
            body: AcceptBody::BbRef,
        };
        let a1 = feed(&mut inst, bbref);
        assert_eq!(deliver_count(&a1), 0, "no data yet");
        let data = GroupMsg::BbData {
            instance: 1,
            incarnation: 0,
            from: MemberId(2),
            msgid: 30,
            data: vec![0; 5000].into(),
        };
        let a2 = feed(&mut inst, data);
        assert_eq!(deliver_count(&a2), 1);
        assert_eq!(inst.highest_contiguous, 1);
    }

    #[test]
    fn large_app_send_uses_bb() {
        let mut inst = seq_with_three(0);
        let big = vec![0u8; inst.cfg.bb_threshold + 1];
        let (_, actions) = inst.app_send(T0, big.into());
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::Multicast(GroupMsg::BbData { .. }))));
    }

    #[test]
    fn pending_send_retries_on_tick() {
        let mut inst = member_one(0);
        let (_msgid, _) = inst.app_send(T0, vec![1].into());
        let later = T0 + inst.cfg.ack_timeout + Duration::from_millis(1);
        let actions = inst.tick(later);
        assert!(actions.iter().any(|a| matches!(
            a,
            Action::Unicast(h, GroupMsg::SendReq { .. }) if *h == H0
        )));
        assert_eq!(inst.stats.send_retries, 1);
    }

    #[test]
    fn info_reports_buffered() {
        let mut inst = member_one(0);
        let _ = feed(&mut inst, accept(1, 0, 10, vec![1]));
        let info = inst.info();
        assert_eq!(info.highest_contiguous, 1);
        // delivered tracks what was handed to the app queue (the engine
        // delivers immediately, so they coincide here).
        assert_eq!(info.buffered(), 0);
    }
}

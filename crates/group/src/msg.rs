//! Wire messages of the group protocol and their codec.

use amoeba_flip::wire::{DecodeError, WireReader, WireWriter};
use amoeba_flip::{HostAddr, Payload, Port};

use crate::types::{Incarnation, MemberId, MemberInfo, SeqNo, View};

/// The body of a sequenced [`GroupMsg::Accept`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AcceptBody {
    /// An application message carried inline (PB method). The payload is
    /// shared: sequencing, history buffering and delivery all clone the
    /// same buffer.
    Data(Payload),
    /// An application message whose data travelled separately as
    /// [`GroupMsg::BbData`] (BB method); pair by `(from, msgid)`.
    BbRef,
    /// Membership change: a member joined.
    Join(MemberInfo),
    /// Membership change: a member left gracefully.
    Leave(MemberId),
}

/// One slot of a [`GroupMsg::AcceptBatch`]: everything an `Accept`
/// carries except the instance/incarnation/seq shared by the batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AcceptItem {
    /// The original sender.
    pub from: MemberId,
    /// The sender's application tag.
    pub from_tag: u64,
    /// The sender's message id (0 for view changes).
    pub msgid: u64,
    /// The sequenced body.
    pub body: AcceptBody,
}

/// One resilience notification: message `msgid` from member `from` is
/// now held by r+1 members at slot `seq`. Instead of one `Done`
/// unicast per message, the sequencer piggybacks these on the next
/// [`GroupMsg::AcceptBatch`] (or coalesces them per sender into a
/// [`GroupMsg::DoneBatch`]) — batching the reply direction the same
/// way accepts batch the forward direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DoneItem {
    /// The member whose send completed (only it acts on the item).
    pub from: MemberId,
    /// Its message id.
    pub msgid: u64,
    /// The slot the message was sequenced at.
    pub seq: SeqNo,
}

/// Everything that travels on the group port.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // field meanings documented on the protocol engine
pub enum GroupMsg {
    /// Broadcast: "who runs a group instance for this port?"
    JoinLocate {
        port: Port,
        joiner: HostAddr,
        join_id: u64,
    },
    /// Unicast answer to a locate from any live member.
    JoinReply {
        port: Port,
        instance: u64,
        members: u32,
        sequencer: HostAddr,
        incarnation: Incarnation,
        join_id: u64,
    },
    /// Unicast to the sequencer: "add me".
    JoinRequest {
        instance: u64,
        joiner: HostAddr,
        tag: u64,
        join_id: u64,
    },
    /// Unicast to the joiner: its id, the view, and where the order starts.
    JoinAck {
        instance: u64,
        join_id: u64,
        member_id: MemberId,
        incarnation: Incarnation,
        view: View,
        start_seq: SeqNo,
    },
    /// Unicast to the sequencer: please sequence this message (PB).
    SendReq {
        instance: u64,
        incarnation: Incarnation,
        from: MemberId,
        msgid: u64,
        data: Payload,
    },
    /// Multicast by the sender: the bulk data of a BB-method message.
    BbData {
        instance: u64,
        incarnation: Incarnation,
        from: MemberId,
        msgid: u64,
        data: Payload,
    },
    /// Multicast by the sequencer: slot `seq` of the total order.
    Accept {
        instance: u64,
        incarnation: Incarnation,
        seq: SeqNo,
        from: MemberId,
        from_tag: u64,
        msgid: u64,
        body: AcceptBody,
    },
    /// Multicast by the sequencer: a batch of consecutive slots of the
    /// total order, coalesced into one packet (one network round may
    /// sequence many messages; the paper's amortization argument).
    /// Slot `i` of `items` has sequence number `first_seq + i`.
    /// Pending resilience notifications ride along in `dones` instead
    /// of costing one unicast each; only the member a `DoneItem` names
    /// acts on it.
    AcceptBatch {
        instance: u64,
        incarnation: Incarnation,
        first_seq: SeqNo,
        items: Vec<AcceptItem>,
        dones: Vec<DoneItem>,
    },
    /// Batched resilience notifications with no accepts to ride on:
    /// unicast to a single sender, or multicast when one packet can
    /// serve several senders at once.
    DoneBatch { instance: u64, items: Vec<DoneItem> },
    /// Unicast to the sequencer: "I hold everything up to and including
    /// `seq`" — a **cumulative** acknowledgement covering every earlier
    /// slot too, so one ack suffices per delivered batch.
    Ack {
        instance: u64,
        incarnation: Incarnation,
        seq: SeqNo,
        member: MemberId,
    },
    /// Unicast to the original sender: the message is r-resilient.
    Done {
        instance: u64,
        msgid: u64,
        seq: SeqNo,
    },
    /// Multicast: "resend accepts in `[from_seq, to_seq]` to `requester`".
    Retrans {
        instance: u64,
        from_seq: SeqNo,
        to_seq: SeqNo,
        requester: HostAddr,
    },
    /// Multicast by the sequencer when idle; carries `next_seq` so members
    /// detect gaps.
    Heartbeat {
        instance: u64,
        incarnation: Incarnation,
        next_seq: SeqNo,
        sequencer: MemberId,
    },
    /// Unicast liveness echo from member to sequencer.
    HeartbeatAck {
        instance: u64,
        incarnation: Incarnation,
        member: MemberId,
    },
    /// Unicast to the sequencer: "remove me".
    LeaveRequest {
        instance: u64,
        incarnation: Incarnation,
        member: MemberId,
    },
    /// Multicast by whoever detects a failure: the group is broken.
    FailNotice {
        instance: u64,
        incarnation: Incarnation,
        suspect: MemberId,
    },
    /// Multicast by a ResetGroup coordinator: please vote.
    ResetInvite {
        instance: u64,
        old_incarnation: Incarnation,
        coord: MemberId,
        coord_host: HostAddr,
        round: u64,
    },
    /// Unicast to the coordinator: "count me in; I hold up to `highest`".
    ResetVote {
        instance: u64,
        old_incarnation: Incarnation,
        round: u64,
        coord: MemberId,
        voter: MemberInfo,
        highest: SeqNo,
    },
    /// Multicast by the coordinator: the new view.
    ResetResult {
        instance: u64,
        old_incarnation: Incarnation,
        round: u64,
        coord: MemberId,
        new_incarnation: Incarnation,
        view: View,
        cutoff: SeqNo,
        /// Host holding everything up to `cutoff` (the new sequencer).
        source: HostAddr,
    },
    /// Unicast to a stale member: "you are no longer part of this group".
    ExpelNotice {
        instance: u64,
        current_incarnation: Incarnation,
    },
}

fn write_member(w: &mut WireWriter, m: &MemberInfo) {
    w.u32(m.id.0).u32(m.host.0).u64(m.tag);
}

fn read_member(r: &mut WireReader<'_>) -> Result<MemberInfo, DecodeError> {
    Ok(MemberInfo {
        id: MemberId(r.u32("member id")?),
        host: HostAddr(r.u32("member host")?),
        tag: r.u64("member tag")?,
    })
}

fn write_view(w: &mut WireWriter, v: &View) {
    w.u32(v.members.len() as u32);
    for m in &v.members {
        write_member(w, m);
    }
}

fn read_view(r: &mut WireReader<'_>) -> Result<View, DecodeError> {
    let n = r.u32("view len")?;
    if n > 4096 {
        return Err(DecodeError::new("view len"));
    }
    let mut v = View::default();
    for _ in 0..n {
        v.insert(read_member(r)?);
    }
    Ok(v)
}

const T_JOIN_LOCATE: u8 = 1;
const T_JOIN_REPLY: u8 = 2;
const T_JOIN_REQUEST: u8 = 3;
const T_JOIN_ACK: u8 = 4;
const T_SEND_REQ: u8 = 5;
const T_BB_DATA: u8 = 6;
const T_ACCEPT: u8 = 7;
const T_ACK: u8 = 8;
const T_DONE: u8 = 9;
const T_RETRANS: u8 = 10;
const T_HEARTBEAT: u8 = 11;
const T_HEARTBEAT_ACK: u8 = 12;
const T_LEAVE_REQUEST: u8 = 13;
const T_FAIL_NOTICE: u8 = 14;
const T_RESET_INVITE: u8 = 15;
const T_RESET_VOTE: u8 = 16;
const T_RESET_RESULT: u8 = 17;
const T_EXPEL_NOTICE: u8 = 18;
const T_ACCEPT_BATCH: u8 = 19;
const T_DONE_BATCH: u8 = 20;

/// Most items one `AcceptBatch` may carry on the wire; the decoder
/// rejects anything larger and the sequencer never exceeds it however
/// large `GroupConfig::max_batch` is set. The same bound applies to
/// batched done notifications.
pub(crate) const MAX_ACCEPT_BATCH_ITEMS: usize = 4096;

const DONE_ITEM_LEN: usize = 4 + 8 + 8;

fn write_dones(w: &mut WireWriter, dones: &[DoneItem]) {
    w.u32(dones.len() as u32);
    for d in dones {
        w.u32(d.from.0).u64(d.msgid).u64(d.seq);
    }
}

fn read_dones(r: &mut WireReader<'_>) -> Result<Vec<DoneItem>, DecodeError> {
    let n = r.u32("dones len")? as usize;
    if n > MAX_ACCEPT_BATCH_ITEMS {
        return Err(DecodeError::new("dones len"));
    }
    let mut dones = Vec::with_capacity(n);
    for _ in 0..n {
        dones.push(DoneItem {
            from: MemberId(r.u32("done from")?),
            msgid: r.u64("done msgid")?,
            seq: r.u64("done seq")?,
        });
    }
    Ok(dones)
}

const B_DATA: u8 = 0;
const B_BBREF: u8 = 1;
const B_JOIN: u8 = 2;
const B_LEAVE: u8 = 3;

const MEMBER_LEN: usize = 4 + 4 + 8;

fn view_len(v: &View) -> usize {
    4 + MEMBER_LEN * v.members.len()
}

fn body_len(b: &AcceptBody) -> usize {
    1 + match b {
        AcceptBody::Data(d) => 4 + d.len(),
        AcceptBody::BbRef => 0,
        AcceptBody::Join(_) => MEMBER_LEN,
        AcceptBody::Leave(_) => 4,
    }
}

fn write_body(w: &mut WireWriter, body: &AcceptBody) {
    match body {
        AcceptBody::Data(d) => {
            w.u8(B_DATA).bytes(d);
        }
        AcceptBody::BbRef => {
            w.u8(B_BBREF);
        }
        AcceptBody::Join(m) => {
            w.u8(B_JOIN);
            write_member(w, m);
        }
        AcceptBody::Leave(id) => {
            w.u8(B_LEAVE).u32(id.0);
        }
    }
}

fn read_body(r: &mut WireReader<'_>) -> Result<AcceptBody, DecodeError> {
    Ok(match r.u8("body tag")? {
        B_DATA => AcceptBody::Data(r.payload("body data")?),
        B_BBREF => AcceptBody::BbRef,
        B_JOIN => AcceptBody::Join(read_member(r)?),
        B_LEAVE => AcceptBody::Leave(MemberId(r.u32("leave id")?)),
        _ => return Err(DecodeError::new("body tag")),
    })
}

impl GroupMsg {
    /// Exact encoded size, used as the writer's single-allocation hint.
    fn encoded_len(&self) -> usize {
        match self {
            GroupMsg::JoinLocate { .. } => 1 + 8 + 4 + 8,
            GroupMsg::JoinReply { .. } => 1 + 8 + 8 + 4 + 4 + 8 + 8,
            GroupMsg::JoinRequest { .. } => 1 + 8 + 4 + 8 + 8,
            GroupMsg::JoinAck { view, .. } => 1 + 8 + 8 + 4 + 8 + view_len(view) + 8,
            GroupMsg::SendReq { data, .. } | GroupMsg::BbData { data, .. } => {
                1 + 8 + 8 + 4 + 8 + 4 + data.len()
            }
            GroupMsg::Accept { body, .. } => 1 + 8 + 8 + 8 + 4 + 8 + 8 + body_len(body),
            GroupMsg::AcceptBatch { items, dones, .. } => {
                1 + 8
                    + 8
                    + 8
                    + 4
                    + items
                        .iter()
                        .map(|i| 4 + 8 + 8 + body_len(&i.body))
                        .sum::<usize>()
                    + 4
                    + DONE_ITEM_LEN * dones.len()
            }
            GroupMsg::DoneBatch { items, .. } => 1 + 8 + 4 + DONE_ITEM_LEN * items.len(),
            GroupMsg::Ack { .. } => 1 + 8 + 8 + 8 + 4,
            GroupMsg::Done { .. } => 1 + 8 + 8 + 8,
            GroupMsg::Retrans { .. } => 1 + 8 + 8 + 8 + 4,
            GroupMsg::Heartbeat { .. } => 1 + 8 + 8 + 8 + 4,
            GroupMsg::HeartbeatAck { .. } => 1 + 8 + 8 + 4,
            GroupMsg::LeaveRequest { .. } => 1 + 8 + 8 + 4,
            GroupMsg::FailNotice { .. } => 1 + 8 + 8 + 4,
            GroupMsg::ResetInvite { .. } => 1 + 8 + 8 + 4 + 4 + 8,
            GroupMsg::ResetVote { .. } => 1 + 8 + 8 + 8 + 4 + MEMBER_LEN + 8,
            GroupMsg::ResetResult { view, .. } => 1 + 8 + 8 + 8 + 4 + 8 + view_len(view) + 8 + 4,
            GroupMsg::ExpelNotice { .. } => 1 + 8 + 8,
        }
    }

    /// Encodes into a shared buffer in a single allocation.
    pub fn encode(&self) -> Payload {
        let mut w = WireWriter::with_capacity(self.encoded_len());
        match self {
            GroupMsg::JoinLocate {
                port,
                joiner,
                join_id,
            } => {
                w.u8(T_JOIN_LOCATE)
                    .u64(port.as_raw())
                    .u32(joiner.0)
                    .u64(*join_id);
            }
            GroupMsg::JoinReply {
                port,
                instance,
                members,
                sequencer,
                incarnation,
                join_id,
            } => {
                w.u8(T_JOIN_REPLY)
                    .u64(port.as_raw())
                    .u64(*instance)
                    .u32(*members)
                    .u32(sequencer.0)
                    .u64(*incarnation)
                    .u64(*join_id);
            }
            GroupMsg::JoinRequest {
                instance,
                joiner,
                tag,
                join_id,
            } => {
                w.u8(T_JOIN_REQUEST)
                    .u64(*instance)
                    .u32(joiner.0)
                    .u64(*tag)
                    .u64(*join_id);
            }
            GroupMsg::JoinAck {
                instance,
                join_id,
                member_id,
                incarnation,
                view,
                start_seq,
            } => {
                w.u8(T_JOIN_ACK)
                    .u64(*instance)
                    .u64(*join_id)
                    .u32(member_id.0)
                    .u64(*incarnation);
                write_view(&mut w, view);
                w.u64(*start_seq);
            }
            GroupMsg::SendReq {
                instance,
                incarnation,
                from,
                msgid,
                data,
            } => {
                w.u8(T_SEND_REQ)
                    .u64(*instance)
                    .u64(*incarnation)
                    .u32(from.0)
                    .u64(*msgid)
                    .bytes(data);
            }
            GroupMsg::BbData {
                instance,
                incarnation,
                from,
                msgid,
                data,
            } => {
                w.u8(T_BB_DATA)
                    .u64(*instance)
                    .u64(*incarnation)
                    .u32(from.0)
                    .u64(*msgid)
                    .bytes(data);
            }
            GroupMsg::Accept {
                instance,
                incarnation,
                seq,
                from,
                from_tag,
                msgid,
                body,
            } => {
                w.u8(T_ACCEPT)
                    .u64(*instance)
                    .u64(*incarnation)
                    .u64(*seq)
                    .u32(from.0)
                    .u64(*from_tag)
                    .u64(*msgid);
                write_body(&mut w, body);
            }
            GroupMsg::AcceptBatch {
                instance,
                incarnation,
                first_seq,
                items,
                dones,
            } => {
                w.u8(T_ACCEPT_BATCH)
                    .u64(*instance)
                    .u64(*incarnation)
                    .u64(*first_seq)
                    .u32(items.len() as u32);
                for item in items {
                    w.u32(item.from.0).u64(item.from_tag).u64(item.msgid);
                    write_body(&mut w, &item.body);
                }
                write_dones(&mut w, dones);
            }
            GroupMsg::DoneBatch { instance, items } => {
                w.u8(T_DONE_BATCH).u64(*instance);
                write_dones(&mut w, items);
            }
            GroupMsg::Ack {
                instance,
                incarnation,
                seq,
                member,
            } => {
                w.u8(T_ACK)
                    .u64(*instance)
                    .u64(*incarnation)
                    .u64(*seq)
                    .u32(member.0);
            }
            GroupMsg::Done {
                instance,
                msgid,
                seq,
            } => {
                w.u8(T_DONE).u64(*instance).u64(*msgid).u64(*seq);
            }
            GroupMsg::Retrans {
                instance,
                from_seq,
                to_seq,
                requester,
            } => {
                w.u8(T_RETRANS)
                    .u64(*instance)
                    .u64(*from_seq)
                    .u64(*to_seq)
                    .u32(requester.0);
            }
            GroupMsg::Heartbeat {
                instance,
                incarnation,
                next_seq,
                sequencer,
            } => {
                w.u8(T_HEARTBEAT)
                    .u64(*instance)
                    .u64(*incarnation)
                    .u64(*next_seq)
                    .u32(sequencer.0);
            }
            GroupMsg::HeartbeatAck {
                instance,
                incarnation,
                member,
            } => {
                w.u8(T_HEARTBEAT_ACK)
                    .u64(*instance)
                    .u64(*incarnation)
                    .u32(member.0);
            }
            GroupMsg::LeaveRequest {
                instance,
                incarnation,
                member,
            } => {
                w.u8(T_LEAVE_REQUEST)
                    .u64(*instance)
                    .u64(*incarnation)
                    .u32(member.0);
            }
            GroupMsg::FailNotice {
                instance,
                incarnation,
                suspect,
            } => {
                w.u8(T_FAIL_NOTICE)
                    .u64(*instance)
                    .u64(*incarnation)
                    .u32(suspect.0);
            }
            GroupMsg::ResetInvite {
                instance,
                old_incarnation,
                coord,
                coord_host,
                round,
            } => {
                w.u8(T_RESET_INVITE)
                    .u64(*instance)
                    .u64(*old_incarnation)
                    .u32(coord.0)
                    .u32(coord_host.0)
                    .u64(*round);
            }
            GroupMsg::ResetVote {
                instance,
                old_incarnation,
                round,
                coord,
                voter,
                highest,
            } => {
                w.u8(T_RESET_VOTE)
                    .u64(*instance)
                    .u64(*old_incarnation)
                    .u64(*round)
                    .u32(coord.0);
                write_member(&mut w, voter);
                w.u64(*highest);
            }
            GroupMsg::ResetResult {
                instance,
                old_incarnation,
                round,
                coord,
                new_incarnation,
                view,
                cutoff,
                source,
            } => {
                w.u8(T_RESET_RESULT)
                    .u64(*instance)
                    .u64(*old_incarnation)
                    .u64(*round)
                    .u32(coord.0)
                    .u64(*new_incarnation);
                write_view(&mut w, view);
                w.u64(*cutoff).u32(source.0);
            }
            GroupMsg::ExpelNotice {
                instance,
                current_incarnation,
            } => {
                w.u8(T_EXPEL_NOTICE)
                    .u64(*instance)
                    .u64(*current_incarnation);
            }
        }
        debug_assert_eq!(w.len(), self.encoded_len());
        w.finish_payload()
    }

    /// Decodes from a shared wire buffer; embedded payload bytes come
    /// back as zero-copy slices of `buf`.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on truncation, unknown tags, or trailing
    /// garbage.
    pub fn decode(buf: &Payload) -> Result<GroupMsg, DecodeError> {
        let mut r = WireReader::of(buf);
        let msg = match r.u8("group tag")? {
            T_JOIN_LOCATE => GroupMsg::JoinLocate {
                port: Port::from_raw(r.u64("port")?),
                joiner: HostAddr(r.u32("joiner")?),
                join_id: r.u64("join id")?,
            },
            T_JOIN_REPLY => GroupMsg::JoinReply {
                port: Port::from_raw(r.u64("port")?),
                instance: r.u64("instance")?,
                members: r.u32("members")?,
                sequencer: HostAddr(r.u32("sequencer")?),
                incarnation: r.u64("incarnation")?,
                join_id: r.u64("join id")?,
            },
            T_JOIN_REQUEST => GroupMsg::JoinRequest {
                instance: r.u64("instance")?,
                joiner: HostAddr(r.u32("joiner")?),
                tag: r.u64("tag")?,
                join_id: r.u64("join id")?,
            },
            T_JOIN_ACK => GroupMsg::JoinAck {
                instance: r.u64("instance")?,
                join_id: r.u64("join id")?,
                member_id: MemberId(r.u32("member id")?),
                incarnation: r.u64("incarnation")?,
                view: read_view(&mut r)?,
                start_seq: r.u64("start seq")?,
            },
            T_SEND_REQ => GroupMsg::SendReq {
                instance: r.u64("instance")?,
                incarnation: r.u64("incarnation")?,
                from: MemberId(r.u32("from")?),
                msgid: r.u64("msgid")?,
                data: r.payload("data")?,
            },
            T_BB_DATA => GroupMsg::BbData {
                instance: r.u64("instance")?,
                incarnation: r.u64("incarnation")?,
                from: MemberId(r.u32("from")?),
                msgid: r.u64("msgid")?,
                data: r.payload("data")?,
            },
            T_ACCEPT => {
                let instance = r.u64("instance")?;
                let incarnation = r.u64("incarnation")?;
                let seq = r.u64("seq")?;
                let from = MemberId(r.u32("from")?);
                let from_tag = r.u64("from tag")?;
                let msgid = r.u64("msgid")?;
                let body = read_body(&mut r)?;
                GroupMsg::Accept {
                    instance,
                    incarnation,
                    seq,
                    from,
                    from_tag,
                    msgid,
                    body,
                }
            }
            T_ACCEPT_BATCH => {
                let instance = r.u64("instance")?;
                let incarnation = r.u64("incarnation")?;
                let first_seq = r.u64("first seq")?;
                let n = r.u32("batch len")?;
                if n as usize > MAX_ACCEPT_BATCH_ITEMS {
                    return Err(DecodeError::new("batch len"));
                }
                let mut items = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    items.push(AcceptItem {
                        from: MemberId(r.u32("item from")?),
                        from_tag: r.u64("item from tag")?,
                        msgid: r.u64("item msgid")?,
                        body: read_body(&mut r)?,
                    });
                }
                let dones = read_dones(&mut r)?;
                GroupMsg::AcceptBatch {
                    instance,
                    incarnation,
                    first_seq,
                    items,
                    dones,
                }
            }
            T_DONE_BATCH => GroupMsg::DoneBatch {
                instance: r.u64("instance")?,
                items: read_dones(&mut r)?,
            },
            T_ACK => GroupMsg::Ack {
                instance: r.u64("instance")?,
                incarnation: r.u64("incarnation")?,
                seq: r.u64("seq")?,
                member: MemberId(r.u32("member")?),
            },
            T_DONE => GroupMsg::Done {
                instance: r.u64("instance")?,
                msgid: r.u64("msgid")?,
                seq: r.u64("seq")?,
            },
            T_RETRANS => GroupMsg::Retrans {
                instance: r.u64("instance")?,
                from_seq: r.u64("from seq")?,
                to_seq: r.u64("to seq")?,
                requester: HostAddr(r.u32("requester")?),
            },
            T_HEARTBEAT => GroupMsg::Heartbeat {
                instance: r.u64("instance")?,
                incarnation: r.u64("incarnation")?,
                next_seq: r.u64("next seq")?,
                sequencer: MemberId(r.u32("sequencer")?),
            },
            T_HEARTBEAT_ACK => GroupMsg::HeartbeatAck {
                instance: r.u64("instance")?,
                incarnation: r.u64("incarnation")?,
                member: MemberId(r.u32("member")?),
            },
            T_LEAVE_REQUEST => GroupMsg::LeaveRequest {
                instance: r.u64("instance")?,
                incarnation: r.u64("incarnation")?,
                member: MemberId(r.u32("member")?),
            },
            T_FAIL_NOTICE => GroupMsg::FailNotice {
                instance: r.u64("instance")?,
                incarnation: r.u64("incarnation")?,
                suspect: MemberId(r.u32("suspect")?),
            },
            T_RESET_INVITE => GroupMsg::ResetInvite {
                instance: r.u64("instance")?,
                old_incarnation: r.u64("old incarnation")?,
                coord: MemberId(r.u32("coord")?),
                coord_host: HostAddr(r.u32("coord host")?),
                round: r.u64("round")?,
            },
            T_RESET_VOTE => GroupMsg::ResetVote {
                instance: r.u64("instance")?,
                old_incarnation: r.u64("old incarnation")?,
                round: r.u64("round")?,
                coord: MemberId(r.u32("coord")?),
                voter: read_member(&mut r)?,
                highest: r.u64("highest")?,
            },
            T_RESET_RESULT => GroupMsg::ResetResult {
                instance: r.u64("instance")?,
                old_incarnation: r.u64("old incarnation")?,
                round: r.u64("round")?,
                coord: MemberId(r.u32("coord")?),
                new_incarnation: r.u64("new incarnation")?,
                view: read_view(&mut r)?,
                cutoff: r.u64("cutoff")?,
                source: HostAddr(r.u32("source")?),
            },
            T_EXPEL_NOTICE => GroupMsg::ExpelNotice {
                instance: r.u64("instance")?,
                current_incarnation: r.u64("current incarnation")?,
            },
            _ => return Err(DecodeError::new("group tag")),
        };
        r.expect_end("group trailing")?;
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amoeba_testkit::{check, Gen};

    fn mi(id: u32) -> MemberInfo {
        MemberInfo {
            id: MemberId(id),
            host: HostAddr(id * 10),
            tag: u64::from(id) + 100,
        }
    }

    fn sample_view() -> View {
        let mut v = View::default();
        v.insert(mi(0));
        v.insert(mi(1));
        v.insert(mi(2));
        v
    }

    fn round_trip(m: GroupMsg) {
        let bytes = m.encode();
        assert_eq!(GroupMsg::decode(&bytes).unwrap(), m, "round trip failed");
    }

    #[test]
    fn all_variants_round_trip() {
        round_trip(GroupMsg::JoinLocate {
            port: Port::from_name("dir"),
            joiner: HostAddr(1),
            join_id: 7,
        });
        round_trip(GroupMsg::JoinReply {
            port: Port::from_name("dir"),
            instance: 9,
            members: 3,
            sequencer: HostAddr(0),
            incarnation: 2,
            join_id: 7,
        });
        round_trip(GroupMsg::JoinRequest {
            instance: 9,
            joiner: HostAddr(1),
            tag: 5,
            join_id: 7,
        });
        round_trip(GroupMsg::JoinAck {
            instance: 9,
            join_id: 7,
            member_id: MemberId(3),
            incarnation: 2,
            view: sample_view(),
            start_seq: 42,
        });
        round_trip(GroupMsg::SendReq {
            instance: 9,
            incarnation: 2,
            from: MemberId(1),
            msgid: 88,
            data: vec![1, 2, 3].into(),
        });
        round_trip(GroupMsg::BbData {
            instance: 9,
            incarnation: 2,
            from: MemberId(1),
            msgid: 88,
            data: vec![0; 5000].into(),
        });
        for body in [
            AcceptBody::Data(vec![9, 9].into()),
            AcceptBody::BbRef,
            AcceptBody::Join(mi(4)),
            AcceptBody::Leave(MemberId(2)),
        ] {
            round_trip(GroupMsg::Accept {
                instance: 9,
                incarnation: 2,
                seq: 10,
                from: MemberId(1),
                from_tag: 101,
                msgid: 88,
                body,
            });
        }
        round_trip(GroupMsg::Ack {
            instance: 9,
            incarnation: 2,
            seq: 10,
            member: MemberId(2),
        });
        round_trip(GroupMsg::Done {
            instance: 9,
            msgid: 88,
            seq: 10,
        });
        round_trip(GroupMsg::Retrans {
            instance: 9,
            from_seq: 5,
            to_seq: 9,
            requester: HostAddr(1),
        });
        round_trip(GroupMsg::Heartbeat {
            instance: 9,
            incarnation: 2,
            next_seq: 11,
            sequencer: MemberId(0),
        });
        round_trip(GroupMsg::HeartbeatAck {
            instance: 9,
            incarnation: 2,
            member: MemberId(1),
        });
        round_trip(GroupMsg::LeaveRequest {
            instance: 9,
            incarnation: 2,
            member: MemberId(1),
        });
        round_trip(GroupMsg::FailNotice {
            instance: 9,
            incarnation: 2,
            suspect: MemberId(0),
        });
        round_trip(GroupMsg::ResetInvite {
            instance: 9,
            old_incarnation: 2,
            coord: MemberId(1),
            coord_host: HostAddr(10),
            round: 3,
        });
        round_trip(GroupMsg::ResetVote {
            instance: 9,
            old_incarnation: 2,
            round: 3,
            coord: MemberId(1),
            voter: mi(2),
            highest: 40,
        });
        round_trip(GroupMsg::ResetResult {
            instance: 9,
            old_incarnation: 2,
            round: 3,
            coord: MemberId(1),
            new_incarnation: 3,
            view: sample_view(),
            cutoff: 41,
            source: HostAddr(20),
        });
        round_trip(GroupMsg::ExpelNotice {
            instance: 9,
            current_incarnation: 4,
        });
    }

    #[test]
    fn accept_batch_round_trips() {
        round_trip(GroupMsg::AcceptBatch {
            instance: 9,
            incarnation: 2,
            first_seq: 10,
            items: vec![
                AcceptItem {
                    from: MemberId(1),
                    from_tag: 101,
                    msgid: 88,
                    body: AcceptBody::Data(vec![1, 2].into()),
                },
                AcceptItem {
                    from: MemberId(2),
                    from_tag: 102,
                    msgid: 0,
                    body: AcceptBody::Join(mi(4)),
                },
                AcceptItem {
                    from: MemberId(1),
                    from_tag: 101,
                    msgid: 89,
                    body: AcceptBody::BbRef,
                },
            ],
            dones: vec![
                DoneItem {
                    from: MemberId(2),
                    msgid: 44,
                    seq: 8,
                },
                DoneItem {
                    from: MemberId(1),
                    msgid: 87,
                    seq: 9,
                },
            ],
        });
    }

    #[test]
    fn done_batch_round_trips() {
        round_trip(GroupMsg::DoneBatch {
            instance: 9,
            items: vec![
                DoneItem {
                    from: MemberId(1),
                    msgid: 88,
                    seq: 10,
                },
                DoneItem {
                    from: MemberId(2),
                    msgid: 91,
                    seq: 11,
                },
            ],
        });
        round_trip(GroupMsg::DoneBatch {
            instance: 9,
            items: vec![],
        });
    }

    #[test]
    fn oversized_done_batch_rejected() {
        let mut w = WireWriter::new();
        w.u8(T_DONE_BATCH).u64(1).u32(1_000_000);
        assert!(GroupMsg::decode(&w.finish_payload()).is_err());
    }

    #[test]
    fn oversized_accept_batch_rejected() {
        let mut w = WireWriter::new();
        w.u8(T_ACCEPT_BATCH).u64(1).u64(1).u64(1).u32(1_000_000);
        assert!(GroupMsg::decode(&w.finish_payload()).is_err());
    }

    #[test]
    fn unknown_tag_errors() {
        assert!(GroupMsg::decode(&Payload::from(vec![200])).is_err());
    }

    #[test]
    fn oversized_view_rejected() {
        let mut w = WireWriter::new();
        w.u8(T_JOIN_ACK).u64(1).u64(1).u32(1).u64(1).u32(1_000_000);
        assert!(GroupMsg::decode(&w.finish_payload()).is_err());
    }

    #[test]
    fn prop_accept_data_round_trip() {
        check("accept data round trip", 256, |g: &mut Gen| {
            let m = GroupMsg::Accept {
                instance: g.u64(),
                incarnation: g.u64(),
                seq: g.u64(),
                from: MemberId(g.u32()),
                from_tag: g.u64(),
                msgid: g.u64(),
                body: AcceptBody::Data(g.bytes(300).into()),
            };
            assert_eq!(GroupMsg::decode(&m.encode()).unwrap(), m);
        });
    }

    #[test]
    fn prop_decode_never_panics() {
        check("group decode never panics", 256, |g: &mut Gen| {
            let _ = GroupMsg::decode(&g.bytes(128).into());
        });
    }
}

//! Tunables for the group protocol.

use std::time::Duration;

/// Configuration for a group member's protocol engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupConfig {
    /// Requested resilience degree *r*: `SendToGroup` completes only after
    /// at least `r + 1` members hold the message, so it survives `r`
    /// simultaneous crashes (paper §1). Effective resilience is capped at
    /// `view size − 1`.
    pub resilience: u32,
    /// How often the sequencer multicasts heartbeats.
    pub heartbeat_interval: Duration,
    /// Silence longer than this marks a peer dead (group failure).
    pub failure_timeout: Duration,
    /// Sender retransmits an unacknowledged send request after this long.
    pub ack_timeout: Duration,
    /// A detected sequence gap triggers a retransmission request after
    /// this long.
    pub gap_timeout: Duration,
    /// How long a `ResetGroup` coordinator collects votes.
    pub reset_vote_window: Duration,
    /// How many accepted messages each member keeps for retransmission.
    pub history: u64,
    /// Payloads at least this large use the BB method (sender multicasts
    /// the data; the sequencer multicasts a short accept) instead of the
    /// PB method (sender hands data to the sequencer, which multicasts it).
    pub bb_threshold: usize,
    /// Protocol engine tick granularity.
    pub tick_interval: Duration,
    /// Most accepts the sequencer coalesces into one multicast. Send
    /// requests arriving within one coalescing window are sequenced into
    /// a single `AcceptBatch` packet, amortizing per-packet protocol
    /// cost across messages (with cumulative acks amortizing the reply
    /// direction). `1` disables batching.
    pub max_batch: usize,
    /// How long the sequencer may hold a sequenced accept waiting for
    /// more to coalesce. Zero flushes after every packet; the flush also
    /// happens as soon as `max_batch` accepts are pending. Bounded well
    /// below `gap_timeout` so held accepts are never mistaken for loss.
    pub batch_delay: Duration,
    /// Fault-injection self-test knob: re-introduces the pre-fix gap-
    /// recovery retransmission bound (derived from the accept buffer's
    /// last key instead of `highest_seen`), under which an end-of-order
    /// gap produces an empty retransmission request and the member stalls
    /// forever. Exists so `amoeba-explore` can prove its search finds a
    /// known historical bug; never enable outside that harness.
    pub buggy_retrans_bound: bool,
}

impl GroupConfig {
    /// Defaults tuned for the simulated 10 Mbit/s LAN.
    pub fn lan() -> Self {
        GroupConfig {
            resilience: 0,
            heartbeat_interval: Duration::from_millis(100),
            failure_timeout: Duration::from_millis(400),
            ack_timeout: Duration::from_millis(50),
            gap_timeout: Duration::from_millis(25),
            reset_vote_window: Duration::from_millis(150),
            history: 65_536,
            bb_threshold: 3_000,
            tick_interval: Duration::from_millis(20),
            max_batch: 16,
            batch_delay: Duration::from_micros(500),
            buggy_retrans_bound: false,
        }
    }

    /// LAN defaults with the given resilience degree.
    pub fn with_resilience(r: u32) -> Self {
        GroupConfig {
            resilience: r,
            ..Self::lan()
        }
    }
}

impl Default for GroupConfig {
    fn default() -> Self {
        Self::lan()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_lan() {
        assert_eq!(GroupConfig::default(), GroupConfig::lan());
    }

    #[test]
    fn with_resilience_sets_r() {
        assert_eq!(GroupConfig::with_resilience(2).resilience, 2);
    }

    #[test]
    fn batching_is_on_by_default() {
        assert!(GroupConfig::default().max_batch > 1);
    }
}

//! The application-facing group handle: the Fig. 1 primitives.

use std::time::Duration;

use amoeba_flip::{Dest, GroupAddr, Payload, Port};
use amoeba_sim::{Ctx, MailboxRx};

use crate::error::GroupError;
use crate::instance::Instance;
use crate::msg::GroupMsg;
use crate::peer::{GroupPeer, InstanceSlot, GROUP_PORT};
use crate::types::{GroupEvent, GroupInfo, SeqNo};

type AppItem = Result<GroupEvent, GroupError>;

/// A membership in one group: the handle on which the paper's primitives
/// (`SendToGroup`, `ReceiveFromGroup`, `ResetGroup`, `GetInfoGroup`,
/// `LeaveGroup`) are invoked.
///
/// Obtained from [`GroupPeer::create`] or [`GroupPeer::join`]. The handle
/// owns the receive side of the event queue, so exactly one process should
/// call [`recv`](Group::recv) (the paper's single *group thread*); `send`
/// and `info` may be used from any process on the same machine.
#[derive(Debug)]
pub struct Group {
    peer: GroupPeer,
    instance: u64,
    app_rx: MailboxRx<AppItem>,
}

impl GroupPeer {
    /// `CreateGroup`: founds a new group instance for `port` with this
    /// machine as first member and sequencer. `tag` is an opaque
    /// application label attached to this member (the directory service
    /// stores its replica number here).
    pub fn create(&self, port: Port, tag: u64) -> Group {
        let now = self.handle.now();
        let instance_id = {
            let mut inner = self.inner.lock();
            let local = inner.next_local_id;
            inner.next_local_id += 1;
            (u64::from(self.stack.addr().0) << 32) | local
        };
        let mut inst = Instance::create(
            instance_id,
            port,
            self.cfg.clone(),
            self.stack.addr(),
            tag,
            now,
        );
        inst.set_telemetry(amoeba_telemetry::Telemetry::from_handle(&self.handle));
        self.stack.join_group(GroupAddr(instance_id));
        let (app_tx, app_rx) = self.handle.channel::<AppItem>();
        self.inner.lock().instances.insert(
            instance_id,
            InstanceSlot {
                inst,
                app_tx,
                send_waiters: Default::default(),
                reset_waiter: None,
                leave_waiter: None,
            },
        );
        Group {
            peer: self.clone(),
            instance: instance_id,
            app_rx,
        }
    }

    /// `JoinGroup`: locates a live instance for `port` and joins it.
    ///
    /// # Errors
    ///
    /// [`GroupError::JoinTimeout`] if no instance answered or the join
    /// handshake did not complete within `timeout`.
    pub fn join(
        &self,
        ctx: &Ctx,
        port: Port,
        tag: u64,
        timeout: Duration,
    ) -> Result<Group, GroupError> {
        let deadline = ctx.now() + timeout;
        // Phase 1: locate an instance, rebroadcasting periodically (an
        // instance may be created after our first locate).
        let (join_id, reply_rx) = {
            let mut inner = self.inner.lock();
            let id = inner.next_local_id;
            inner.next_local_id += 1;
            let (tx, rx) = self.handle.channel::<GroupMsg>();
            inner.join_reply_waiters.insert(id, tx);
            (id, rx)
        };
        let reply = loop {
            self.stack.send(
                Dest::Broadcast,
                GROUP_PORT,
                GroupMsg::JoinLocate {
                    port,
                    joiner: self.stack.addr(),
                    join_id,
                }
                .encode(),
            );
            let round_end = (ctx.now() + Duration::from_millis(120)).min(deadline);
            match reply_rx.recv_deadline(ctx, round_end) {
                Some(r) => break Some(r),
                None if ctx.now() >= deadline => break None,
                None => continue,
            }
        };
        self.inner.lock().join_reply_waiters.remove(&join_id);
        let (instance, sequencer) = match reply {
            Some(GroupMsg::JoinReply {
                instance,
                sequencer,
                ..
            }) => (instance, sequencer),
            _ => return Err(GroupError::JoinTimeout),
        };
        // Phase 2: join the instance. Enter the multicast group first so
        // accepts racing the ack are not lost.
        self.stack.join_group(GroupAddr(instance));
        let (ack_id, ack_rx) = {
            let mut inner = self.inner.lock();
            let id = inner.next_local_id;
            inner.next_local_id += 1;
            let (tx, rx) = self.handle.channel::<GroupMsg>();
            inner.join_ack_waiters.insert(id, tx);
            (id, rx)
        };
        self.stack.send(
            Dest::Unicast(sequencer),
            GROUP_PORT,
            GroupMsg::JoinRequest {
                instance,
                joiner: self.stack.addr(),
                tag,
                join_id: ack_id,
            }
            .encode(),
        );
        let ack = ack_rx.recv_deadline(ctx, deadline);
        self.inner.lock().join_ack_waiters.remove(&ack_id);
        let (member_id, incarnation, view, start_seq) = match ack {
            Some(GroupMsg::JoinAck {
                member_id,
                incarnation,
                view,
                start_seq,
                ..
            }) => (member_id, incarnation, view, start_seq),
            _ => {
                self.stack.leave_group(GroupAddr(instance));
                return Err(GroupError::JoinTimeout);
            }
        };
        let now = self.handle.now();
        let mut inst = Instance::from_join(
            instance,
            port,
            self.cfg.clone(),
            self.stack.addr(),
            tag,
            member_id,
            incarnation,
            view,
            start_seq,
            now,
        );
        inst.set_telemetry(amoeba_telemetry::Telemetry::from_handle(&self.handle));
        let (app_tx, app_rx) = self.handle.channel::<AppItem>();
        self.inner.lock().instances.insert(
            instance,
            InstanceSlot {
                inst,
                app_tx,
                send_waiters: Default::default(),
                reset_waiter: None,
                leave_waiter: None,
            },
        );
        Ok(Group {
            peer: self.clone(),
            instance,
            app_rx,
        })
    }
}

impl Group {
    /// The instance id (diagnostics; also the key for
    /// [`GroupPeer::stats_of`]).
    pub fn instance_id(&self) -> u64 {
        self.instance
    }

    /// This member's engine counters (`None` after dissolution).
    pub fn stats(&self) -> Option<crate::GroupStats> {
        self.peer.stats_of(self.instance)
    }

    /// `SendToGroup`: sends `data` to every member in total order. Blocks
    /// until the message is *r*-resilient (held by at least r+1 members).
    ///
    /// The payload is shared from here to every member's delivery queue:
    /// no byte of it is copied again inside the group stack.
    ///
    /// # Errors
    ///
    /// [`GroupError::Failed`] if the group failed (call
    /// [`reset`](Group::reset)); [`GroupError::Dead`] if this member was
    /// expelled or the instance dissolved.
    pub fn send(&self, ctx: &Ctx, data: impl Into<Payload>) -> Result<SeqNo, GroupError> {
        self.send_traced(ctx, data, amoeba_telemetry::TraceCtx::NONE)
    }

    /// [`send`](Group::send) carrying the submitter's causal-trace
    /// context. The sequencer parents its ordering span to it, and every
    /// member's delivery event exposes the ordering context
    /// ([`GroupEvent::Message::trace`]). A `NONE` context makes this
    /// identical to `send`.
    pub fn send_traced(
        &self,
        ctx: &Ctx,
        data: impl Into<Payload>,
        trace: amoeba_telemetry::TraceCtx,
    ) -> Result<SeqNo, GroupError> {
        let now = ctx.now();
        let data = data.into();
        let (rx, actions) = {
            let (tx, rx) = self.peer.handle.channel();
            let r = self.peer.with_slot(self.instance, |slot| {
                let (msgid, actions) = slot.inst.app_send_traced(now, data, trace);
                slot.send_waiters.insert(msgid, tx);
                (msgid, actions)
            });
            match r {
                Some((_msgid, actions)) => (rx, actions),
                None => return Err(GroupError::Dead),
            }
        };
        self.peer.run_actions(ctx, self.instance, actions);
        rx.recv(ctx)
    }

    /// `ReceiveFromGroup`: the next event in the total order.
    ///
    /// # Errors
    ///
    /// [`GroupError::Failed`] when the group needs [`reset`](Group::reset);
    /// [`GroupError::Dead`] when this membership is gone for good.
    pub fn recv(&self, ctx: &Ctx) -> Result<GroupEvent, GroupError> {
        if let Some(item) = self.app_rx.try_recv() {
            return item;
        }
        match self.state() {
            GroupState::Healthy => {}
            GroupState::Failed => return Err(GroupError::Failed),
            GroupState::Dead => return Err(GroupError::Dead),
        }
        self.app_rx.recv(ctx)
    }

    /// Like [`recv`](Group::recv) with a timeout; `None` on expiry.
    pub fn recv_timeout(&self, ctx: &Ctx, d: Duration) -> Option<Result<GroupEvent, GroupError>> {
        if let Some(item) = self.app_rx.try_recv() {
            return Some(item);
        }
        match self.state() {
            GroupState::Healthy => {}
            GroupState::Failed => return Some(Err(GroupError::Failed)),
            GroupState::Dead => return Some(Err(GroupError::Dead)),
        }
        self.app_rx.recv_timeout(ctx, d)
    }

    /// `GetInfoGroup`.
    ///
    /// # Errors
    ///
    /// [`GroupError::Dead`] if the instance has dissolved.
    pub fn info(&self) -> Result<GroupInfo, GroupError> {
        self.peer.info_of(self.instance).ok_or(GroupError::Dead)
    }

    /// Number of events buffered by the kernel that this handle has not
    /// yet received — what Fig. 5's read path checks before serving a read.
    pub fn pending_events(&self) -> usize {
        self.app_rx.len()
    }

    /// `ResetGroup`: rebuilds the group from the still-reachable members.
    /// Succeeds only if at least `min_size` members (including this one)
    /// participate. Every member may call this concurrently; they converge
    /// on one new view.
    ///
    /// # Errors
    ///
    /// [`GroupError::ResetFailed`] if fewer than `min_size` members
    /// answered within the vote window (`timeout` bounds the total wait).
    pub fn reset(
        &self,
        ctx: &Ctx,
        min_size: usize,
        timeout: Duration,
    ) -> Result<GroupInfo, GroupError> {
        let deadline = ctx.now() + timeout;
        loop {
            let now = ctx.now();
            if now >= deadline {
                return Err(GroupError::ResetFailed);
            }
            let (rx, actions) = {
                let (tx, rx) = self.peer.handle.channel();
                let r = self.peer.with_slot(self.instance, |slot| {
                    if !slot.inst.failed {
                        // Healthy again (another coordinator won): done.
                        return None;
                    }
                    let actions = slot.inst.app_reset(now, min_size);
                    slot.reset_waiter = Some(tx);
                    Some(actions)
                });
                match r {
                    None => return Err(GroupError::Dead),
                    Some(None) => return self.info(),
                    Some(Some(actions)) => (rx, actions),
                }
            };
            self.peer.run_actions(ctx, self.instance, actions);
            match rx.recv_deadline(ctx, deadline) {
                Some(Ok(())) => return self.info(),
                Some(Err(GroupError::ResetFailed)) => {
                    // Jitter, then retry until the caller's deadline.
                    let j = ctx.with_rng(|r| r.range(1, 20));
                    ctx.sleep(Duration::from_millis(j));
                    continue;
                }
                Some(Err(e)) => return Err(e),
                None => return Err(GroupError::ResetFailed),
            }
        }
    }

    /// `LeaveGroup`: departs gracefully; the handle is consumed.
    pub fn leave(self, ctx: &Ctx) {
        let now = ctx.now();
        let (rx, actions) = {
            let (tx, rx) = self.peer.handle.channel();
            let r = self.peer.with_slot(self.instance, |slot| {
                slot.leave_waiter = Some(tx);
                slot.inst.app_leave(now)
            });
            match r {
                Some(actions) => (rx, actions),
                None => return, // already gone
            }
        };
        self.peer.run_actions(ctx, self.instance, actions);
        // Bounded wait: if the sequencer is unreachable the instance will
        // fail and dissolve through other paths; don't hang forever.
        let _ = rx.recv_timeout(ctx, Duration::from_secs(5));
    }

    fn state(&self) -> GroupState {
        match self.peer.info_of(self.instance) {
            None => GroupState::Dead,
            Some(i) if i.failed => GroupState::Failed,
            Some(_) => GroupState::Healthy,
        }
    }
}

enum GroupState {
    Healthy,
    Failed,
    Dead,
}

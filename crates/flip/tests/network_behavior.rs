//! Behavioural tests for the simulated network: delivery, multicast,
//! broadcast, partitions, loss, host down/up, and stats accounting.

use std::time::Duration;

use amoeba_flip::{GroupAddr, NetParams, Network, Payload, Port};
use amoeba_sim::{SimTime, Simulation};

fn net(sim: &Simulation, params: NetParams) -> Network {
    Network::new(sim.handle(), params, 99)
}

#[test]
fn unicast_delivers_with_model_latency() {
    let mut sim = Simulation::new(1);
    let mut params = NetParams::lan_10mbps();
    params.jitter = 0.0;
    let n = net(&sim, params.clone());
    let a = n.attach();
    let b = n.attach();
    let port = Port::from_name("t");
    let rx = b.bind(port);
    let dst = b.addr();
    sim.spawn("send", move |_| a.send(dst, port, vec![0u8; 100]));
    let got = sim.spawn("recv", move |ctx| {
        let p = rx.recv(ctx);
        (p.payload.len(), ctx.now())
    });
    sim.run();
    let (len, t) = got.take().unwrap();
    assert_eq!(len, 100);
    let expect = params.latency(100);
    assert_eq!(t, SimTime::ZERO + expect);
}

#[test]
fn multicast_reaches_all_members_including_sender() {
    let mut sim = Simulation::new(1);
    let n = net(&sim, NetParams::lan_10mbps());
    let stacks: Vec<_> = (0..4).map(|_| n.attach()).collect();
    let g = GroupAddr(7);
    let port = Port::from_name("grp");
    // Hosts 0..3 join; host 3 does not.
    let mut rxs = Vec::new();
    for s in &stacks[..3] {
        s.join_group(g);
        rxs.push(s.bind(port));
    }
    let outsider_rx = stacks[3].bind(port);
    let sender = stacks[0].clone();
    sim.spawn("send", move |_| sender.send(g, port, b"m".to_vec()));
    let outs: Vec<_> = rxs
        .into_iter()
        .enumerate()
        .map(|(i, rx)| sim.spawn(&format!("r{i}"), move |ctx| rx.recv(ctx).payload))
        .collect();
    sim.run_for(Duration::from_millis(50));
    for o in outs {
        assert_eq!(o.take(), Some(Payload::from(b"m")));
    }
    assert!(outsider_rx.is_empty(), "non-member must not receive");
    // One multicast = one packet sent, three deliveries.
    let st = n.stats();
    assert_eq!(st.multicast_sent, 1);
    assert_eq!(st.deliveries, 3);
}

#[test]
fn broadcast_reaches_every_bound_host() {
    let mut sim = Simulation::new(1);
    let n = net(&sim, NetParams::lan_10mbps());
    let port = Port::from_name("loc");
    let a = n.attach();
    let others: Vec<_> = (0..3).map(|_| n.attach()).collect();
    let rxs: Vec<_> = others.iter().map(|s| s.bind(port)).collect();
    sim.spawn("send", move |_| {
        a.send(amoeba_flip::Dest::Broadcast, port, vec![9])
    });
    let outs: Vec<_> = rxs
        .into_iter()
        .enumerate()
        .map(|(i, rx)| sim.spawn(&format!("r{i}"), move |ctx| rx.recv(ctx).payload))
        .collect();
    sim.run_for(Duration::from_millis(10));
    for o in outs {
        assert_eq!(o.take(), Some(Payload::from(vec![9])));
    }
}

#[test]
fn partition_blocks_cross_traffic_and_heals() {
    let mut sim = Simulation::new(1);
    let n = net(&sim, NetParams::lan_10mbps());
    let a = n.attach();
    let b = n.attach();
    let port = Port::from_name("t");
    let rx = b.bind(port);
    let b_addr = b.addr();
    n.isolate(&[a.addr()]);
    let n2 = n.clone();
    let a2 = a.clone();
    sim.spawn("send", move |ctx| {
        a2.send(b_addr, port, vec![1]); // dropped: crosses the partition
        ctx.sleep(Duration::from_millis(20));
        n2.heal();
        a2.send(b_addr, port, vec![2]); // delivered
    });
    let got = sim.spawn("recv", move |ctx| rx.recv(ctx).payload);
    sim.run_for(Duration::from_millis(100));
    assert_eq!(got.take(), Some(Payload::from(vec![2])));
    assert_eq!(n.stats().dropped_partition, 1);
}

#[test]
fn hosts_in_same_side_of_partition_can_talk() {
    let mut sim = Simulation::new(1);
    let n = net(&sim, NetParams::lan_10mbps());
    let a = n.attach();
    let b = n.attach();
    let c = n.attach();
    let port = Port::from_name("t");
    let rx = b.bind(port);
    let b_addr = b.addr();
    // a and b on side 1; c alone on side 0.
    n.set_partition(&[&[a.addr(), b.addr()]]);
    let _ = c;
    sim.spawn("send", move |_| a.send(b_addr, port, vec![5]));
    let got = sim.spawn("recv", move |ctx| rx.recv(ctx).payload);
    sim.run_for(Duration::from_millis(10));
    assert_eq!(got.take(), Some(Payload::from(vec![5])));
}

#[test]
fn down_host_receives_nothing_and_loses_bindings() {
    let mut sim = Simulation::new(1);
    let n = net(&sim, NetParams::lan_10mbps());
    let a = n.attach();
    let b = n.attach();
    let g = GroupAddr(1);
    let port = Port::from_name("t");
    let _rx = b.bind(port);
    b.join_group(g);
    n.set_down(b.addr());
    assert!(!n.is_up(b.addr()));
    assert!(!b.is_bound(port));
    let b_addr = b.addr();
    sim.spawn("send", move |_| {
        a.send(b_addr, port, vec![1]);
        a.send(g, port, vec![2]);
    });
    sim.run_for(Duration::from_millis(10));
    let st = n.stats();
    assert_eq!(st.dropped_down, 1); // the unicast
    assert_eq!(st.deliveries, 0); // multicast had no members left
                                  // After set_up the host must re-bind to receive again.
    n.set_up(b.addr());
    let rx2 = b.bind(port);
    let a2 = n.attach(); // fresh sender stack (same net)
    sim.spawn("send2", move |_| a2.send(b_addr, port, vec![3]));
    let got = sim.spawn("recv", move |ctx| rx2.recv(ctx).payload);
    sim.run_for(Duration::from_millis(10));
    assert_eq!(got.take(), Some(Payload::from(vec![3])));
}

#[test]
fn down_host_cannot_send() {
    let mut sim = Simulation::new(1);
    let n = net(&sim, NetParams::lan_10mbps());
    let a = n.attach();
    let b = n.attach();
    let port = Port::from_name("t");
    let rx = b.bind(port);
    n.set_down(a.addr());
    let b_addr = b.addr();
    sim.spawn("send", move |_| a.send(b_addr, port, vec![1]));
    sim.run_for(Duration::from_millis(10));
    assert!(rx.is_empty());
    assert_eq!(n.stats().packets_sent, 0);
}

#[test]
fn unbound_port_drops_with_stat() {
    let mut sim = Simulation::new(1);
    let n = net(&sim, NetParams::lan_10mbps());
    let a = n.attach();
    let b = n.attach();
    let b_addr = b.addr();
    sim.spawn("send", move |_| {
        a.send(b_addr, Port::from_name("nobody"), vec![1])
    });
    sim.run();
    assert_eq!(n.stats().dropped_no_listener, 1);
}

#[test]
fn packet_loss_is_applied() {
    let mut sim = Simulation::new(1);
    let n = net(&sim, NetParams::lossy(1.0)); // everything lost
    let a = n.attach();
    let b = n.attach();
    let port = Port::from_name("t");
    let rx = b.bind(port);
    let b_addr = b.addr();
    sim.spawn("send", move |_| {
        for _ in 0..10 {
            a.send(b_addr, port, vec![1]);
        }
    });
    sim.run_for(Duration::from_millis(50));
    assert!(rx.is_empty());
    assert_eq!(n.stats().dropped_loss, 10);
}

#[test]
fn rebinding_a_port_replaces_the_old_mailbox() {
    let mut sim = Simulation::new(1);
    let n = net(&sim, NetParams::lan_10mbps());
    let a = n.attach();
    let b = n.attach();
    let port = Port::from_name("t");
    let old_rx = b.bind(port);
    let new_rx = b.bind(port);
    let b_addr = b.addr();
    sim.spawn("send", move |_| a.send(b_addr, port, vec![1]));
    sim.run_for(Duration::from_millis(10));
    assert!(old_rx.is_empty());
    assert_eq!(new_rx.len(), 1);
}

#[test]
fn wire_serializes_back_to_back_sends() {
    // The shared ether carries one frame at a time: a big packet sent
    // first delays a small one behind it (no magic reordering on a
    // single segment), and the pair arrives strictly FIFO.
    let mut sim = Simulation::new(1);
    let mut params = NetParams::lan_10mbps();
    params.jitter = 0.0;
    let n = net(&sim, params.clone());
    let a = n.attach();
    let b = n.attach();
    let port = Port::from_name("t");
    let rx = b.bind(port);
    let b_addr = b.addr();
    sim.spawn("send", move |_| {
        a.send(b_addr, port, vec![0; 8000]); // occupies the wire ~6.4 ms
        a.send(b_addr, port, vec![0; 10]); // queues behind it
    });
    let got = sim.spawn("recv", move |ctx| {
        let first = (rx.recv(ctx).payload.len(), ctx.now());
        let second = (rx.recv(ctx).payload.len(), ctx.now());
        (first, second)
    });
    sim.run_for(Duration::from_millis(100));
    let ((first_len, t1), (second_len, t2)) = got.take().unwrap();
    assert_eq!((first_len, second_len), (8000, 10));
    // The small packet waited for the big one's wire time.
    assert!(t2 >= t1, "FIFO per wire");
    assert!(
        t2.saturating_since(SimTime::ZERO) >= params.wire_time(8000),
        "small packet must queue behind the large one"
    );
    // Utilization accounting saw both frames.
    assert_eq!(
        n.stats().wire_busy_nanos,
        (params.wire_time(8000) + params.wire_time(10)).as_nanos() as u64
    );
}

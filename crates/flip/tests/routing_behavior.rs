//! Behavioural and property tests of the internetwork routing layer:
//! store-and-forward timing, expanding-ring reachability, duplicate
//! suppression, TTL enforcement, route learning, and router failure.

use std::time::Duration;

use amoeba_flip::{Dest, GroupAddr, NetParams, Network, Port, SegmentId, Topology};
use amoeba_sim::{SimTime, Simulation};
use amoeba_testkit::{check, Gen};

fn quiet() -> NetParams {
    let mut p = NetParams::lan_10mbps();
    p.jitter = 0.0;
    p
}

#[test]
fn routed_unicast_pays_exactly_one_hop_overhead() {
    // Two segments, one router: an off-segment unicast (flooded, since
    // no route is known yet — one router, so flooding == routing here)
    // arrives after exactly latency + hop_overhead on an idle network.
    let mut sim = Simulation::new(1);
    let params = quiet();
    let net = Network::with_topology(sim.handle(), params.clone(), Topology::two_segments(), 9);
    let a = net.attach_to(SegmentId(0));
    let b = net.attach_to(SegmentId(1));
    let port = Port::from_name("t");
    let rx = b.bind(port);
    let dst = b.addr();
    sim.spawn("send", move |_| a.send(dst, port, vec![0u8; 100]));
    let got = sim.spawn("recv", move |ctx| (rx.recv(ctx).payload.len(), ctx.now()));
    sim.run_for(Duration::from_millis(50));
    let (len, t) = got.take().expect("routed unicast delivered");
    assert_eq!(len, 100);
    let expect = params.latency(100) + params.hop_overhead(100);
    assert_eq!(t, SimTime::ZERO + expect);
    let st = net.stats();
    assert_eq!(st.packets_sent, 1, "origin send counts once");
    assert_eq!(st.packets_forwarded, 1, "one store-and-forward");
    assert_eq!(st.segments.len(), 2);
    assert!(st.segments[0].wire_busy_nanos > 0 && st.segments[1].wire_busy_nanos > 0);
    assert_eq!(
        st.wire_busy_nanos,
        st.segments[0].wire_busy_nanos + st.segments[1].wire_busy_nanos,
        "total wire busy is the sum of the per-segment counters"
    );
}

#[test]
fn ttl_limited_broadcast_stays_in_the_ring() {
    // Chain of 3 segments: a TTL-1 broadcast never leaves the origin
    // segment; TTL 2 reaches the middle; TTL 3 reaches everything.
    for (ttl, reach) in [(1u8, 1usize), (2, 2), (3, 3)] {
        let mut sim = Simulation::new(2);
        let net = Network::with_topology(sim.handle(), quiet(), Topology::chain(3), 5);
        let stacks: Vec<_> = (0..3).map(|i| net.attach_to(SegmentId(i as u32))).collect();
        let port = Port::from_name("ring");
        let rxs: Vec<_> = stacks.iter().map(|s| s.bind(port)).collect();
        let src = stacks[0].clone();
        sim.spawn("send", move |_| {
            src.send_with_ttl(Dest::Broadcast, port, vec![7], ttl)
        });
        sim.run_for(Duration::from_millis(50));
        let delivered: usize = rxs.iter().map(|rx| rx.len()).sum();
        assert_eq!(delivered, reach, "ttl {ttl} must reach {reach} segments");
        if reach < 3 {
            assert!(net.stats().dropped_ttl > 0, "ttl exhaustion is counted");
        }
    }
}

#[test]
fn cyclic_topology_delivers_broadcasts_exactly_once() {
    // A triangle (three segments, three routers) offers two paths to
    // every remote segment: duplicate suppression must keep delivery
    // at exactly one copy per host, and the flood must terminate.
    let mut t = Topology::new();
    let a = t.add_segment("a");
    let b = t.add_segment("b");
    let c = t.add_segment("c");
    t.add_router("rab", &[a, b]);
    t.add_router("rbc", &[b, c]);
    t.add_router("rac", &[a, c]);
    let mut sim = Simulation::new(3);
    let net = Network::with_topology(sim.handle(), quiet(), t, 11);
    let stacks: Vec<_> = [a, b, c]
        .iter()
        .flat_map(|s| (0..2).map(|_| net.attach_to(*s)).collect::<Vec<_>>())
        .collect();
    let port = Port::from_name("tri");
    let rxs: Vec<_> = stacks.iter().map(|s| s.bind(port)).collect();
    let src = stacks[0].clone();
    // TTL 3 keeps the redundant two-router path alive all the way to
    // delivery (the default TTL of 2 would cut it at the second
    // router), so receiver-side suppression is what prevents the dup.
    sim.spawn("send", move |_| {
        src.send_with_ttl(Dest::Broadcast, port, vec![1], 3)
    });
    sim.run_for(Duration::from_millis(100));
    for (i, rx) in rxs.iter().enumerate() {
        assert_eq!(rx.len(), 1, "host {i} must receive exactly one copy");
    }
    let st = net.stats();
    assert!(
        st.dup_suppressed > 0,
        "the redundant path must have been suppressed"
    );
}

#[test]
fn broadcast_reachability_property() {
    // Random topologies: a broadcast with TTL t reaches a host iff the
    // host's segment is within t−1 router hops of the origin segment —
    // and never delivers twice.
    check("found iff reachable, exactly once", 24, |g: &mut Gen| {
        let n_segs = 2 + g.below(4); // 2..=5 segments
        let mut topo = Topology::new();
        let segs: Vec<SegmentId> = (0..n_segs)
            .map(|i| topo.add_segment(&format!("s{i}")))
            .collect();
        // Random routers, possibly leaving some segments unreachable
        // and possibly forming cycles.
        let n_routers = 1 + g.below(n_segs + 1);
        for r in 0..n_routers {
            let x = segs[g.below(n_segs)];
            let y = segs[g.below(n_segs)];
            if x != y {
                topo.add_router(&format!("r{r}"), &[x, y]);
            }
        }
        let ttl = 1 + g.below(4) as u8;
        let src_seg = segs[g.below(n_segs)];
        let topo2 = topo.clone();

        let mut sim = Simulation::new(0x70B0 + ttl as u64);
        let net = Network::with_topology(sim.handle(), quiet(), topo, 0xD1CE);
        let port = Port::from_name("prop");
        let stacks: Vec<_> = segs.iter().map(|s| net.attach_to(*s)).collect();
        let rxs: Vec<_> = stacks.iter().map(|s| s.bind(port)).collect();
        let src = stacks[src_seg.0 as usize].clone();
        sim.spawn("send", move |_| {
            src.send_with_ttl(Dest::Broadcast, port, vec![9], ttl)
        });
        sim.run_for(Duration::from_millis(200));
        for (i, rx) in rxs.iter().enumerate() {
            let within = topo2
                .hops_between(src_seg, segs[i])
                .map(|h| h < ttl)
                .unwrap_or(false);
            let got = rx.len();
            assert_eq!(
                got,
                usize::from(within),
                "host on {:?} (src {:?}, ttl {ttl}): delivered {got}, reachable-within-ring {within}",
                segs[i],
                src_seg,
            );
        }
    });
}

#[test]
fn routes_are_learned_from_broadcasts_and_prune_flooding() {
    // Y topology: one router joins three segments. The first unicast to
    // an unknown host floods both remote segments; after the reply
    // teaches the route, a repeat send is forwarded onto one segment
    // only.
    let mut t = Topology::new();
    let a = t.add_segment("a");
    let b = t.add_segment("b");
    let c = t.add_segment("c");
    t.add_router("hub", &[a, b, c]);
    let mut sim = Simulation::new(5);
    let net = Network::with_topology(sim.handle(), quiet(), t, 13);
    let on_a = net.attach_to(a);
    let on_b = net.attach_to(b);
    let _on_c = net.attach_to(c);
    let port = Port::from_name("learn");
    let rx_a = on_a.bind(port);
    let rx_b = on_b.bind(port);
    let a_addr = on_a.addr();
    let b_addr = on_b.addr();

    // Broadcast from a seeds b's route back to a.
    let net2 = net.clone();
    sim.spawn("exchange", move |ctx| {
        on_a.send(Dest::Broadcast, port, vec![1]);
        ctx.sleep(Duration::from_millis(10));
        let flood_start = net2.stats().packets_forwarded;
        // Reply b → a: b learned a's route from the broadcast, so this
        // is forwarded onto segment a only (1 forward, not 2).
        on_b.send(a_addr, port, vec![3]);
        ctx.sleep(Duration::from_millis(10));
        let fwd_reply = net2.stats().packets_forwarded - flood_start;
        assert_eq!(fwd_reply, 1, "learned route must not flood");
        // a → b now also has a direct route (learned from the reply).
        on_a.send(b_addr, port, vec![4]);
    });
    sim.run_for(Duration::from_millis(100));
    // b got the broadcast and the directed a → b send.
    assert_eq!(rx_b.len(), 2);
    // a got its own broadcast copy and b's reply.
    assert_eq!(rx_a.len(), 2);
    let _ = b_addr;
}

#[test]
fn router_crash_stops_forwarding_and_recovery_relearns() {
    let mut sim = Simulation::new(7);
    let net = Network::with_topology(sim.handle(), quiet(), Topology::two_segments(), 17);
    let a = net.attach_to(SegmentId(0));
    let b = net.attach_to(SegmentId(1));
    let port = Port::from_name("rdown");
    let rx = b.bind(port);
    let router = net.router_addrs()[0];
    let dst = b.addr();
    let net2 = net.clone();
    sim.spawn("drive", move |ctx| {
        // Router up: delivery works.
        a.send(dst, port, vec![1]);
        ctx.sleep(Duration::from_millis(10));
        // Router down: cross-segment traffic dies silently.
        net2.set_down(router);
        a.send(dst, port, vec![2]);
        ctx.sleep(Duration::from_millis(10));
        // Router back: traffic flows again (tables were wiped; the
        // flooding fallback still finds the destination).
        net2.set_up(router);
        a.send(dst, port, vec![3]);
    });
    sim.run_for(Duration::from_millis(100));
    let mut got = Vec::new();
    while let Some(p) = rx.try_recv() {
        got.push(p.payload.as_slice()[0]);
    }
    assert_eq!(
        got,
        vec![1, 3],
        "only the packets sent while the router was up arrive"
    );
}

/// Y topology (one hub router joining three segments) with two hosts
/// per segment.
fn y_net(sim: &Simulation) -> (Network, Vec<amoeba_flip::NodeStack>) {
    let mut t = Topology::new();
    let a = t.add_segment("a");
    let b = t.add_segment("b");
    let c = t.add_segment("c");
    t.add_router("hub", &[a, b, c]);
    let net = Network::with_topology(sim.handle(), quiet(), t, 29);
    let stacks: Vec<_> = [a, a, b, b, c, c]
        .iter()
        .map(|s| net.attach_to(*s))
        .collect();
    (net, stacks)
}

#[test]
fn multicast_never_enters_a_member_free_segment() {
    // Members on segments a and b only; segment c must stay silent
    // under pruning, and the pruned direction must be counted. The
    // same send with pruning off floods c — the A/B the bench reports.
    for pruning in [true, false] {
        let mut sim = Simulation::new(31);
        let (net, stacks) = y_net(&sim);
        let g = GroupAddr(5);
        let port = Port::from_name("mc");
        stacks[0].join_group(g);
        stacks[2].join_group(g);
        let rx_b = stacks[2].bind(port);
        let rx_c = stacks[4].bind(port); // not a member
        net.set_multicast_pruning(pruning);
        let before = net.stats();
        let src = stacks[0].clone();
        sim.spawn("send", move |_| src.send(g, port, vec![1]));
        sim.run_for(Duration::from_millis(50));
        let d = net.stats().since(&before);
        assert_eq!(rx_b.len(), 1, "the remote member always receives");
        assert!(rx_c.is_empty(), "a non-member never receives");
        let frames_c = d.segments[2].frames;
        if pruning {
            assert_eq!(
                frames_c, 0,
                "pruning: no frame may enter the member-free segment"
            );
            assert!(d.mcast_pruned > 0, "the pruned direction is counted");
            assert_eq!(d.packets_forwarded, 1, "one forward toward the member");
        } else {
            assert!(
                frames_c > 0,
                "flooding: the member-free segment carries the flood"
            );
            assert_eq!(d.mcast_pruned, 0);
            assert_eq!(d.packets_forwarded, 2, "flooded onto both far segments");
        }
    }
}

#[test]
fn membership_change_reopens_and_recloses_forwarding() {
    let mut sim = Simulation::new(37);
    let (net, stacks) = y_net(&sim);
    let g = GroupAddr(9);
    let port = Port::from_name("mj");
    stacks[0].join_group(g);
    let rx_c = stacks[4].bind(port);
    let src = stacks[0].clone();
    let joiner = stacks[4].clone();
    let net2 = net.clone();
    sim.spawn("drive", move |ctx| {
        // No member on c yet: the multicast is pruned at the hub.
        src.send(g, port, vec![1]);
        ctx.sleep(Duration::from_millis(10));
        // A host on c joins: the membership change flushes the group
        // routing state and the next multicast reaches it.
        joiner.join_group(g);
        src.send(g, port, vec![2]);
        ctx.sleep(Duration::from_millis(10));
        // It leaves again: forwarding toward c closes.
        joiner.leave_group(g);
        src.send(g, port, vec![3]);
        ctx.sleep(Duration::from_millis(10));
        let _ = net2.stats();
    });
    sim.run_for(Duration::from_millis(100));
    let mut got = Vec::new();
    while let Some(p) = rx_c.try_recv() {
        got.push(p.payload.as_slice()[0]);
    }
    assert_eq!(
        got,
        vec![2],
        "only the multicast sent while c had a member arrives"
    );
}

#[test]
fn stale_routes_age_out_and_flooding_reteaches() {
    // Learn a route, let it idle past the horizon: the next send must
    // drop the stale entry (counted) and fall back to flooding — which
    // costs a forward onto every far segment but re-teaches the path.
    let mut params = quiet();
    params.route_max_age = Duration::from_secs(2);
    let mut t = Topology::new();
    let a = t.add_segment("a");
    let b = t.add_segment("b");
    let c = t.add_segment("c");
    t.add_router("hub", &[a, b, c]);
    let mut sim = Simulation::new(41);
    let net = Network::with_topology(sim.handle(), params, t, 43);
    let on_a = net.attach_to(a);
    let on_b = net.attach_to(b);
    let _on_c = net.attach_to(c);
    let port = Port::from_name("age");
    let _rx_a = on_a.bind(port);
    let rx_b = on_b.bind(port);
    let a_addr = on_a.addr();
    let b_addr = on_b.addr();
    let a2 = on_a.clone();
    let net2 = net.clone();
    sim.spawn("drive", move |ctx| {
        // Broadcast from a teaches b (and the hub) the route back to a.
        on_a.send(Dest::Broadcast, port, vec![1]);
        ctx.sleep(Duration::from_millis(10));
        let fresh_start = net2.stats();
        on_b.send(a_addr, port, vec![2]);
        ctx.sleep(Duration::from_millis(10));
        let fresh = net2.stats().since(&fresh_start);
        assert_eq!(fresh.packets_forwarded, 1, "fresh route: directed, 1 hop");
        assert_eq!(fresh.routes_aged_out, 0);
        // Idle past the horizon: every entry on the path goes stale.
        ctx.sleep(Duration::from_secs(3));
        let stale_start = net2.stats();
        on_b.send(a_addr, port, vec![3]);
        ctx.sleep(Duration::from_millis(10));
        let stale = net2.stats().since(&stale_start);
        assert!(
            stale.routes_aged_out > 0,
            "the stale route must be dropped by age, not by send failure"
        );
        assert_eq!(
            stale.packets_forwarded, 2,
            "aged-out route falls back to flooding (both far segments)"
        );
        // Return traffic re-teaches the backward-learned routes (a's
        // own route to b is stale too, so the reply also floods)...
        a2.send(b_addr, port, vec![4]);
        ctx.sleep(Duration::from_millis(10));
        // ...after which the locate-then-route pattern is restored.
        let relearn_start = net2.stats();
        on_b.send(a_addr, port, vec![5]);
        ctx.sleep(Duration::from_millis(10));
        let relearn = net2.stats().since(&relearn_start);
        assert_eq!(relearn.packets_forwarded, 1, "reply re-taught the route");
    });
    sim.run_for(Duration::from_secs(10));
    // b saw a's broadcast and the reply.
    let mut got = 0;
    while rx_b.try_recv().is_some() {
        got += 1;
    }
    assert_eq!(got, 2, "b got the broadcast copy and the reply");
}

#[test]
fn flat_network_keeps_single_segment_semantics() {
    // Network::new is the degenerate topology: no routers, ttl 1, one
    // segment stat mirroring the total.
    let mut sim = Simulation::new(8);
    let net = Network::new(sim.handle(), quiet(), 3);
    assert_eq!(net.max_hops(), 1);
    assert!(net.router_addrs().is_empty());
    let a = net.attach();
    let b = net.attach();
    let port = Port::from_name("flat");
    let rx = b.bind(port);
    let dst = b.addr();
    sim.spawn("send", move |_| a.send(dst, port, vec![0u8; 64]));
    sim.run_for(Duration::from_millis(10));
    assert_eq!(rx.len(), 1);
    let st = net.stats();
    assert_eq!(st.packets_forwarded, 0);
    assert_eq!(st.segments.len(), 1);
    assert_eq!(st.segments[0].wire_busy_nanos, st.wire_busy_nanos);
    assert_eq!(st.segments[0].name, "lan");
}

#[test]
fn short_path_copy_is_not_shadowed_by_a_longer_paths_duplicate() {
    // Regression: forwarding recursion is depth-first in router-address
    // order, so a copy that wandered S0→S1→S2 (ttl spent down to 2) can
    // reach router rC and rD *before* the direct S0→S2 copy (ttl 4) is
    // processed. Naive "seen id ⇒ drop" suppression would then discard
    // the direct copy at rC and the broadcast would never reach S4,
    // despite S4 being 3 hops away and the default TTL being 4. The
    // seen cache must re-forward a copy with more remaining TTL.
    let mut t = Topology::new();
    let segs: Vec<SegmentId> = (0..5).map(|i| t.add_segment(&format!("s{i}"))).collect();
    t.add_router("rA", &[segs[0], segs[1]]);
    t.add_router("rB", &[segs[1], segs[2]]);
    t.add_router("rC", &[segs[0], segs[2]]);
    t.add_router("rD", &[segs[2], segs[3]]);
    t.add_router("rE", &[segs[3], segs[4]]);
    assert_eq!(t.diameter(), 3);
    let mut sim = Simulation::new(17);
    let net = Network::with_topology(sim.handle(), quiet(), t, 23);
    let port = Port::from_name("shadow");
    let stacks: Vec<_> = segs.iter().map(|s| net.attach_to(*s)).collect();
    let rxs: Vec<_> = stacks.iter().map(|s| s.bind(port)).collect();
    let src = stacks[0].clone();
    sim.spawn("send", move |_| src.send(Dest::Broadcast, port, vec![4]));
    sim.run_for(Duration::from_millis(200));
    for (i, rx) in rxs.iter().enumerate() {
        assert_eq!(
            rx.len(),
            1,
            "host on s{i} must receive exactly one copy (default ttl covers the diameter)"
        );
    }
}

//! Cheaply-cloneable shared byte buffers: the currency of the message
//! pipeline.
//!
//! A [`Payload`] is an immutable byte string backed by a reference-counted
//! buffer plus an offset/length window. Cloning one, or taking a
//! [`slice`](Payload::slice) of one, copies **no bytes** — only the `Arc`
//! is touched. This is what lets a directory update be encoded once and
//! travel flip → rpc → group → core (through the sequencer's history
//! buffer and every member's delivery queue) without another copy:
//!
//! * the sender encodes into a [`WireWriter`](crate::wire::WireWriter)
//!   sized up front, then [`finish_payload`](crate::wire::WireWriter::finish_payload)
//!   wraps the buffer — one allocation, zero copies;
//! * [`Packet`](crate::Packet) carries the `Payload`; fan-out to N
//!   multicast receivers clones the packet N times at Arc cost;
//! * decoders built with [`WireReader::of`](crate::wire::WireReader::of)
//!   return embedded byte strings as sub-`Payload`s sharing the packet's
//!   buffer ([`WireReader::payload`](crate::wire::WireReader::payload));
//! * upper layers store and re-deliver those sub-payloads (history
//!   buffers, BB stores, app queues) by cheap clone.
//!
//! ## Invariants
//!
//! * A `Payload` is immutable: there is no `&mut [u8]` access. Mutation
//!   means building a new buffer.
//! * `slice()` windows never escape the parent's bounds (checked, panics
//!   like slice indexing).
//! * Equality/ordering/hashing are by byte content, not by buffer
//!   identity, so `Payload` is a drop-in for `Vec<u8>` in message enums.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// An immutable, cheaply-cloneable byte string (an `Arc`-backed buffer
/// with a zero-copy slicing window). See the [module docs](self).
#[derive(Clone, Default)]
pub struct Payload {
    /// Backing buffer; `None` encodes the empty payload without an
    /// allocation.
    buf: Option<Arc<Vec<u8>>>,
    off: usize,
    len: usize,
}

impl Payload {
    /// The empty payload (no allocation).
    pub const fn empty() -> Payload {
        Payload {
            buf: None,
            off: 0,
            len: 0,
        }
    }

    /// Wraps an owned buffer without copying it.
    pub fn new(bytes: Vec<u8>) -> Payload {
        let len = bytes.len();
        if len == 0 {
            return Payload::empty();
        }
        Payload {
            buf: Some(Arc::new(bytes)),
            off: 0,
            len,
        }
    }

    /// Copies a borrowed slice into a fresh payload (the one deliberate
    /// copy constructor; everything else shares).
    pub fn copy_from_slice(bytes: &[u8]) -> Payload {
        Payload::new(Vec::from(bytes))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        match &self.buf {
            Some(b) => &b[self.off..self.off + self.len],
            None => &[],
        }
    }

    /// A zero-copy sub-payload sharing this payload's buffer.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds, exactly like slice indexing.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Payload {
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len,
        };
        assert!(
            start <= end && end <= self.len,
            "payload slice {start}..{end} out of bounds (len {})",
            self.len
        );
        if start == end {
            return Payload::empty();
        }
        Payload {
            buf: self.buf.clone(),
            off: self.off + start,
            len: end - start,
        }
    }
}

impl Deref for Payload {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Payload {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Payload {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Payload {
    fn from(v: Vec<u8>) -> Payload {
        Payload::new(v)
    }
}

impl From<&[u8]> for Payload {
    fn from(v: &[u8]) -> Payload {
        Payload::copy_from_slice(v)
    }
}

impl<const N: usize> From<&[u8; N]> for Payload {
    fn from(v: &[u8; N]) -> Payload {
        Payload::copy_from_slice(v)
    }
}

impl PartialEq for Payload {
    fn eq(&self, other: &Payload) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Payload {}

impl PartialEq<[u8]> for Payload {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Payload {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<&[u8]> for Payload {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Payload {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

impl<const N: usize> PartialEq<&[u8; N]> for Payload {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Payload> for Vec<u8> {
    fn eq(&self, other: &Payload) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialOrd for Payload {
    fn partial_cmp(&self, other: &Payload) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Payload {
    fn cmp(&self, other: &Payload) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Payload {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.as_slice();
        if s.len() <= 16 {
            write!(f, "Payload({s:02x?})")
        } else {
            write!(f, "Payload(len={}, {:02x?}…)", s.len(), &s[..16])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_has_no_allocation() {
        let p = Payload::empty();
        assert!(p.buf.is_none());
        assert_eq!(p.len(), 0);
        assert!(p.is_empty());
        assert_eq!(p.as_slice(), &[] as &[u8]);
    }

    #[test]
    fn new_wraps_without_copy() {
        let v = vec![1u8, 2, 3];
        let ptr = v.as_ptr();
        let p = Payload::new(v);
        assert_eq!(p.as_slice().as_ptr(), ptr, "buffer must not be copied");
    }

    #[test]
    fn clone_shares_buffer() {
        let p = Payload::from(vec![1u8, 2, 3, 4]);
        let q = p.clone();
        assert_eq!(p.as_slice().as_ptr(), q.as_slice().as_ptr());
        assert_eq!(p, q);
    }

    #[test]
    fn slice_is_zero_copy_and_windows_compose() {
        let p = Payload::from((0u8..32).collect::<Vec<_>>());
        let s = p.slice(4..20);
        assert_eq!(s.len(), 16);
        assert_eq!(s.as_slice().as_ptr(), unsafe {
            p.as_slice().as_ptr().add(4)
        });
        let t = s.slice(2..6);
        assert_eq!(t.as_slice(), &[6, 7, 8, 9]);
        assert_eq!(t.as_slice().as_ptr(), unsafe {
            p.as_slice().as_ptr().add(6)
        });
    }

    #[test]
    fn slice_bounds_forms() {
        let p = Payload::from(vec![1u8, 2, 3, 4]);
        assert_eq!(p.slice(..).as_slice(), &[1, 2, 3, 4]);
        assert_eq!(p.slice(1..).as_slice(), &[2, 3, 4]);
        assert_eq!(p.slice(..2).as_slice(), &[1, 2]);
        assert_eq!(p.slice(1..=2).as_slice(), &[2, 3]);
        assert!(p.slice(2..2).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_past_end_panics() {
        let p = Payload::from(vec![1u8, 2]);
        let _ = p.slice(1..5);
    }

    #[test]
    fn equality_is_by_content() {
        let a = Payload::from(vec![9u8, 8]);
        let b = Payload::copy_from_slice(&[9, 8]);
        assert_eq!(a, b);
        assert_eq!(a, vec![9u8, 8]);
        assert_ne!(a, Payload::from(vec![9u8]));
    }

    #[test]
    fn deref_gives_slice_methods() {
        let p = Payload::from(vec![1u8, 2, 3]);
        assert_eq!(p.iter().sum::<u8>(), 6);
        assert_eq!(&p[1..], &[2, 3]);
    }
}

//! The unit of network transmission.

use crate::addr::{Dest, HostAddr};
use crate::bytes::Payload;
use crate::port::Port;

/// A FLIP packet: source, destination, service port, opaque payload.
///
/// Payloads are produced by the upper layers' explicit wire codecs, so
/// `wire_size` is an honest measure for the timing model. The payload is
/// a shared [`Payload`], so cloning a packet (multicast fan-out clones it
/// once per receiver) copies no bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// The sending host.
    pub src: HostAddr,
    /// Unicast, multicast or broadcast destination.
    pub dst: Dest,
    /// The service port this packet is addressed to.
    pub port: Port,
    /// Upper-layer payload bytes (shared, zero-copy).
    pub payload: Payload,
}

impl Packet {
    /// Creates a packet.
    pub fn new(
        src: HostAddr,
        dst: impl Into<Dest>,
        port: Port,
        payload: impl Into<Payload>,
    ) -> Self {
        Packet {
            src,
            dst: dst.into(),
            port,
            payload: payload.into(),
        }
    }

    /// Payload length in bytes (headers are charged by the timing model).
    pub fn payload_len(&self) -> usize {
        self.payload.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::GroupAddr;

    #[test]
    fn constructor_accepts_any_dest() {
        let p = Packet::new(HostAddr(1), HostAddr(2), Port::from_raw(5), vec![1, 2]);
        assert_eq!(p.dst, Dest::Unicast(HostAddr(2)));
        assert_eq!(p.payload_len(), 2);

        let q = Packet::new(HostAddr(1), GroupAddr(9), Port::from_raw(5), vec![]);
        assert_eq!(q.dst, Dest::Multicast(GroupAddr(9)));
    }
}

//! The unit of network transmission.

use amoeba_telemetry::TraceCtx;

use crate::addr::{Dest, HostAddr};
use crate::bytes::Payload;
use crate::port::Port;

/// A FLIP packet: source, destination, service port, opaque payload, and
/// the internetwork routing header (hop count, TTL, packet id).
///
/// Payloads are produced by the upper layers' explicit wire codecs, so
/// `wire_size` is an honest measure for the timing model. The payload is
/// a shared [`Payload`], so cloning a packet (multicast fan-out clones it
/// once per receiver) copies no bytes.
///
/// The routing fields are stamped by the network layer: `packet_id` is
/// assigned at origin transmission and, with `src`, uniquely names the
/// packet for duplicate suppression at routers and receivers; `ttl`
/// decrements per router traversal (a packet with `ttl` ≤ 1 is never
/// forwarded); `hops` counts traversals so far; `relay` is the node that
/// placed this frame on the current segment (the origin, or the last
/// forwarding router). Senders normally leave `ttl` at 0 ("use the
/// topology default") — [`NodeStack::send_with_ttl`](crate::NodeStack)
/// sets it explicitly for hop-limited sends such as the expanding-ring
/// locate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// The sending host.
    pub src: HostAddr,
    /// Unicast, multicast or broadcast destination.
    pub dst: Dest,
    /// The service port this packet is addressed to.
    pub port: Port,
    /// Upper-layer payload bytes (shared, zero-copy).
    pub payload: Payload,
    /// Remaining router traversals + 1; 0 on construction means "stamp
    /// the topology default at transmission".
    pub ttl: u8,
    /// Router traversals so far (0 on the origin segment).
    pub hops: u8,
    /// Origin-unique id, assigned by the network at transmission;
    /// `(src, packet_id)` keys duplicate suppression.
    pub packet_id: u64,
    /// The node that placed this frame on the current segment.
    pub relay: HostAddr,
    /// Link-level next hop for routed unicasts: when set, only this
    /// router picks the frame up from the segment. Set by the routing
    /// layer, never by senders.
    pub link_dst: Option<HostAddr>,
    /// Accumulated route cost (sum of traversed segment weights);
    /// receivers record it in their routing tables.
    pub path_weight: u32,
    /// Out-of-band causal-trace tags riding on this packet: `(key, ctx)`
    /// pairs whose key meaning is protocol-defined (msgid for group
    /// send-requests, seqno for accepts, 0 for RPC). **Not** part of the
    /// wire image: never encoded into the payload, never charged by the
    /// timing model, empty unless telemetry is enabled — so tracing
    /// cannot perturb the simulation.
    pub trace: Vec<(u64, TraceCtx)>,
}

impl Packet {
    /// Creates a packet with routing fields unset (the network stamps
    /// them at transmission).
    pub fn new(
        src: HostAddr,
        dst: impl Into<Dest>,
        port: Port,
        payload: impl Into<Payload>,
    ) -> Self {
        Packet {
            src,
            dst: dst.into(),
            port,
            payload: payload.into(),
            ttl: 0,
            hops: 0,
            packet_id: 0,
            relay: src,
            link_dst: None,
            path_weight: 0,
            trace: Vec::new(),
        }
    }

    /// Attaches causal-trace tags (out-of-band; see the `trace` field).
    pub fn with_trace(mut self, tags: Vec<(u64, TraceCtx)>) -> Self {
        self.trace = tags;
        self
    }

    /// Sets an explicit TTL (1 = local segment only, 2 = one router
    /// hop, ...). A TTL of 0 means "use the topology default".
    pub fn with_ttl(mut self, ttl: u8) -> Self {
        self.ttl = ttl;
        self
    }

    /// Payload length in bytes (headers are charged by the timing model).
    pub fn payload_len(&self) -> usize {
        self.payload.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::GroupAddr;

    #[test]
    fn constructor_accepts_any_dest() {
        let p = Packet::new(HostAddr(1), HostAddr(2), Port::from_raw(5), vec![1, 2]);
        assert_eq!(p.dst, Dest::Unicast(HostAddr(2)));
        assert_eq!(p.payload_len(), 2);
        assert_eq!(p.ttl, 0, "TTL unset until the network stamps it");
        assert_eq!(p.relay, HostAddr(1));

        let q = Packet::new(HostAddr(1), GroupAddr(9), Port::from_raw(5), vec![]);
        assert_eq!(q.dst, Dest::Multicast(GroupAddr(9)));
    }

    #[test]
    fn with_ttl_sets_hop_limit() {
        let p = Packet::new(HostAddr(1), HostAddr(2), Port::from_raw(5), vec![]).with_ttl(3);
        assert_eq!(p.ttl, 3);
    }
}

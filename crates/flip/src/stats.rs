//! Network traffic counters, used by the §3.1 cost-analysis experiment
//! and the internetwork benches.

/// Per-segment counters of a multi-segment network.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SegmentStats {
    /// The segment's name (from the [`Topology`](crate::Topology)).
    pub name: String,
    /// Nanoseconds this segment's wire spent transmitting (utilization =
    /// `wire_busy_nanos / elapsed`).
    pub wire_busy_nanos: u64,
    /// Frames placed on this segment's wire (origin sends and forwards).
    pub frames: u64,
}

/// Cumulative counters for everything the network medium has done.
///
/// Take two [`snapshots`](crate::Network::stats) and subtract to count the
/// packets attributable to an operation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Packets handed to the medium by hosts (one multicast counts once;
    /// router forwards are counted in [`packets_forwarded`](Self::packets_forwarded)).
    pub packets_sent: u64,
    /// Unicast sends.
    pub unicast_sent: u64,
    /// Multicast sends.
    pub multicast_sent: u64,
    /// Broadcast sends.
    pub broadcast_sent: u64,
    /// Deliveries made to endpoints (a multicast to 3 hosts counts 3).
    pub deliveries: u64,
    /// Payload + header bytes placed on the wire by hosts.
    pub bytes_sent: u64,
    /// Deliveries suppressed by random loss.
    pub dropped_loss: u64,
    /// Deliveries suppressed because src and dst were in different
    /// partitions.
    pub dropped_partition: u64,
    /// Deliveries suppressed because the destination host was down.
    pub dropped_down: u64,
    /// Deliveries dropped because nothing was bound to the port.
    pub dropped_no_listener: u64,
    /// Extra deliveries injected by random duplication.
    pub duplicated: u64,
    /// Nanoseconds spent transmitting across all wires (the sum of the
    /// per-segment counters).
    pub wire_busy_nanos: u64,
    /// Frames retransmitted onto another segment by a router
    /// (store-and-forward; one per traversed segment).
    pub packets_forwarded: u64,
    /// Forwards a router suppressed because the packet's TTL was spent.
    pub dropped_ttl: u64,
    /// Copies suppressed by duplicate detection: a router refusing to
    /// forward a packet id twice, or a receiver refusing a second copy
    /// that arrived over a different path.
    pub dup_suppressed: u64,
    /// Multicast forwards a router skipped because its group routing
    /// state showed no member reachable through that segment (FLIP-style
    /// multicast pruning; each skipped out-segment counts once).
    pub mcast_pruned: u64,
    /// Backward-learned routes dropped because they exceeded
    /// [`NetParams::route_max_age`](crate::NetParams::route_max_age)
    /// without being re-confirmed by traffic.
    pub routes_aged_out: u64,
    /// Per-segment wire counters, indexed by
    /// [`SegmentId`](crate::SegmentId) order.
    pub segments: Vec<SegmentStats>,
}

impl NetStats {
    /// Counter-wise difference `self - earlier` (saturating).
    pub fn since(&self, earlier: &NetStats) -> NetStats {
        NetStats {
            packets_sent: self.packets_sent.saturating_sub(earlier.packets_sent),
            unicast_sent: self.unicast_sent.saturating_sub(earlier.unicast_sent),
            multicast_sent: self.multicast_sent.saturating_sub(earlier.multicast_sent),
            broadcast_sent: self.broadcast_sent.saturating_sub(earlier.broadcast_sent),
            deliveries: self.deliveries.saturating_sub(earlier.deliveries),
            bytes_sent: self.bytes_sent.saturating_sub(earlier.bytes_sent),
            dropped_loss: self.dropped_loss.saturating_sub(earlier.dropped_loss),
            dropped_partition: self
                .dropped_partition
                .saturating_sub(earlier.dropped_partition),
            dropped_down: self.dropped_down.saturating_sub(earlier.dropped_down),
            dropped_no_listener: self
                .dropped_no_listener
                .saturating_sub(earlier.dropped_no_listener),
            duplicated: self.duplicated.saturating_sub(earlier.duplicated),
            wire_busy_nanos: self.wire_busy_nanos.saturating_sub(earlier.wire_busy_nanos),
            packets_forwarded: self
                .packets_forwarded
                .saturating_sub(earlier.packets_forwarded),
            dropped_ttl: self.dropped_ttl.saturating_sub(earlier.dropped_ttl),
            dup_suppressed: self.dup_suppressed.saturating_sub(earlier.dup_suppressed),
            mcast_pruned: self.mcast_pruned.saturating_sub(earlier.mcast_pruned),
            routes_aged_out: self.routes_aged_out.saturating_sub(earlier.routes_aged_out),
            segments: self
                .segments
                .iter()
                .enumerate()
                .map(|(i, s)| {
                    let e = earlier.segments.get(i);
                    SegmentStats {
                        name: s.name.clone(),
                        wire_busy_nanos: s
                            .wire_busy_nanos
                            .saturating_sub(e.map(|e| e.wire_busy_nanos).unwrap_or(0)),
                        frames: s.frames.saturating_sub(e.map(|e| e.frames).unwrap_or(0)),
                    }
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn since_subtracts() {
        let a = NetStats {
            packets_sent: 10,
            deliveries: 20,
            packets_forwarded: 7,
            segments: vec![SegmentStats {
                name: "lan".into(),
                wire_busy_nanos: 100,
                frames: 5,
            }],
            ..Default::default()
        };
        let b = NetStats {
            packets_sent: 4,
            deliveries: 25,
            packets_forwarded: 3,
            segments: vec![SegmentStats {
                name: "lan".into(),
                wire_busy_nanos: 40,
                frames: 2,
            }],
            ..Default::default()
        };
        let d = a.since(&b);
        assert_eq!(d.packets_sent, 6);
        assert_eq!(d.deliveries, 0); // saturating
        assert_eq!(d.packets_forwarded, 4);
        assert_eq!(d.segments[0].wire_busy_nanos, 60);
        assert_eq!(d.segments[0].frames, 3);
    }
}

//! Network traffic counters, used by the §3.1 cost-analysis experiment.

/// Cumulative counters for everything the network medium has done.
///
/// Take two [`snapshots`](crate::Network::stats) and subtract to count the
/// packets attributable to an operation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Packets handed to the medium (one multicast counts once).
    pub packets_sent: u64,
    /// Unicast sends.
    pub unicast_sent: u64,
    /// Multicast sends.
    pub multicast_sent: u64,
    /// Broadcast sends.
    pub broadcast_sent: u64,
    /// Deliveries made to endpoints (a multicast to 3 hosts counts 3).
    pub deliveries: u64,
    /// Payload + header bytes placed on the wire.
    pub bytes_sent: u64,
    /// Deliveries suppressed by random loss.
    pub dropped_loss: u64,
    /// Deliveries suppressed because src and dst were in different
    /// partitions.
    pub dropped_partition: u64,
    /// Deliveries suppressed because the destination host was down.
    pub dropped_down: u64,
    /// Deliveries dropped because nothing was bound to the port.
    pub dropped_no_listener: u64,
    /// Extra deliveries injected by random duplication.
    pub duplicated: u64,
    /// Nanoseconds the shared wire spent transmitting (utilization =
    /// `wire_busy_nanos / elapsed`).
    pub wire_busy_nanos: u64,
}

impl NetStats {
    /// Counter-wise difference `self - earlier` (saturating).
    pub fn since(&self, earlier: &NetStats) -> NetStats {
        NetStats {
            packets_sent: self.packets_sent.saturating_sub(earlier.packets_sent),
            unicast_sent: self.unicast_sent.saturating_sub(earlier.unicast_sent),
            multicast_sent: self.multicast_sent.saturating_sub(earlier.multicast_sent),
            broadcast_sent: self.broadcast_sent.saturating_sub(earlier.broadcast_sent),
            deliveries: self.deliveries.saturating_sub(earlier.deliveries),
            bytes_sent: self.bytes_sent.saturating_sub(earlier.bytes_sent),
            dropped_loss: self.dropped_loss.saturating_sub(earlier.dropped_loss),
            dropped_partition: self
                .dropped_partition
                .saturating_sub(earlier.dropped_partition),
            dropped_down: self.dropped_down.saturating_sub(earlier.dropped_down),
            dropped_no_listener: self
                .dropped_no_listener
                .saturating_sub(earlier.dropped_no_listener),
            duplicated: self.duplicated.saturating_sub(earlier.duplicated),
            wire_busy_nanos: self.wire_busy_nanos.saturating_sub(earlier.wire_busy_nanos),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn since_subtracts() {
        let a = NetStats {
            packets_sent: 10,
            deliveries: 20,
            ..Default::default()
        };
        let b = NetStats {
            packets_sent: 4,
            deliveries: 25,
            ..Default::default()
        };
        let d = a.since(&b);
        assert_eq!(d.packets_sent, 6);
        assert_eq!(d.deliveries, 0); // saturating
    }
}

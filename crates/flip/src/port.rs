//! Amoeba service ports.
//!
//! In Amoeba a *port* is a 48-bit value naming a service, not a machine;
//! clients locate servers listening on a port by broadcasting. We keep the
//! 48-bit width for fidelity and provide deterministic derivation of ports
//! from names for tests and examples.

use std::fmt;

/// A 48-bit Amoeba service port.
///
/// # Examples
///
/// ```
/// use amoeba_flip::Port;
///
/// let p = Port::from_name("directory");
/// assert_eq!(p, Port::from_name("directory"));
/// assert_ne!(p, Port::from_name("bullet"));
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Port(u64);

impl Port {
    /// The all-zero null port, never used by a real service.
    pub const NULL: Port = Port(0);

    /// Creates a port from a raw value (masked to 48 bits).
    pub const fn from_raw(raw: u64) -> Port {
        Port(raw & 0xFFFF_FFFF_FFFF)
    }

    /// The raw 48-bit value.
    pub const fn as_raw(self) -> u64 {
        self.0
    }

    /// Deterministically derives a port from a service name (FNV-1a,
    /// folded to 48 bits).
    pub fn from_name(name: &str) -> Port {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        // Fold the high bits in so the 48-bit truncation keeps entropy,
        // and avoid colliding with NULL.
        let folded = (h ^ (h >> 48)) & 0xFFFF_FFFF_FFFF;
        Port(if folded == 0 { 1 } else { folded })
    }
}

impl fmt::Debug for Port {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "port:{:012x}", self.0)
    }
}

impl fmt::Display for Port {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "port:{:012x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_raw_masks_to_48_bits() {
        let p = Port::from_raw(u64::MAX);
        assert_eq!(p.as_raw(), 0xFFFF_FFFF_FFFF);
    }

    #[test]
    fn from_name_is_deterministic_and_collision_resistant() {
        let names = ["dir", "bullet", "disk1", "disk2", "a", "b", ""];
        let ports: Vec<Port> = names.iter().map(|n| Port::from_name(n)).collect();
        for (i, a) in ports.iter().enumerate() {
            for (j, b) in ports.iter().enumerate() {
                if i != j {
                    assert_ne!(a, b, "collision between {:?} and {:?}", names[i], names[j]);
                }
            }
        }
    }

    #[test]
    fn never_null() {
        assert_ne!(Port::from_name(""), Port::NULL);
    }

    #[test]
    fn display_is_hex() {
        let p = Port::from_raw(0xabc);
        assert_eq!(p.to_string(), "port:000000000abc");
    }
}

//! Explicit little-endian wire encoding used by every protocol layer.
//!
//! Hand-rolled rather than serde-based so the on-the-wire format is visible
//! in the code (and so payload *sizes* — which drive the network timing
//! model — are honest).
//!
//! Encoders that know their size use [`WireWriter::with_capacity`] and
//! finish with [`WireWriter::finish_payload`], producing the whole message
//! in a single allocation. Decoders over a [`Payload`] are built with
//! [`WireReader::of`] so embedded byte strings come back as zero-copy
//! sub-payloads ([`WireReader::payload`]); [`WireReader::bytes`] likewise
//! borrows from the buffer rather than copying.

use std::fmt;

use crate::bytes::Payload;

/// Error returned when decoding runs off the end of a buffer or finds an
/// invalid value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// What was being decoded.
    pub what: &'static str,
}

impl DecodeError {
    /// Creates an error describing the field that failed to decode.
    pub fn new(what: &'static str) -> Self {
        DecodeError { what }
    }
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed wire data while decoding {}", self.what)
    }
}

impl std::error::Error for DecodeError {}

/// Incrementally builds a wire buffer.
#[derive(Debug, Default, Clone)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a writer whose buffer holds `capacity` bytes up front, so
    /// an encoder with an exact (or conservative) size hint performs a
    /// single allocation for the whole message.
    pub fn with_capacity(capacity: usize) -> Self {
        WireWriter {
            buf: Vec::with_capacity(capacity),
        }
    }

    /// Appends a `u8`.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Appends a `u16`.
    pub fn u16(&mut self, v: u16) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a `u32`.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a `u64`.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a `bool` as one byte.
    pub fn boolean(&mut self, v: bool) -> &mut Self {
        self.u8(u8::from(v))
    }

    /// Appends a length-prefixed byte string (u32 length).
    pub fn bytes(&mut self, v: &[u8]) -> &mut Self {
        self.u32(u32::try_from(v.len()).expect("wire bytes too long"));
        self.buf.extend_from_slice(v);
        self
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn string(&mut self, v: &str) -> &mut Self {
        self.bytes(v.as_bytes())
    }

    /// The bytes written so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Finishes and returns the buffer.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Finishes into a shared [`Payload`] without copying the buffer.
    pub fn finish_payload(self) -> Payload {
        Payload::new(self.buf)
    }
}

/// Reads typed values back out of a wire buffer.
///
/// Built with [`new`](WireReader::new) over any borrowed slice, or with
/// [`of`](WireReader::of) over a [`Payload`] — the latter lets
/// [`payload`](WireReader::payload) return zero-copy sub-payloads of the
/// source buffer.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
    /// Set when reading out of a shared buffer; enables zero-copy
    /// [`payload`](WireReader::payload) slices.
    src: Option<&'a Payload>,
}

impl<'a> WireReader<'a> {
    /// Starts reading at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader {
            buf,
            pos: 0,
            src: None,
        }
    }

    /// Starts reading at the beginning of a shared buffer;
    /// [`payload`](WireReader::payload) reads will share it zero-copy.
    pub fn of(src: &'a Payload) -> Self {
        WireReader {
            buf: src.as_slice(),
            pos: 0,
            src: Some(src),
        }
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], DecodeError> {
        let end = self.pos.checked_add(n).ok_or(DecodeError { what })?;
        if end > self.buf.len() {
            return Err(DecodeError { what });
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Reads a `u8`.
    pub fn u8(&mut self, what: &'static str) -> Result<u8, DecodeError> {
        Ok(self.take(1, what)?[0])
    }

    /// Reads a `u16`.
    pub fn u16(&mut self, what: &'static str) -> Result<u16, DecodeError> {
        let s = self.take(2, what)?;
        Ok(u16::from_le_bytes([s[0], s[1]]))
    }

    /// Reads a `u32`.
    pub fn u32(&mut self, what: &'static str) -> Result<u32, DecodeError> {
        let s = self.take(4, what)?;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    /// Reads a `u64`.
    pub fn u64(&mut self, what: &'static str) -> Result<u64, DecodeError> {
        let s = self.take(8, what)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(s);
        Ok(u64::from_le_bytes(b))
    }

    /// Reads a `bool` (must be exactly 0 or 1).
    pub fn boolean(&mut self, what: &'static str) -> Result<bool, DecodeError> {
        match self.u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(DecodeError { what }),
        }
    }

    /// Reads a length-prefixed byte string, borrowing from the buffer
    /// (no copy).
    pub fn bytes(&mut self, what: &'static str) -> Result<&'a [u8], DecodeError> {
        let len = self.u32(what)? as usize;
        self.take(len, what)
    }

    /// Reads a length-prefixed byte string as a [`Payload`].
    ///
    /// When the reader was built with [`of`](WireReader::of) this is a
    /// zero-copy slice of the source buffer; over a plain borrowed slice
    /// it falls back to one copy.
    pub fn payload(&mut self, what: &'static str) -> Result<Payload, DecodeError> {
        let len = self.u32(what)? as usize;
        let start = self.pos;
        let raw = self.take(len, what)?;
        Ok(match self.src {
            Some(p) => p.slice(start..start + len),
            None => Payload::copy_from_slice(raw),
        })
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn string(&mut self, what: &'static str) -> Result<String, DecodeError> {
        let b = self.bytes(what)?;
        String::from_utf8(b.to_owned()).map_err(|_| DecodeError { what })
    }

    /// Whether the whole buffer has been consumed.
    pub fn is_at_end(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Fails unless the whole buffer was consumed (trailing-garbage check).
    pub fn expect_end(&self, what: &'static str) -> Result<(), DecodeError> {
        if self.is_at_end() {
            Ok(())
        } else {
            Err(DecodeError { what })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amoeba_testkit::{check, Gen};

    #[test]
    fn round_trip_scalars() {
        let mut w = WireWriter::new();
        w.u8(7).u16(300).u32(70_000).u64(1 << 40).boolean(true);
        let buf = w.finish();
        let mut r = WireReader::new(&buf);
        assert_eq!(r.u8("a").unwrap(), 7);
        assert_eq!(r.u16("b").unwrap(), 300);
        assert_eq!(r.u32("c").unwrap(), 70_000);
        assert_eq!(r.u64("d").unwrap(), 1 << 40);
        assert!(r.boolean("e").unwrap());
        assert!(r.is_at_end());
    }

    #[test]
    fn round_trip_strings_and_bytes() {
        let mut w = WireWriter::new();
        w.string("hello").bytes(&[1, 2, 3]).string("");
        let buf = w.finish();
        let mut r = WireReader::new(&buf);
        assert_eq!(r.string("s").unwrap(), "hello");
        assert_eq!(r.bytes("b").unwrap(), vec![1, 2, 3]);
        assert_eq!(r.string("e").unwrap(), "");
        r.expect_end("tail").unwrap();
    }

    #[test]
    fn truncated_buffer_errors() {
        let mut w = WireWriter::new();
        w.u64(5);
        let buf = w.finish();
        let mut r = WireReader::new(&buf[..4]);
        assert!(r.u64("x").is_err());
    }

    #[test]
    fn bad_bool_errors() {
        let buf = [2u8];
        let mut r = WireReader::new(&buf);
        assert!(r.boolean("flag").is_err());
    }

    #[test]
    fn expect_end_catches_trailing_garbage() {
        let buf = [0u8, 1];
        let mut r = WireReader::new(&buf);
        let _ = r.u8("x").unwrap();
        assert!(r.expect_end("tail").is_err());
    }

    #[test]
    fn length_prefix_beyond_buffer_errors() {
        let mut w = WireWriter::new();
        w.u32(1000); // claims 1000 bytes follow
        let buf = w.finish();
        let mut r = WireReader::new(&buf);
        assert!(r.bytes("b").is_err());
    }

    #[test]
    fn prop_round_trip() {
        check("wire round trip", 256, |g: &mut Gen| {
            let (a, b, c, d, flag) = (g.u8(), g.u16(), g.u32(), g.u64(), g.boolean());
            let s = g.utf8(64);
            let v = g.bytes(256);
            let mut w = WireWriter::new();
            w.u8(a)
                .u16(b)
                .u32(c)
                .u64(d)
                .boolean(flag)
                .string(&s)
                .bytes(&v);
            let buf = w.finish();
            let mut r = WireReader::new(&buf);
            assert_eq!(r.u8("a").unwrap(), a);
            assert_eq!(r.u16("b").unwrap(), b);
            assert_eq!(r.u32("c").unwrap(), c);
            assert_eq!(r.u64("d").unwrap(), d);
            assert_eq!(r.boolean("f").unwrap(), flag);
            assert_eq!(r.string("s").unwrap(), s);
            assert_eq!(r.bytes("v").unwrap(), v);
            assert!(r.is_at_end());
        });
    }

    #[test]
    fn payload_read_is_zero_copy_over_shared_buffer() {
        let mut w = WireWriter::with_capacity(4 + 3 + 4);
        w.bytes(&[7, 8, 9]).u32(5);
        let src = w.finish_payload();
        let mut r = WireReader::of(&src);
        let p = r.payload("p").unwrap();
        assert_eq!(p.as_slice(), &[7, 8, 9]);
        // Same backing buffer: the slice starts 4 bytes (length prefix)
        // into the source.
        assert_eq!(p.as_slice().as_ptr(), unsafe {
            src.as_slice().as_ptr().add(4)
        });
        assert_eq!(r.u32("tail").unwrap(), 5);
        assert!(r.is_at_end());
    }

    #[test]
    fn payload_read_over_borrowed_slice_copies_once() {
        let mut w = WireWriter::new();
        w.bytes(&[1, 2]);
        let buf = w.finish();
        let mut r = WireReader::new(&buf);
        assert_eq!(r.payload("p").unwrap().as_slice(), &[1, 2]);
    }

    #[test]
    fn truncated_payload_read_errors() {
        let mut w = WireWriter::new();
        w.u32(10); // claims 10 bytes follow; none do
        let src = w.finish_payload();
        let mut r = WireReader::of(&src);
        assert!(r.payload("p").is_err());
    }

    #[test]
    fn with_capacity_hint_is_single_allocation() {
        let data = vec![0u8; 100];
        let mut w = WireWriter::with_capacity(1 + 8 + 4 + data.len());
        w.u8(3).u64(42).bytes(&data);
        assert_eq!(w.len(), 1 + 8 + 4 + 100);
        let cap = {
            let before = w.as_slice().as_ptr();
            let p = w.finish_payload();
            assert_eq!(p.as_slice().as_ptr(), before, "finish must not reallocate");
            p
        };
        assert_eq!(cap.len(), 113);
    }

    #[test]
    fn prop_payload_round_trip() {
        check(
            "payload round trip via shared buffer",
            256,
            |g: &mut Gen| {
                let head = g.bytes(64);
                let tail = g.bytes(64);
                let mut w = WireWriter::with_capacity(8 + head.len() + tail.len());
                w.bytes(&head).bytes(&tail);
                let src = w.finish_payload();
                let mut r = WireReader::of(&src);
                let p1 = r.payload("head").unwrap();
                let p2 = r.payload("tail").unwrap();
                assert_eq!(p1.as_slice(), head.as_slice());
                assert_eq!(p2.as_slice(), tail.as_slice());
                r.expect_end("end").unwrap();
                // Slices of slices still compare by content.
                if !head.is_empty() {
                    let k = g.below(head.len()) + 1;
                    assert_eq!(p1.slice(..k).as_slice(), &head[..k]);
                }
            },
        );
    }

    #[test]
    fn prop_decoder_never_panics() {
        check("wire decoder never panics", 256, |g: &mut Gen| {
            let data = g.bytes(128);
            let mut r = WireReader::new(&data);
            let _ = r.u64("a");
            let _ = r.string("b");
            let _ = r.bytes("c");
            let _ = r.boolean("d");
        });
    }
}

//! Explicit little-endian wire encoding used by every protocol layer.
//!
//! Hand-rolled rather than serde-based so the on-the-wire format is visible
//! in the code (and so payload *sizes* — which drive the network timing
//! model — are honest).

use std::fmt;

/// Error returned when decoding runs off the end of a buffer or finds an
/// invalid value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// What was being decoded.
    pub what: &'static str,
}

impl DecodeError {
    /// Creates an error describing the field that failed to decode.
    pub fn new(what: &'static str) -> Self {
        DecodeError { what }
    }
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed wire data while decoding {}", self.what)
    }
}

impl std::error::Error for DecodeError {}

/// Incrementally builds a wire buffer.
#[derive(Debug, Default, Clone)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a `u8`.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Appends a `u16`.
    pub fn u16(&mut self, v: u16) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a `u32`.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a `u64`.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a `bool` as one byte.
    pub fn boolean(&mut self, v: bool) -> &mut Self {
        self.u8(u8::from(v))
    }

    /// Appends a length-prefixed byte string (u32 length).
    pub fn bytes(&mut self, v: &[u8]) -> &mut Self {
        self.u32(u32::try_from(v.len()).expect("wire bytes too long"));
        self.buf.extend_from_slice(v);
        self
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn string(&mut self, v: &str) -> &mut Self {
        self.bytes(v.as_bytes())
    }

    /// The bytes written so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Finishes and returns the buffer.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Reads typed values back out of a wire buffer.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Starts reading at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], DecodeError> {
        let end = self.pos.checked_add(n).ok_or(DecodeError { what })?;
        if end > self.buf.len() {
            return Err(DecodeError { what });
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Reads a `u8`.
    pub fn u8(&mut self, what: &'static str) -> Result<u8, DecodeError> {
        Ok(self.take(1, what)?[0])
    }

    /// Reads a `u16`.
    pub fn u16(&mut self, what: &'static str) -> Result<u16, DecodeError> {
        let s = self.take(2, what)?;
        Ok(u16::from_le_bytes([s[0], s[1]]))
    }

    /// Reads a `u32`.
    pub fn u32(&mut self, what: &'static str) -> Result<u32, DecodeError> {
        let s = self.take(4, what)?;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    /// Reads a `u64`.
    pub fn u64(&mut self, what: &'static str) -> Result<u64, DecodeError> {
        let s = self.take(8, what)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(s);
        Ok(u64::from_le_bytes(b))
    }

    /// Reads a `bool` (must be exactly 0 or 1).
    pub fn boolean(&mut self, what: &'static str) -> Result<bool, DecodeError> {
        match self.u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(DecodeError { what }),
        }
    }

    /// Reads a length-prefixed byte string.
    pub fn bytes(&mut self, what: &'static str) -> Result<Vec<u8>, DecodeError> {
        let len = self.u32(what)? as usize;
        Ok(self.take(len, what)?.to_vec())
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn string(&mut self, what: &'static str) -> Result<String, DecodeError> {
        let b = self.bytes(what)?;
        String::from_utf8(b).map_err(|_| DecodeError { what })
    }

    /// Whether the whole buffer has been consumed.
    pub fn is_at_end(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Fails unless the whole buffer was consumed (trailing-garbage check).
    pub fn expect_end(&self, what: &'static str) -> Result<(), DecodeError> {
        if self.is_at_end() {
            Ok(())
        } else {
            Err(DecodeError { what })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn round_trip_scalars() {
        let mut w = WireWriter::new();
        w.u8(7).u16(300).u32(70_000).u64(1 << 40).boolean(true);
        let buf = w.finish();
        let mut r = WireReader::new(&buf);
        assert_eq!(r.u8("a").unwrap(), 7);
        assert_eq!(r.u16("b").unwrap(), 300);
        assert_eq!(r.u32("c").unwrap(), 70_000);
        assert_eq!(r.u64("d").unwrap(), 1 << 40);
        assert!(r.boolean("e").unwrap());
        assert!(r.is_at_end());
    }

    #[test]
    fn round_trip_strings_and_bytes() {
        let mut w = WireWriter::new();
        w.string("hello").bytes(&[1, 2, 3]).string("");
        let buf = w.finish();
        let mut r = WireReader::new(&buf);
        assert_eq!(r.string("s").unwrap(), "hello");
        assert_eq!(r.bytes("b").unwrap(), vec![1, 2, 3]);
        assert_eq!(r.string("e").unwrap(), "");
        r.expect_end("tail").unwrap();
    }

    #[test]
    fn truncated_buffer_errors() {
        let mut w = WireWriter::new();
        w.u64(5);
        let buf = w.finish();
        let mut r = WireReader::new(&buf[..4]);
        assert!(r.u64("x").is_err());
    }

    #[test]
    fn bad_bool_errors() {
        let buf = [2u8];
        let mut r = WireReader::new(&buf);
        assert!(r.boolean("flag").is_err());
    }

    #[test]
    fn expect_end_catches_trailing_garbage() {
        let buf = [0u8, 1];
        let mut r = WireReader::new(&buf);
        let _ = r.u8("x").unwrap();
        assert!(r.expect_end("tail").is_err());
    }

    #[test]
    fn length_prefix_beyond_buffer_errors() {
        let mut w = WireWriter::new();
        w.u32(1000); // claims 1000 bytes follow
        let buf = w.finish();
        let mut r = WireReader::new(&buf);
        assert!(r.bytes("b").is_err());
    }

    proptest! {
        #[test]
        fn prop_round_trip(a: u8, b: u16, c: u32, d: u64, flag: bool,
                           s in ".{0,64}", v in proptest::collection::vec(any::<u8>(), 0..256)) {
            let mut w = WireWriter::new();
            w.u8(a).u16(b).u32(c).u64(d).boolean(flag).string(&s).bytes(&v);
            let buf = w.finish();
            let mut r = WireReader::new(&buf);
            prop_assert_eq!(r.u8("a").unwrap(), a);
            prop_assert_eq!(r.u16("b").unwrap(), b);
            prop_assert_eq!(r.u32("c").unwrap(), c);
            prop_assert_eq!(r.u64("d").unwrap(), d);
            prop_assert_eq!(r.boolean("f").unwrap(), flag);
            prop_assert_eq!(r.string("s").unwrap(), s);
            prop_assert_eq!(r.bytes("v").unwrap(), v);
            prop_assert!(r.is_at_end());
        }

        #[test]
        fn prop_decoder_never_panics(data in proptest::collection::vec(any::<u8>(), 0..128)) {
            let mut r = WireReader::new(&data);
            let _ = r.u64("a");
            let _ = r.string("b");
            let _ = r.bytes("c");
            let _ = r.boolean("d");
        }
    }
}

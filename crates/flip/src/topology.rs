//! Internetwork topologies: named segments joined by router nodes.
//!
//! A [`Topology`] is the static wiring plan a [`Network`](crate::Network)
//! is built from: an ordered list of named *segments* (each its own
//! Ethernet with its own wire occupancy and, optionally, its own
//! [`NetParams`]) and a list of *routers*, each attached to two or more
//! segments. The degenerate [`Topology::single`] — one segment, no
//! routers — is the default everywhere and reproduces the old
//! single-Ethernet behaviour exactly.
//!
//! Hop counts are *router traversals*: two hosts on the same segment are
//! 0 hops apart; one router between their segments makes them 1 hop
//! apart. [`Topology::default_ttl`] (diameter + 1) is the TTL a packet
//! needs to reach every host, and is what a stack stamps on packets whose
//! sender did not choose a TTL explicitly.

use crate::params::NetParams;

/// Index of a segment within a [`Topology`] (and its `Network`).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SegmentId(pub u32);

impl std::fmt::Debug for SegmentId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "seg:{}", self.0)
    }
}

impl std::fmt::Display for SegmentId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "seg:{}", self.0)
    }
}

/// One network segment of a topology.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentSpec {
    /// Human-readable name, used in per-segment stats and bench output.
    pub name: String,
    /// Additive route cost of traversing this segment (1 for a LAN;
    /// raise it to make routes prefer other paths, e.g. a slow WAN hop).
    pub weight: u32,
    /// Timing/fault model override; `None` inherits the network's base
    /// parameters.
    pub params: Option<NetParams>,
}

/// One router of a topology: a store-and-forward node attached to two or
/// more segments.
#[derive(Debug, Clone, PartialEq)]
pub struct RouterSpec {
    /// Human-readable name (diagnostics only).
    pub name: String,
    /// The segments this router forwards between.
    pub attached: Vec<SegmentId>,
}

/// A static internetwork wiring plan. See the [module docs](self).
#[derive(Debug, Clone, PartialEq)]
pub struct Topology {
    segments: Vec<SegmentSpec>,
    routers: Vec<RouterSpec>,
}

impl Default for Topology {
    fn default() -> Self {
        Topology::single()
    }
}

impl Topology {
    /// An empty topology; add segments before attaching hosts.
    pub fn new() -> Topology {
        Topology {
            segments: Vec::new(),
            routers: Vec::new(),
        }
    }

    /// The degenerate one-segment topology (a single Ethernet, no
    /// routers) — the default, and byte-identical to the pre-routing
    /// network model.
    pub fn single() -> Topology {
        let mut t = Topology::new();
        t.add_segment("lan");
        t
    }

    /// Two segments joined by one router — the canonical internetwork
    /// testbed (`net-a` ↔ `r0` ↔ `net-b`).
    pub fn two_segments() -> Topology {
        let mut t = Topology::new();
        let a = t.add_segment("net-a");
        let b = t.add_segment("net-b");
        t.add_router("r0", &[a, b]);
        t
    }

    /// A chain of `n` segments, each pair joined by its own router
    /// (diameter `n - 1`).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn chain(n: usize) -> Topology {
        assert!(n > 0, "a chain needs at least one segment");
        let mut t = Topology::new();
        let segs: Vec<SegmentId> = (0..n).map(|i| t.add_segment(&format!("net-{i}"))).collect();
        for w in segs.windows(2) {
            t.add_router(&format!("r{}-{}", w[0].0, w[1].0), &[w[0], w[1]]);
        }
        t
    }

    /// Adds a segment with weight 1 and inherited parameters.
    pub fn add_segment(&mut self, name: &str) -> SegmentId {
        self.add_segment_with(name, 1, None)
    }

    /// Adds a segment with an explicit route weight and an optional
    /// [`NetParams`] override.
    pub fn add_segment_with(
        &mut self,
        name: &str,
        weight: u32,
        params: Option<NetParams>,
    ) -> SegmentId {
        let id = SegmentId(self.segments.len() as u32);
        self.segments.push(SegmentSpec {
            name: name.to_owned(),
            weight: weight.max(1),
            params,
        });
        id
    }

    /// Adds a router attached to the given segments.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two segments are given or any id is unknown.
    pub fn add_router(&mut self, name: &str, attached: &[SegmentId]) {
        assert!(attached.len() >= 2, "a router joins at least two segments");
        for s in attached {
            assert!(
                (s.0 as usize) < self.segments.len(),
                "router {name} attached to unknown {s}"
            );
        }
        let mut seen = attached.to_vec();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(
            seen.len(),
            attached.len(),
            "router {name} attached to a segment twice"
        );
        self.routers.push(RouterSpec {
            name: name.to_owned(),
            attached: attached.to_vec(),
        });
    }

    /// The segments, in [`SegmentId`] order.
    pub fn segments(&self) -> &[SegmentSpec] {
        &self.segments
    }

    /// The routers.
    pub fn routers(&self) -> &[RouterSpec] {
        &self.routers
    }

    /// Minimum number of router traversals between two segments
    /// (`Some(0)` for the same segment, `None` if unreachable).
    pub fn hops_between(&self, a: SegmentId, b: SegmentId) -> Option<u8> {
        if a == b {
            return Some(0);
        }
        let n = self.segments.len();
        if (a.0 as usize) >= n || (b.0 as usize) >= n {
            return None;
        }
        // BFS over the segment graph; each router traversal costs 1.
        let mut dist = vec![u8::MAX; n];
        dist[a.0 as usize] = 0;
        let mut queue = std::collections::VecDeque::from([a]);
        while let Some(s) = queue.pop_front() {
            let d = dist[s.0 as usize];
            for r in &self.routers {
                if !r.attached.contains(&s) {
                    continue;
                }
                for t in &r.attached {
                    if dist[t.0 as usize] == u8::MAX {
                        dist[t.0 as usize] = d.saturating_add(1);
                        if *t == b {
                            return Some(d.saturating_add(1));
                        }
                        queue.push_back(*t);
                    }
                }
            }
        }
        None
    }

    /// Whether traffic can reach segment `b` from segment `a`.
    pub fn reachable(&self, a: SegmentId, b: SegmentId) -> bool {
        self.hops_between(a, b).is_some()
    }

    /// The largest hop count between any two mutually reachable
    /// segments (0 for a single segment).
    pub fn diameter(&self) -> u8 {
        let n = self.segments.len() as u32;
        let mut d = 0u8;
        for a in 0..n {
            for b in (a + 1)..n {
                if let Some(h) = self.hops_between(SegmentId(a), SegmentId(b)) {
                    d = d.max(h);
                }
            }
        }
        d
    }

    /// The TTL that reaches every host of the topology: diameter + 1
    /// (a packet needs one TTL unit per router traversal, and must still
    /// be alive on the final segment).
    pub fn default_ttl(&self) -> u8 {
        self.diameter().saturating_add(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_has_no_routers_and_ttl_one() {
        let t = Topology::single();
        assert_eq!(t.segments().len(), 1);
        assert!(t.routers().is_empty());
        assert_eq!(t.diameter(), 0);
        assert_eq!(t.default_ttl(), 1);
    }

    #[test]
    fn two_segments_one_hop() {
        let t = Topology::two_segments();
        assert_eq!(t.hops_between(SegmentId(0), SegmentId(1)), Some(1));
        assert_eq!(t.hops_between(SegmentId(1), SegmentId(1)), Some(0));
        assert_eq!(t.default_ttl(), 2);
    }

    #[test]
    fn chain_diameter_grows() {
        let t = Topology::chain(4);
        assert_eq!(t.segments().len(), 4);
        assert_eq!(t.routers().len(), 3);
        assert_eq!(t.hops_between(SegmentId(0), SegmentId(3)), Some(3));
        assert_eq!(t.diameter(), 3);
        assert_eq!(t.default_ttl(), 4);
    }

    #[test]
    fn disconnected_segments_are_unreachable() {
        let mut t = Topology::new();
        let a = t.add_segment("a");
        let b = t.add_segment("b");
        assert!(!t.reachable(a, b));
        assert_eq!(t.hops_between(a, b), None);
        // Diameter only counts reachable pairs.
        assert_eq!(t.diameter(), 0);
    }

    #[test]
    fn triangle_prefers_direct_hop() {
        let mut t = Topology::new();
        let a = t.add_segment("a");
        let b = t.add_segment("b");
        let c = t.add_segment("c");
        t.add_router("rab", &[a, b]);
        t.add_router("rbc", &[b, c]);
        t.add_router("rac", &[a, c]);
        assert_eq!(t.hops_between(a, c), Some(1));
        assert_eq!(t.diameter(), 1);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn router_needs_two_segments() {
        let mut t = Topology::new();
        let a = t.add_segment("a");
        t.add_router("r", &[a]);
    }
}

//! FLIP-style addressing.
//!
//! FLIP (the Fast Local Internet Protocol underneath Amoeba) addresses
//! identify *network service access points*, not machines. We model the two
//! kinds the directory service needs: per-host unicast addresses and group
//! (multicast) addresses, plus a broadcast destination used by the RPC
//! locate protocol.

use std::fmt;

/// The unicast FLIP address of a host's protocol stack.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HostAddr(pub u32);

impl fmt::Debug for HostAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "host:{}", self.0)
    }
}

impl fmt::Display for HostAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "host:{}", self.0)
    }
}

/// A multicast group address; hosts join and leave dynamically.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GroupAddr(pub u64);

impl fmt::Debug for GroupAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "group:{:x}", self.0)
    }
}

impl fmt::Display for GroupAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "group:{:x}", self.0)
    }
}

/// Where a packet is headed.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Dest {
    /// Exactly one host.
    Unicast(HostAddr),
    /// All current members of a multicast group (one packet on the wire).
    Multicast(GroupAddr),
    /// Every host on the network (used by the locate protocol).
    Broadcast,
}

impl From<HostAddr> for Dest {
    fn from(a: HostAddr) -> Dest {
        Dest::Unicast(a)
    }
}

impl From<GroupAddr> for Dest {
    fn from(a: GroupAddr) -> Dest {
        Dest::Multicast(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(HostAddr(3).to_string(), "host:3");
        assert_eq!(GroupAddr(0xab).to_string(), "group:ab");
    }

    #[test]
    fn dest_conversions() {
        assert_eq!(Dest::from(HostAddr(1)), Dest::Unicast(HostAddr(1)));
        assert_eq!(Dest::from(GroupAddr(2)), Dest::Multicast(GroupAddr(2)));
    }
}

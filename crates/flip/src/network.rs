//! The shared network medium: delivery, partitions, loss, host up/down.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

use amoeba_sim::{MailboxTx, SimHandle, SimRng, SimTime};
use parking_lot::Mutex;

use crate::addr::{Dest, GroupAddr, HostAddr};
use crate::packet::Packet;
use crate::params::NetParams;
use crate::port::Port;
use crate::stack::NodeStack;
use crate::stats::NetStats;

pub(crate) type EndpointTable = Arc<Mutex<HashMap<Port, MailboxTx<Packet>>>>;

struct NetInner {
    params: NetParams,
    handle: SimHandle,
    stacks: BTreeMap<HostAddr, EndpointTable>,
    groups: BTreeMap<GroupAddr, BTreeSet<HostAddr>>,
    /// Partition id per host; hosts can only talk within the same id.
    partition: HashMap<HostAddr, u32>,
    down: BTreeSet<HostAddr>,
    rng: SimRng,
    stats: NetStats,
    next_host: u32,
    /// Occupancy model: when each host's sending side is free again
    /// (protocol-processing CPU serializes per host, paper §4.2).
    tx_free: HashMap<HostAddr, SimTime>,
    /// When the shared ether is free again (one packet on the wire at a
    /// time; a multicast occupies it once, however many hosts listen —
    /// the hardware property the group protocol exploits).
    wire_free: SimTime,
    /// When each host's receiving side is free again.
    rx_free: HashMap<HostAddr, SimTime>,
}

/// The simulated LAN that all hosts attach to.
///
/// Cloning is cheap; all clones refer to the same medium.
///
/// # Examples
///
/// ```
/// use amoeba_sim::Simulation;
/// use amoeba_flip::{Network, NetParams, Port};
///
/// let mut sim = Simulation::new(1);
/// let net = Network::new(sim.handle(), NetParams::lan_10mbps(), 7);
/// let a = net.attach();
/// let b = net.attach();
/// let port = Port::from_name("echo");
/// let rx = b.bind(port);
/// sim.spawn("sender", {
///     let a = a.clone();
///     let dst = b.addr();
///     move |_ctx| a.send(dst, port, b"hi".to_vec())
/// });
/// let got = sim.spawn("receiver", move |ctx| rx.recv(ctx).payload);
/// sim.run();
/// assert_eq!(got.take(), Some(amoeba_flip::Payload::from(b"hi")));
/// ```
#[derive(Clone)]
pub struct Network {
    inner: Arc<Mutex<NetInner>>,
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("Network")
            .field("hosts", &inner.stacks.len())
            .field("down", &inner.down)
            .finish()
    }
}

impl Network {
    /// Creates a network medium on the given simulation.
    pub fn new(handle: SimHandle, params: NetParams, seed: u64) -> Self {
        Network {
            inner: Arc::new(Mutex::new(NetInner {
                params,
                handle,
                stacks: BTreeMap::new(),
                groups: BTreeMap::new(),
                partition: HashMap::new(),
                down: BTreeSet::new(),
                rng: SimRng::new(seed).fork(0xF11F),
                stats: NetStats::default(),
                next_host: 0,
                tx_free: HashMap::new(),
                wire_free: SimTime::ZERO,
                rx_free: HashMap::new(),
            })),
        }
    }

    /// Attaches a new host and returns its protocol stack.
    pub fn attach(&self) -> NodeStack {
        let addr = {
            let mut inner = self.inner.lock();
            let addr = HostAddr(inner.next_host);
            inner.next_host += 1;
            inner
                .stacks
                .insert(addr, Arc::new(Mutex::new(HashMap::new())));
            addr
        };
        NodeStack::new(addr, self.clone())
    }

    /// A snapshot of the traffic counters.
    pub fn stats(&self) -> NetStats {
        self.inner.lock().stats
    }

    /// Marks a host down: endpoints and group memberships are cleared (its
    /// NIC forgot everything) and deliveries to it are dropped.
    pub fn set_down(&self, host: HostAddr) {
        let mut inner = self.inner.lock();
        inner.down.insert(host);
        if let Some(t) = inner.stacks.get(&host) {
            t.lock().clear();
        }
        for members in inner.groups.values_mut() {
            members.remove(&host);
        }
        // The NIC forgets its queue along with everything else.
        inner.tx_free.remove(&host);
        inner.rx_free.remove(&host);
    }

    /// Marks a host up again (it must re-bind its ports and re-join its
    /// multicast groups).
    pub fn set_up(&self, host: HostAddr) {
        self.inner.lock().down.remove(&host);
    }

    /// Whether a host is currently up.
    pub fn is_up(&self, host: HostAddr) -> bool {
        !self.inner.lock().down.contains(&host)
    }

    /// Splits the network: hosts in `isolated` form one side, everyone else
    /// the other. Replaces any previous partition.
    pub fn isolate(&self, isolated: &[HostAddr]) {
        let mut inner = self.inner.lock();
        inner.partition.clear();
        for h in isolated {
            inner.partition.insert(*h, 1);
        }
    }

    /// Installs an arbitrary partition: `sides[i]` lists the hosts in
    /// partition `i + 1`; unlisted hosts are all in partition 0.
    pub fn set_partition(&self, sides: &[&[HostAddr]]) {
        let mut inner = self.inner.lock();
        inner.partition.clear();
        for (i, side) in sides.iter().enumerate() {
            for h in *side {
                inner.partition.insert(*h, i as u32 + 1);
            }
        }
    }

    /// Removes any partition; all hosts can talk again.
    pub fn heal(&self) {
        self.inner.lock().partition.clear();
    }

    /// Updates the fault model on the fly (loss, duplication, jitter...).
    pub fn set_params(&self, params: NetParams) {
        self.inner.lock().params = params;
    }

    pub(crate) fn join_group(&self, host: HostAddr, group: GroupAddr) {
        self.inner
            .lock()
            .groups
            .entry(group)
            .or_default()
            .insert(host);
    }

    pub(crate) fn leave_group(&self, host: HostAddr, group: GroupAddr) {
        let mut inner = self.inner.lock();
        if let Some(members) = inner.groups.get_mut(&group) {
            members.remove(&host);
        }
    }

    pub(crate) fn endpoints_of(&self, host: HostAddr) -> Option<EndpointTable> {
        self.inner.lock().stacks.get(&host).cloned()
    }

    /// Core transmission path. Computes the target set, applies the
    /// occupancy model (sender NIC → shared wire → receiver NIC, each a
    /// serialized resource) and the fault model per target, and schedules
    /// deliveries through the simulator.
    ///
    /// On an idle network a packet's end-to-end latency is exactly
    /// [`NetParams::latency`]; under load, queueing at any of the three
    /// resources adds to it. This is what makes packet *count* a real
    /// cost: coalescing k messages into one packet saves k−1 sender-CPU
    /// charges, k−1 header transmissions, and k−1 receiver-CPU charges
    /// per receiver — the amortization the sequencer's accept batching
    /// exploits.
    pub(crate) fn transmit(&self, pkt: Packet) {
        let mut inner = self.inner.lock();
        let src = pkt.src;
        // A down host cannot transmit (its processes are dead anyway).
        if inner.down.contains(&src) {
            return;
        }
        let now = inner.handle.now();
        inner.stats.packets_sent += 1;
        inner.stats.bytes_sent += (pkt.payload.len() + inner.params.header_bytes) as u64;
        let targets: Vec<HostAddr> = match pkt.dst {
            Dest::Unicast(h) => {
                inner.stats.unicast_sent += 1;
                vec![h]
            }
            Dest::Multicast(g) => {
                inner.stats.multicast_sent += 1;
                inner
                    .groups
                    .get(&g)
                    .map(|m| m.iter().copied().collect())
                    .unwrap_or_default()
            }
            Dest::Broadcast => {
                inner.stats.broadcast_sent += 1;
                inner.stacks.keys().copied().collect()
            }
        };
        // Sender-side protocol processing: one packet at a time per host.
        let tx_start = inner
            .tx_free
            .get(&src)
            .copied()
            .unwrap_or(SimTime::ZERO)
            .max(now);
        let tx_done = tx_start + inner.params.send_cpu;
        inner.tx_free.insert(src, tx_done);
        // The shared ether: one frame on the wire at a time; a multicast
        // occupies it exactly once regardless of the receiver count.
        let wire_time = inner.params.wire_time(pkt.payload.len());
        let wire_start = inner.wire_free.max(tx_done);
        let wire_done = wire_start + wire_time;
        inner.wire_free = wire_done;
        inner.stats.wire_busy_nanos += wire_time.as_nanos() as u64;
        let arrival = wire_done + inner.params.propagation;
        let src_part = inner.partition.get(&src).copied().unwrap_or(0);
        let base_latency = inner.params.latency(pkt.payload.len());
        for t in targets {
            if inner.down.contains(&t) {
                inner.stats.dropped_down += 1;
                continue;
            }
            let t_part = inner.partition.get(&t).copied().unwrap_or(0);
            if t_part != src_part {
                inner.stats.dropped_partition += 1;
                continue;
            }
            let loss = inner.params.loss_probability;
            if inner.rng.chance(loss) {
                inner.stats.dropped_loss += 1;
                continue;
            }
            let tx = {
                let table = match inner.stacks.get(&t) {
                    Some(t) => Arc::clone(t),
                    None => continue,
                };
                let guard = table.lock();
                guard.get(&pkt.port).cloned()
            };
            let tx = match tx {
                Some(tx) => tx,
                None => {
                    inner.stats.dropped_no_listener += 1;
                    continue;
                }
            };
            // Receiver-side protocol processing, serialized per host.
            let rx_start = inner
                .rx_free
                .get(&t)
                .copied()
                .unwrap_or(SimTime::ZERO)
                .max(arrival);
            let rx_done = rx_start + inner.params.recv_cpu;
            inner.rx_free.insert(t, rx_done);
            // OS-scheduling jitter on top of the physical model.
            let jitter = inner.params.jitter;
            let extra = base_latency.mul_f64(inner.rng.next_f64() * jitter.max(0.0));
            let deliver_at = rx_done + extra;
            inner.stats.deliveries += 1;
            tx.send_after(deliver_at.saturating_since(now), pkt.clone());
            let dup = inner.params.duplicate_probability;
            if inner.rng.chance(dup) {
                inner.stats.duplicated += 1;
                tx.send_after(
                    (deliver_at + base_latency.mul_f64(0.5)).saturating_since(now),
                    pkt.clone(),
                );
            }
        }
    }

    pub(crate) fn handle(&self) -> SimHandle {
        self.inner.lock().handle.clone()
    }
}

//! The network medium: segments, routers, delivery, partitions, loss,
//! host up/down.
//!
//! A [`Network`] is built from a [`Topology`]: one or more segments
//! (each an Ethernet with its own serialized wire) joined by
//! store-and-forward routers. The degenerate single-segment topology is
//! the default and behaves exactly like the pre-routing model.
//!
//! ## Forwarding invariants (what is charged where)
//!
//! * Every frame placed on a segment charges its transmitter's send CPU,
//!   the segment's wire occupancy, and each local receiver's receive CPU
//!   — identical to the flat model, per segment.
//! * A router forwards a frame only after fully receiving it: the
//!   forwarded copy becomes ready `recv_cpu + forward_cpu` after arrival
//!   and then queues on the router's send CPU and the next segment's
//!   wire like any other transmission. Idle per-hop cost is therefore
//!   [`NetParams::latency`] + [`NetParams::hop_overhead`]; under load
//!   each traversed resource adds real queueing ("router contention").
//! * **Loop suppression**: a frame carries `(src, packet_id)` and a TTL.
//!   A router never forwards a packet id again unless the new copy has
//!   strictly more remaining TTL than any copy it already processed
//!   (a shorter path's copy must not be shadowed by a longer path's —
//!   see [`SeenCache`]), never forwards a frame back to the node it
//!   came from, and decrements the TTL per traversal, refusing to
//!   forward at TTL ≤ 1 (counted in [`NetStats::dropped_ttl`]).
//!   Receivers additionally accept each packet id once, so redundant
//!   paths (topology cycles) cannot cause duplicate delivery — only
//!   the fault model's explicit `duplicate_probability` can, exactly
//!   as on a flat network.
//! * **Routing tables** are learned backward from traffic: every node
//!   (host or router) that sees a frame which crossed at least one
//!   router learns "its origin is reachable via the relay that put it on
//!   my segment", with the accumulated hop count and segment weight;
//!   lower (weight, hops) wins. Unicasts to an off-segment destination
//!   follow these tables hop by hop; with no route yet they flood like a
//!   broadcast (TTL-limited, duplicate-suppressed) and the reply teaches
//!   the direct route — the locate-then-route pattern FLIP relies on.
//! * **Route aging**: every learned entry carries the virtual time it
//!   was last confirmed (learning an entry again refreshes the stamp, so
//!   routes in active use never expire). A lookup that finds an entry
//!   older than [`NetParams::route_max_age`] drops it — counted in
//!   [`NetStats::routes_aged_out`] — and the sender floods instead, so
//!   staleness after topology churn heals without waiting for a
//!   send-time failure.
//! * **Multicast pruning** (on by default; see
//!   [`set_multicast_pruning`](Network::set_multicast_pruning)): each
//!   router keeps FLIP-style group routing state — for every multicast
//!   group, the set of attached segments through which at least one
//!   member is reachable. Joins install the state (as FLIP's join
//!   broadcast would); any membership or router-availability change
//!   flushes it, and the next multicast rebuilds it. A router forwards a
//!   group packet only onto member-leading segments; skipped directions
//!   are counted in [`NetStats::mcast_pruned`]. Pruning is conservative:
//!   a segment is member-leading if any member's segment is reachable
//!   through it with this router removed, so transit segments stay open
//!   and no member can be cut off. With pruning off, multicasts flood
//!   TTL-limited exactly like broadcasts.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::sync::Arc;

use amoeba_sim::{MailboxTx, SimHandle, SimRng, SimTime};
use parking_lot::Mutex;

use crate::addr::{Dest, GroupAddr, HostAddr};
use crate::packet::Packet;
use crate::params::NetParams;
use crate::port::Port;
use crate::stack::NodeStack;
use crate::stats::{NetStats, SegmentStats};
use crate::topology::{SegmentId, Topology};

pub(crate) type EndpointTable = Arc<Mutex<HashMap<Port, MailboxTx<Packet>>>>;

/// Bound on remembered packet ids per node (FIFO eviction).
const SEEN_CAP: usize = 8192;

/// A bounded memory of packet ids already processed by one node, with
/// the best (highest) remaining TTL seen for each.
///
/// Duplicate suppression must not be path-order-dependent: copies of
/// one flooded packet reach a router over different paths with
/// different remaining TTLs, and whichever copy happens to be
/// processed first must not shadow a later copy that still has budget
/// to reach segments the first could not. So a copy only counts as a
/// duplicate if a copy with at least as much remaining TTL was already
/// processed; re-floods this causes are bounded (the recorded TTL is
/// strictly increasing, capped by the origin's TTL) and receivers
/// still deliver exactly once.
/// FNV-1a over `(host, side)` pairs: pins a variable-length partition
/// description into one fault-trace operand.
fn hash_hosts(pairs: impl Iterator<Item = (u32, u32)>) -> u64 {
    fn mix(mut h: u64, v: u32) -> u64 {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for (host, side) in pairs {
        h = mix(h, host);
        h = mix(h, side);
    }
    h
}

#[derive(Default)]
struct SeenCache {
    best: HashMap<(HostAddr, u64), u8>,
    fifo: VecDeque<(HostAddr, u64)>,
}

impl SeenCache {
    /// Records the id at `ttl`; returns true iff this copy should be
    /// processed (first sighting, or more remaining TTL than any
    /// before).
    fn observe(&mut self, key: (HostAddr, u64), ttl: u8) -> bool {
        match self.best.get_mut(&key) {
            Some(best) if *best >= ttl => false,
            Some(best) => {
                *best = ttl;
                true
            }
            None => {
                if self.fifo.len() >= SEEN_CAP {
                    if let Some(old) = self.fifo.pop_front() {
                        self.best.remove(&old);
                    }
                }
                self.best.insert(key, ttl);
                self.fifo.push_back(key);
                true
            }
        }
    }
}

/// One learned route: how a node reaches `dst`.
#[derive(Copy, Clone, Debug)]
struct RouteEntry {
    /// The neighbour on `segment` to hand the frame to (the destination
    /// itself, or a router).
    next_hop: HostAddr,
    /// The attached segment to transmit on.
    segment: SegmentId,
    /// Router traversals to the destination.
    hops: u8,
    /// Accumulated segment weight of the path.
    weight: u32,
    /// Virtual time this entry was last (re-)learned from traffic;
    /// entries older than [`NetParams::route_max_age`] are dropped at
    /// lookup time.
    confirmed_at: SimTime,
}

struct SegmentState {
    weight: u32,
    params: Option<NetParams>,
    /// When this segment's wire is free again (one frame at a time; a
    /// multicast occupies it once, however many hosts listen).
    wire_free: SimTime,
}

struct RouterState {
    attached: Vec<SegmentId>,
    seen: SeenCache,
}

struct NetInner {
    params: NetParams,
    handle: SimHandle,
    stacks: BTreeMap<HostAddr, EndpointTable>,
    groups: BTreeMap<GroupAddr, BTreeSet<HostAddr>>,
    /// Partition id per host; hosts can only talk within the same id.
    partition: HashMap<HostAddr, u32>,
    down: BTreeSet<HostAddr>,
    rng: SimRng,
    stats: NetStats,
    next_host: u32,
    next_packet_id: u64,
    topology: Topology,
    segments: Vec<SegmentState>,
    /// Which segment each attached host (not router) lives on.
    host_segment: HashMap<HostAddr, SegmentId>,
    routers: BTreeMap<HostAddr, RouterState>,
    /// Per-stack routing tables: node → (destination → route).
    routes: HashMap<HostAddr, HashMap<HostAddr, RouteEntry>>,
    /// Per-router group routing state: router → (group → attached
    /// segments through which at least one member is reachable).
    /// Flushed (marked dirty) on every membership or router-availability
    /// change and rebuilt lazily before the next multicast forward.
    group_routes: HashMap<HostAddr, HashMap<GroupAddr, BTreeSet<SegmentId>>>,
    /// Whether `group_routes` must be rebuilt before use.
    group_routes_dirty: bool,
    /// Whether routers prune multicasts to member-leading segments
    /// (true) or flood them TTL-limited like broadcasts (false).
    multicast_pruning: bool,
    /// Per-host receive-side duplicate suppression (multi-segment only).
    seen_rx: HashMap<HostAddr, SeenCache>,
    /// TTL stamped on packets whose sender left it unset.
    default_ttl: u8,
    /// Occupancy model: when each node's sending side is free again
    /// (protocol-processing CPU serializes per node, paper §4.2).
    tx_free: HashMap<HostAddr, SimTime>,
    /// When each node's receiving side is free again.
    rx_free: HashMap<HostAddr, SimTime>,
    /// Flow-edge recorder for traced packets; disabled unless the
    /// simulation installed a telemetry collector before the network was
    /// created. Recording never touches the timing model or `rng`.
    tele: amoeba_telemetry::Telemetry,
}

/// The simulated internetwork that all hosts attach to.
///
/// Cloning is cheap; all clones refer to the same medium.
///
/// # Examples
///
/// ```
/// use amoeba_sim::Simulation;
/// use amoeba_flip::{Network, NetParams, Port};
///
/// let mut sim = Simulation::new(1);
/// let net = Network::new(sim.handle(), NetParams::lan_10mbps(), 7);
/// let a = net.attach();
/// let b = net.attach();
/// let port = Port::from_name("echo");
/// let rx = b.bind(port);
/// sim.spawn("sender", {
///     let a = a.clone();
///     let dst = b.addr();
///     move |_ctx| a.send(dst, port, b"hi".to_vec())
/// });
/// let got = sim.spawn("receiver", move |ctx| rx.recv(ctx).payload);
/// sim.run();
/// assert_eq!(got.take(), Some(amoeba_flip::Payload::from(b"hi")));
/// ```
#[derive(Clone)]
pub struct Network {
    inner: Arc<Mutex<NetInner>>,
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("Network")
            .field("segments", &inner.segments.len())
            .field("routers", &inner.routers.len())
            .field("hosts", &inner.stacks.len())
            .field("down", &inner.down)
            .finish()
    }
}

impl Network {
    /// Creates a single-segment network medium on the given simulation
    /// (the degenerate topology: one Ethernet, no routers).
    pub fn new(handle: SimHandle, params: NetParams, seed: u64) -> Self {
        Self::with_topology(handle, params, Topology::single(), seed)
    }

    /// Creates a network from an internetwork [`Topology`]. Router nodes
    /// are materialized immediately (each gets a [`HostAddr`], usable
    /// with [`set_down`](Network::set_down) to fail a router).
    ///
    /// # Panics
    ///
    /// Panics if the topology has no segments.
    pub fn with_topology(
        handle: SimHandle,
        params: NetParams,
        topology: Topology,
        seed: u64,
    ) -> Self {
        assert!(
            !topology.segments().is_empty(),
            "a network needs at least one segment"
        );
        let segments: Vec<SegmentState> = topology
            .segments()
            .iter()
            .map(|s| SegmentState {
                weight: s.weight,
                params: s.params.clone(),
                wire_free: SimTime::ZERO,
            })
            .collect();
        let seg_stats: Vec<SegmentStats> = topology
            .segments()
            .iter()
            .map(|s| SegmentStats {
                name: s.name.clone(),
                ..Default::default()
            })
            .collect();
        let default_ttl = topology.default_ttl();
        let tele = amoeba_telemetry::Telemetry::from_handle(&handle);
        let mut inner = NetInner {
            params,
            handle,
            stacks: BTreeMap::new(),
            groups: BTreeMap::new(),
            partition: HashMap::new(),
            down: BTreeSet::new(),
            rng: SimRng::new(seed).fork(0xF11F),
            stats: NetStats {
                segments: seg_stats,
                ..Default::default()
            },
            next_host: 0,
            next_packet_id: 0,
            topology: topology.clone(),
            segments,
            host_segment: HashMap::new(),
            routers: BTreeMap::new(),
            routes: HashMap::new(),
            group_routes: HashMap::new(),
            group_routes_dirty: true,
            multicast_pruning: true,
            seen_rx: HashMap::new(),
            default_ttl,
            tx_free: HashMap::new(),
            rx_free: HashMap::new(),
            tele,
        };
        for r in topology.routers() {
            let addr = HostAddr(inner.next_host);
            inner.next_host += 1;
            inner.routers.insert(
                addr,
                RouterState {
                    attached: r.attached.clone(),
                    seen: SeenCache::default(),
                },
            );
        }
        Network {
            inner: Arc::new(Mutex::new(inner)),
        }
    }

    /// Attaches a new host to the first segment and returns its
    /// protocol stack.
    pub fn attach(&self) -> NodeStack {
        self.attach_to(SegmentId(0))
    }

    /// Attaches a new host to `segment` and returns its protocol stack.
    ///
    /// # Panics
    ///
    /// Panics if the segment does not exist.
    pub fn attach_to(&self, segment: SegmentId) -> NodeStack {
        let addr = {
            let mut inner = self.inner.lock();
            assert!(
                (segment.0 as usize) < inner.segments.len(),
                "attach_to unknown {segment}"
            );
            let addr = HostAddr(inner.next_host);
            inner.next_host += 1;
            inner
                .stacks
                .insert(addr, Arc::new(Mutex::new(HashMap::new())));
            inner.host_segment.insert(addr, segment);
            addr
        };
        NodeStack::new(addr, self.clone())
    }

    /// A snapshot of the traffic counters.
    pub fn stats(&self) -> NetStats {
        self.inner.lock().stats.clone()
    }

    /// The topology this network was built from.
    pub fn topology(&self) -> Topology {
        self.inner.lock().topology.clone()
    }

    /// The segment a host (or router) is attached to; a router's
    /// "home" is its first attached segment.
    pub fn segment_of(&self, host: HostAddr) -> Option<SegmentId> {
        let inner = self.inner.lock();
        inner.host_segment.get(&host).copied().or_else(|| {
            inner
                .routers
                .get(&host)
                .and_then(|r| r.attached.first().copied())
        })
    }

    /// The TTL stamped on packets whose sender did not choose one:
    /// topology diameter + 1, i.e. enough to reach every host.
    pub fn max_hops(&self) -> u8 {
        self.inner.lock().default_ttl
    }

    /// The router nodes' addresses, in creation order (use with
    /// [`set_down`](Network::set_down) to fail a router).
    pub fn router_addrs(&self) -> Vec<HostAddr> {
        self.inner.lock().routers.keys().copied().collect()
    }

    /// Marks a host or router down. A host's endpoints and group
    /// memberships are cleared (its NIC forgot everything) and
    /// deliveries to it are dropped; a router stops forwarding and
    /// forgets its routing table and duplicate-suppression memory.
    pub fn set_down(&self, host: HostAddr) {
        let mut inner = self.inner.lock();
        inner
            .handle
            .record_fault(amoeba_sim::fault_codes::NET_DOWN, host.0 as u64, 0);
        inner.down.insert(host);
        if let Some(t) = inner.stacks.get(&host) {
            t.lock().clear();
        }
        for members in inner.groups.values_mut() {
            members.remove(&host);
        }
        // The NIC forgets its queue along with everything else.
        inner.tx_free.remove(&host);
        inner.rx_free.remove(&host);
        inner.routes.remove(&host);
        inner.seen_rx.remove(&host);
        if let Some(r) = inner.routers.get_mut(&host) {
            r.seen = SeenCache::default();
        }
        // Memberships changed (and a down router changes reachability):
        // flush the group routing state.
        inner.group_routes_dirty = true;
    }

    /// Marks a host up again (it must re-bind its ports and re-join its
    /// multicast groups; a router resumes forwarding with cold tables).
    pub fn set_up(&self, host: HostAddr) {
        let mut inner = self.inner.lock();
        inner
            .handle
            .record_fault(amoeba_sim::fault_codes::NET_UP, host.0 as u64, 0);
        inner.down.remove(&host);
        inner.group_routes_dirty = true;
    }

    /// Toggles FLIP-style multicast pruning in routers (on by default).
    /// Off, routers forward multicasts by TTL-limited flooding with
    /// duplicate suppression — the pre-pruning behaviour, kept as the
    /// benchmark baseline.
    pub fn set_multicast_pruning(&self, on: bool) {
        let mut inner = self.inner.lock();
        inner.multicast_pruning = on;
        inner.group_routes_dirty = true;
    }

    /// Whether a host is currently up.
    pub fn is_up(&self, host: HostAddr) -> bool {
        !self.inner.lock().down.contains(&host)
    }

    /// Splits the network: hosts in `isolated` form one side, everyone else
    /// the other. Replaces any previous partition.
    pub fn isolate(&self, isolated: &[HostAddr]) {
        let mut inner = self.inner.lock();
        inner.handle.record_fault(
            amoeba_sim::fault_codes::NET_ISOLATE,
            isolated.len() as u64,
            hash_hosts(isolated.iter().map(|h| (h.0, 1))),
        );
        inner.partition.clear();
        for h in isolated {
            inner.partition.insert(*h, 1);
        }
    }

    /// Installs an arbitrary partition: `sides[i]` lists the hosts in
    /// partition `i + 1`; unlisted hosts are all in partition 0.
    pub fn set_partition(&self, sides: &[&[HostAddr]]) {
        let mut inner = self.inner.lock();
        inner.handle.record_fault(
            amoeba_sim::fault_codes::NET_PARTITION,
            sides.iter().map(|s| s.len() as u64).sum(),
            hash_hosts(
                sides
                    .iter()
                    .enumerate()
                    .flat_map(|(i, side)| side.iter().map(move |h| (h.0, i as u32 + 1))),
            ),
        );
        inner.partition.clear();
        for (i, side) in sides.iter().enumerate() {
            for h in *side {
                inner.partition.insert(*h, i as u32 + 1);
            }
        }
    }

    /// Removes any partition; all hosts can talk again.
    pub fn heal(&self) {
        let mut inner = self.inner.lock();
        inner
            .handle
            .record_fault(amoeba_sim::fault_codes::NET_HEAL, 0, 0);
        inner.partition.clear();
    }

    /// Updates the base fault model on the fly (loss, duplication,
    /// jitter...). Per-segment overrides from the topology keep
    /// precedence.
    pub fn set_params(&self, params: NetParams) {
        let mut inner = self.inner.lock();
        inner.handle.record_fault(
            amoeba_sim::fault_codes::NET_PARAMS,
            (params.loss_probability * 1e9) as u64,
            (params.duplicate_probability * 1e9) as u64,
        );
        inner.params = params;
    }

    pub(crate) fn join_group(&self, host: HostAddr, group: GroupAddr) {
        let mut inner = self.inner.lock();
        inner.groups.entry(group).or_default().insert(host);
        inner.group_routes_dirty = true;
    }

    pub(crate) fn leave_group(&self, host: HostAddr, group: GroupAddr) {
        let mut inner = self.inner.lock();
        if let Some(members) = inner.groups.get_mut(&group) {
            members.remove(&host);
        }
        inner.group_routes_dirty = true;
    }

    pub(crate) fn endpoints_of(&self, host: HostAddr) -> Option<EndpointTable> {
        self.inner.lock().stacks.get(&host).cloned()
    }

    /// Origin transmission path: stamps the routing header (packet id,
    /// default TTL, link-level next hop from the sender's routing table)
    /// and injects the frame on the sender's segment.
    pub(crate) fn transmit(&self, pkt: Packet) {
        let mut inner = self.inner.lock();
        let src = pkt.src;
        // A down host cannot transmit (its processes are dead anyway).
        if inner.down.contains(&src) {
            return;
        }
        let now = inner.handle.now();
        let seg = match inner.host_segment.get(&src) {
            Some(s) => *s,
            None => return, // never attached
        };
        let mut pkt = pkt;
        inner.next_packet_id += 1;
        pkt.packet_id = inner.next_packet_id;
        if pkt.ttl == 0 {
            pkt.ttl = inner.default_ttl;
        }
        pkt.hops = 0;
        pkt.relay = src;
        pkt.link_dst = None;
        pkt.path_weight = 0;
        inner.stats.packets_sent += 1;
        let header = inner.seg_params(seg).header_bytes;
        inner.stats.bytes_sent += (pkt.payload.len() + header) as u64;
        match pkt.dst {
            Dest::Unicast(d) => {
                inner.stats.unicast_sent += 1;
                // Off-segment destination: hand the frame to the learned
                // next-hop router; with no route yet it floods below.
                if inner.host_segment.get(&d) != Some(&seg) {
                    if let Some(e) = inner.route_lookup(src, d) {
                        if e.segment == seg {
                            pkt.link_dst = Some(e.next_hop);
                        }
                    }
                }
            }
            Dest::Multicast(_) => inner.stats.multicast_sent += 1,
            Dest::Broadcast => inner.stats.broadcast_sent += 1,
        }
        inner.transmit_frame(seg, pkt, now);
    }

    pub(crate) fn handle(&self) -> SimHandle {
        self.inner.lock().handle.clone()
    }
}

impl NetInner {
    /// Segments reachable from `start` (inclusive) through routers that
    /// are up, with router `excluding` removed from the graph.
    fn segs_reachable_excluding(&self, start: SegmentId, excluding: HostAddr) -> Vec<bool> {
        let n = self.segments.len();
        let mut reach = vec![false; n];
        reach[start.0 as usize] = true;
        let mut queue = VecDeque::from([start]);
        while let Some(s) = queue.pop_front() {
            for (addr, r) in &self.routers {
                if *addr == excluding || self.down.contains(addr) || !r.attached.contains(&s) {
                    continue;
                }
                for t in &r.attached {
                    if !reach[t.0 as usize] {
                        reach[t.0 as usize] = true;
                        queue.push_back(*t);
                    }
                }
            }
        }
        reach
    }

    /// Rebuilds every router's group routing state from the current
    /// memberships and router availability. A router forwards a group
    /// packet onto attached segment `o` iff some member's segment is
    /// reachable from `o` with this router removed — conservative, so
    /// transit segments toward members stay open and pruning can never
    /// cut a member off; a direction with no members behind it is
    /// pruned.
    fn rebuild_group_routes(&mut self) {
        self.group_routes_dirty = false;
        self.group_routes.clear();
        // Which segments carry at least one member, per group.
        let mut member_segs: HashMap<GroupAddr, BTreeSet<SegmentId>> = HashMap::new();
        for (g, members) in &self.groups {
            let segs: BTreeSet<SegmentId> = members
                .iter()
                .filter(|m| !self.down.contains(m))
                .filter_map(|m| self.host_segment.get(m).copied())
                .collect();
            if !segs.is_empty() {
                member_segs.insert(*g, segs);
            }
        }
        let routers: Vec<(HostAddr, Vec<SegmentId>)> = self
            .routers
            .iter()
            .filter(|(a, _)| !self.down.contains(a))
            .map(|(a, r)| (*a, r.attached.clone()))
            .collect();
        for (addr, attached) in routers {
            let mut table: HashMap<GroupAddr, BTreeSet<SegmentId>> = HashMap::new();
            for o in &attached {
                let reach = self.segs_reachable_excluding(*o, addr);
                for (g, segs) in &member_segs {
                    if segs.iter().any(|s| reach[s.0 as usize]) {
                        table.entry(*g).or_default().insert(*o);
                    }
                }
            }
            self.group_routes.insert(addr, table);
        }
    }

    fn seg_params(&self, seg: SegmentId) -> &NetParams {
        self.segments[seg.0 as usize]
            .params
            .as_ref()
            .unwrap_or(&self.params)
    }

    /// Looks up `from`'s route to `dst`, pruning entries whose next hop
    /// is down (the reply-path will re-teach a live one) and entries
    /// that exceeded the route-age horizon without reconfirmation.
    fn route_lookup(&mut self, from: HostAddr, dst: HostAddr) -> Option<RouteEntry> {
        let e = *self.routes.get(&from)?.get(&dst)?;
        if self.down.contains(&e.next_hop) {
            if let Some(t) = self.routes.get_mut(&from) {
                t.remove(&dst);
            }
            return None;
        }
        let now = self.handle.now();
        if now.saturating_since(e.confirmed_at) > self.params.route_max_age {
            if let Some(t) = self.routes.get_mut(&from) {
                t.remove(&dst);
            }
            self.stats.routes_aged_out += 1;
            return None;
        }
        Some(e)
    }

    /// Backward learning: `who` saw a frame from `origin` that entered
    /// its segment `seg` through `relay` after `hops` traversals.
    /// Routers also learn zero-hop entries ("origin is on this attached
    /// segment", next hop the origin itself), which is what lets them
    /// direct unicasts instead of flooding; hosts need no route to
    /// same-segment peers.
    fn learn(&mut self, who: HostAddr, origin: HostAddr, seg: SegmentId, pkt: &Packet) {
        if who == origin || (pkt.hops == 0 && !self.routers.contains_key(&who)) {
            return;
        }
        let entry = RouteEntry {
            next_hop: pkt.relay,
            segment: seg,
            hops: pkt.hops,
            weight: pkt.path_weight,
            confirmed_at: self.handle.now(),
        };
        let table = self.routes.entry(who).or_default();
        match table.get(&origin) {
            Some(old)
                if (old.weight, old.hops) <= (entry.weight, entry.hops)
                    && old.next_hop != entry.next_hop => {}
            _ => {
                table.insert(origin, entry);
            }
        }
    }

    /// Places one frame on `seg` no earlier than `ready`, applying the
    /// occupancy model (transmitter CPU → segment wire → receiver CPU,
    /// each a serialized resource) and the fault model per target, then
    /// hands qualifying copies to the segment's routers (store-and-
    /// forward). Recursion depth is bounded by the frame's TTL.
    ///
    /// On an idle network a packet's end-to-end latency is exactly
    /// [`NetParams::latency`] plus [`NetParams::hop_overhead`] per
    /// traversed router; under load, queueing at any resource adds to
    /// it. This is what makes packet *count* a real cost: coalescing k
    /// messages into one packet saves k−1 sender-CPU charges, k−1
    /// header transmissions, and k−1 receiver-CPU charges per receiver
    /// — the amortization the sequencer's accept batching exploits —
    /// and every saved packet is also one fewer store-and-forward per
    /// crossed segment.
    fn transmit_frame(&mut self, seg: SegmentId, pkt: Packet, ready: SimTime) {
        let multi = self.segments.len() > 1;
        let mut pkt = pkt;
        pkt.path_weight = pkt
            .path_weight
            .saturating_add(self.segments[seg.0 as usize].weight);
        let params = self.seg_params(seg);
        let send_cpu = params.send_cpu;
        let recv_cpu = params.recv_cpu;
        let propagation = params.propagation;
        let forward_cpu = params.forward_cpu;
        let loss = params.loss_probability;
        let dup = params.duplicate_probability;
        let jitter = params.jitter;
        let wire_time = params.wire_time(pkt.payload.len());
        let base_latency = params.latency(pkt.payload.len());
        // Transmitter-side protocol processing: one frame at a time per
        // node (origin host or forwarding router).
        let relay = pkt.relay;
        let tx_start = self
            .tx_free
            .get(&relay)
            .copied()
            .unwrap_or(SimTime::ZERO)
            .max(ready);
        let tx_done = tx_start + send_cpu;
        self.tx_free.insert(relay, tx_done);
        // The segment's ether: one frame on the wire at a time; a
        // multicast occupies it exactly once regardless of the receiver
        // count.
        let ss = &mut self.segments[seg.0 as usize];
        let wire_start = ss.wire_free.max(tx_done);
        let wire_done = wire_start + wire_time;
        ss.wire_free = wire_done;
        let wire_nanos = wire_time.as_nanos() as u64;
        self.stats.wire_busy_nanos += wire_nanos;
        let seg_stats = &mut self.stats.segments[seg.0 as usize];
        seg_stats.wire_busy_nanos += wire_nanos;
        seg_stats.frames += 1;
        let arrival = wire_done + propagation;
        let now = self.handle.now();
        let src_part = self.partition.get(&pkt.src).copied().unwrap_or(0);

        // ------------------------------------------------------------
        // Local deliveries on this segment.
        // ------------------------------------------------------------
        let targets: Vec<HostAddr> = match pkt.dst {
            Dest::Unicast(h) => {
                if pkt.link_dst.is_none() && self.host_segment.get(&h) == Some(&seg) {
                    vec![h]
                } else {
                    Vec::new() // in transit to (or through) a router
                }
            }
            Dest::Multicast(g) => self
                .groups
                .get(&g)
                .map(|m| {
                    m.iter()
                        .copied()
                        .filter(|h| self.host_segment.get(h) == Some(&seg))
                        .collect()
                })
                .unwrap_or_default(),
            Dest::Broadcast => self
                .stacks
                .keys()
                .copied()
                .filter(|h| self.host_segment.get(h) == Some(&seg))
                .collect(),
        };
        for t in targets {
            if self.down.contains(&t) {
                self.stats.dropped_down += 1;
                continue;
            }
            let t_part = self.partition.get(&t).copied().unwrap_or(0);
            if t_part != src_part {
                self.stats.dropped_partition += 1;
                continue;
            }
            if self.rng.chance(loss) {
                self.stats.dropped_loss += 1;
                continue;
            }
            let tx = {
                let table = match self.stacks.get(&t) {
                    Some(t) => Arc::clone(t),
                    None => continue,
                };
                let guard = table.lock();
                guard.get(&pkt.port).cloned()
            };
            let tx = match tx {
                Some(tx) => tx,
                None => {
                    self.stats.dropped_no_listener += 1;
                    continue;
                }
            };
            if multi {
                self.learn(t, pkt.src, seg, &pkt);
                // Receive-side duplicate suppression: redundant paths
                // through a cyclic topology may carry a second copy;
                // accept each packet id once. (The fault model's
                // injected duplicates below are extra deliveries of an
                // accepted copy and pass through untouched.)
                if !self
                    .seen_rx
                    .entry(t)
                    .or_default()
                    .observe((pkt.src, pkt.packet_id), u8::MAX)
                {
                    self.stats.dup_suppressed += 1;
                    continue;
                }
            }
            // Receiver-side protocol processing, serialized per host.
            let rx_start = self
                .rx_free
                .get(&t)
                .copied()
                .unwrap_or(SimTime::ZERO)
                .max(arrival);
            let rx_done = rx_start + recv_cpu;
            self.rx_free.insert(t, rx_done);
            // OS-scheduling jitter on top of the physical model.
            let extra = base_latency.mul_f64(self.rng.next_f64() * jitter.max(0.0));
            let deliver_at = rx_done + extra;
            self.stats.deliveries += 1;
            if let Some((_, ctx)) = pkt.trace.first() {
                // One flow arrow per delivered copy, from the node that
                // placed the frame (origin or forwarding router) to the
                // receiver; batched packets use their first tag.
                self.tele
                    .flow(*ctx, relay.0 as u64, tx_start, t.0 as u64, deliver_at);
            }
            tx.send_after(deliver_at.saturating_since(now), pkt.clone());
            if self.rng.chance(dup) {
                self.stats.duplicated += 1;
                tx.send_after(
                    (deliver_at + base_latency.mul_f64(0.5)).saturating_since(now),
                    pkt.clone(),
                );
            }
        }

        // ------------------------------------------------------------
        // Store-and-forward through this segment's routers.
        // ------------------------------------------------------------
        if !multi {
            return;
        }
        let routers_here: Vec<HostAddr> = self
            .routers
            .iter()
            .filter(|(_, r)| r.attached.contains(&seg))
            .map(|(a, _)| *a)
            .collect();
        for r_addr in routers_here {
            if r_addr == pkt.relay || r_addr == pkt.src {
                continue; // never bounce a frame back to its transmitter
            }
            if let Some(link) = pkt.link_dst {
                if link != r_addr {
                    continue; // link-addressed to a different router
                }
            }
            if self.down.contains(&r_addr) {
                if pkt.link_dst == Some(r_addr) {
                    self.stats.dropped_down += 1;
                }
                continue;
            }
            // Routers learn from everything they see, even frames they
            // end up suppressing.
            self.learn(r_addr, pkt.src, seg, &pkt);
            // For a link-addressed unicast the frame must move on; for
            // flooded traffic, skip segments that don't lead anywhere
            // new. Unknown unicasts flood like broadcasts.
            let unicast_dst = match pkt.dst {
                Dest::Unicast(d) => Some(d),
                _ => None,
            };
            if let Some(d) = unicast_dst {
                if self.host_segment.get(&d) == Some(&seg) {
                    continue; // destination is local; nothing to forward
                }
            }
            if pkt.ttl <= 1 {
                self.stats.dropped_ttl += 1;
                continue;
            }
            let already = !self
                .routers
                .get_mut(&r_addr)
                .expect("router exists")
                .seen
                .observe((pkt.src, pkt.packet_id), pkt.ttl);
            if already {
                self.stats.dup_suppressed += 1;
                continue;
            }
            // Pick the out segments: routed unicasts follow the table;
            // everything else (and unknown unicasts) floods.
            let attached = self.routers[&r_addr].attached.clone();
            let mut outs: Vec<(SegmentId, Option<HostAddr>)> = Vec::new();
            let mut routed = false;
            if let Some(d) = unicast_dst {
                if let Some(e) = self.route_lookup(r_addr, d) {
                    if e.segment != seg && attached.contains(&e.segment) {
                        outs.push((e.segment, Some(e.next_hop)));
                        routed = true;
                    }
                }
            }
            if !routed {
                match pkt.dst {
                    Dest::Multicast(g) if self.multicast_pruning => {
                        // FLIP-style multicast pruning: forward only
                        // onto segments that lead toward a member.
                        if self.group_routes_dirty {
                            self.rebuild_group_routes();
                        }
                        let allowed = self
                            .group_routes
                            .get(&r_addr)
                            .and_then(|t| t.get(&g))
                            .cloned()
                            .unwrap_or_default();
                        for s in attached.iter().filter(|s| **s != seg) {
                            if allowed.contains(s) {
                                outs.push((*s, None));
                            } else {
                                self.stats.mcast_pruned += 1;
                            }
                        }
                    }
                    _ => outs.extend(attached.iter().filter(|s| **s != seg).map(|s| (*s, None))),
                }
            }
            if outs.is_empty() {
                continue;
            }
            // Store-and-forward: the router fully receives the frame,
            // spends its forwarding CPU, then retransmits. Its receive
            // and send sides are serialized like any host's — shared
            // across all attached segments, which is exactly where
            // router contention comes from.
            let rx_start = self
                .rx_free
                .get(&r_addr)
                .copied()
                .unwrap_or(SimTime::ZERO)
                .max(arrival);
            let rx_done = rx_start + recv_cpu;
            self.rx_free.insert(r_addr, rx_done);
            let fwd_ready = rx_done + forward_cpu;
            for (oseg, next_hop) in outs {
                let mut fwd = pkt.clone();
                fwd.ttl -= 1;
                fwd.hops += 1;
                fwd.relay = r_addr;
                fwd.link_dst = next_hop.filter(|h| self.routers.contains_key(h));
                self.stats.packets_forwarded += 1;
                self.transmit_frame(oseg, fwd, fwd_ready);
            }
        }
    }
}

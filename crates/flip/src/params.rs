//! The network timing and fault model.

use std::time::Duration;

/// Parameters of the simulated LAN.
///
/// The defaults are calibrated so that the directory-service experiments
/// reproduce the *shape* of the paper's numbers on hardware comparable to
/// Sun3/60s on a 10 Mbit/s Ethernet: roughly 1 ms end-to-end per small
/// packet, dominated by protocol-processing CPU time on each side, which is
/// an order of magnitude cheaper than one disk operation (the paper's key
/// cost ratio, §3.1).
#[derive(Debug, Clone, PartialEq)]
pub struct NetParams {
    /// Sender-side protocol processing per packet.
    pub send_cpu: Duration,
    /// Receiver-side protocol processing per packet.
    pub recv_cpu: Duration,
    /// Signal propagation delay (negligible on a LAN).
    pub propagation: Duration,
    /// Wire bandwidth in bits per second (10 Mbit/s Ethernet).
    pub bandwidth_bps: u64,
    /// Link-layer + FLIP header bytes charged to every packet.
    pub header_bytes: usize,
    /// Probability that any individual delivery is silently lost.
    pub loss_probability: f64,
    /// Probability that a delivered packet is delivered twice.
    pub duplicate_probability: f64,
    /// Multiplicative latency jitter: each delivery is scaled by a factor
    /// drawn uniformly from `[1, 1 + jitter]`.
    pub jitter: f64,
    /// Store-and-forward processing a router spends per forwarded packet,
    /// on top of the receive/send CPU charged on either side. Kernel-level
    /// forwarding skips the full protocol stack, so this is cheaper than
    /// `send_cpu`/`recv_cpu`.
    pub forward_cpu: Duration,
    /// How long a backward-learned route stays valid without being
    /// re-confirmed by traffic (FLIP-style age-out). A route older than
    /// this is dropped at lookup time — before any send-time failure —
    /// and the sender falls back to a TTL-limited flood, which re-teaches
    /// a live path. Routes in active use are refreshed by every frame
    /// that traverses them, so only genuinely stale entries expire.
    pub route_max_age: Duration,
}

impl NetParams {
    /// A quiet, reliable 10 Mbit/s Ethernet, as in the paper's testbed.
    pub fn lan_10mbps() -> Self {
        NetParams {
            send_cpu: Duration::from_micros(430),
            recv_cpu: Duration::from_micros(430),
            propagation: Duration::from_micros(10),
            bandwidth_bps: 10_000_000,
            header_bytes: 60,
            loss_probability: 0.0,
            duplicate_probability: 0.0,
            jitter: 0.03,
            forward_cpu: Duration::from_micros(250),
            route_max_age: Duration::from_secs(30),
        }
    }

    /// A lossy variant of the LAN for fault-injection tests.
    pub fn lossy(loss: f64) -> Self {
        NetParams {
            loss_probability: loss,
            ..Self::lan_10mbps()
        }
    }

    /// Time the packet occupies the shared wire (header + payload bits
    /// at `bandwidth_bps`).
    pub fn wire_time(&self, payload_len: usize) -> Duration {
        let bits = (payload_len + self.header_bytes) as u64 * 8;
        Duration::from_nanos(bits.saturating_mul(1_000_000_000) / self.bandwidth_bps.max(1))
    }

    /// One-way latency for a packet with `payload_len` payload bytes on
    /// an otherwise idle network, before jitter. Under load, sender-NIC,
    /// wire and receiver-NIC occupancy (see [`Network`](crate::Network))
    /// add queueing on top of this.
    pub fn latency(&self, payload_len: usize) -> Duration {
        self.send_cpu + self.wire_time(payload_len) + self.propagation + self.recv_cpu
    }

    /// Extra idle latency added by each store-and-forward router
    /// traversal: the router fully receives the packet, processes it,
    /// and retransmits it on the next segment.
    pub fn hop_overhead(&self, payload_len: usize) -> Duration {
        self.recv_cpu
            + self.forward_cpu
            + self.send_cpu
            + self.wire_time(payload_len)
            + self.propagation
    }
}

impl Default for NetParams {
    fn default() -> Self {
        Self::lan_10mbps()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_lan() {
        assert_eq!(NetParams::default(), NetParams::lan_10mbps());
    }

    #[test]
    fn small_packet_is_about_a_millisecond() {
        let p = NetParams::lan_10mbps();
        let lat = p.latency(100);
        assert!(
            lat >= Duration::from_micros(900) && lat <= Duration::from_micros(1200),
            "latency {lat:?}"
        );
    }

    #[test]
    fn latency_grows_with_size() {
        let p = NetParams::lan_10mbps();
        assert!(p.latency(8000) > p.latency(100));
        // 8 KB at 10 Mbit/s is ~6.4 ms of wire time alone.
        assert!(p.latency(8000) > Duration::from_millis(6));
    }

    #[test]
    fn lossy_preserves_timing() {
        let p = NetParams::lossy(0.5);
        assert_eq!(p.latency(10), NetParams::lan_10mbps().latency(10));
        assert!((p.loss_probability - 0.5).abs() < f64::EPSILON);
    }
}

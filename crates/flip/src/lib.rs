//! # amoeba-flip — simulated FLIP internetwork
//!
//! A deterministic model of the network substrate the Amoeba directory
//! service ran on: FLIP packets over one or more 10 Mbit/s Ethernet
//! segments, with unicast, true multicast (one packet on the wire
//! reaches every group member of a segment, the property Amoeba's group
//! communication exploits), and broadcast (used by the RPC locate
//! protocol).
//!
//! ## Internetwork routing
//!
//! FLIP's defining feature is that it locates ports and routes packets
//! transparently across multiple networks. A [`Topology`] describes
//! named segments joined by store-and-forward router nodes; the default
//! [`Topology::single`] keeps the old one-Ethernet behaviour exactly.
//! The routing invariants (documented in detail on [`Network`]):
//!
//! * **Honest per-hop cost.** Every traversed segment charges its own
//!   wire occupancy, and every forwarding router charges receive +
//!   forward + send CPU on its single, serialized processor — idle
//!   latency grows by [`NetParams::hop_overhead`] per hop, and loaded
//!   routers queue ("router contention").
//! * **Loop suppression.** Packets carry a TTL and an origin-unique
//!   packet id ([`Packet`]); routers refuse to forward an id past the
//!   TTL or again without a strictly higher remaining TTL, and
//!   receivers accept each id once, so flooded broadcasts cannot storm
//!   and cyclic topologies cannot duplicate delivery.
//! * **Backward-learned routes.** Every node learns "origin X is
//!   reachable via the relay that put its frame on my segment" from
//!   forwarded traffic (broadcasts seed this); unicasts follow these
//!   tables hop by hop and flood, TTL-limited, only while no route is
//!   known. [`NodeStack::send_with_ttl`] exposes the hop limit for
//!   expanding-ring locates.
//!
//! The fault model covers everything the ICDCS '93 paper assumes or
//! evaluates: host crashes (fail-stop), **clean network partitions**,
//! probabilistic packet loss and duplication, latency jitter — and, on
//! internetworks, router crashes via [`Network::set_down`].
//!
//! See [`Network`] for the medium, [`NodeStack`] for a host's view of it,
//! [`Topology`] for internetwork wiring, [`wire`] for the explicit byte
//! codec used by the protocol layers, and [`bytes`] for the zero-copy
//! [`Payload`] buffers every layer exchanges.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod addr;
pub mod bytes;
mod network;
mod packet;
mod params;
mod port;
mod stack;
mod stats;
mod topology;
pub mod wire;

pub use addr::{Dest, GroupAddr, HostAddr};
pub use bytes::Payload;
pub use network::Network;
pub use packet::Packet;
pub use params::NetParams;
pub use port::Port;
pub use stack::NodeStack;
pub use stats::{NetStats, SegmentStats};
pub use topology::{RouterSpec, SegmentId, SegmentSpec, Topology};

//! # amoeba-flip — simulated FLIP internetwork
//!
//! A deterministic model of the network substrate the Amoeba directory
//! service ran on: a 10 Mbit/s Ethernet carrying FLIP packets, with
//! unicast, true multicast (one packet on the wire reaches every group
//! member, the property Amoeba's group communication exploits), and
//! broadcast (used by the RPC locate protocol).
//!
//! The fault model covers everything the ICDCS '93 paper assumes or
//! evaluates: host crashes (fail-stop), **clean network partitions**,
//! probabilistic packet loss and duplication, and latency jitter.
//!
//! See [`Network`] for the medium, [`NodeStack`] for a host's view of it,
//! [`wire`] for the explicit byte codec used by the protocol layers, and
//! [`bytes`] for the zero-copy [`Payload`] buffers every layer exchanges.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod addr;
pub mod bytes;
mod network;
mod packet;
mod params;
mod port;
mod stack;
mod stats;
pub mod wire;

pub use addr::{Dest, GroupAddr, HostAddr};
pub use bytes::Payload;
pub use network::Network;
pub use packet::Packet;
pub use params::NetParams;
pub use port::Port;
pub use stack::NodeStack;
pub use stats::NetStats;

//! The per-host protocol stack: port binding and transmission.

use amoeba_sim::MailboxRx;

use crate::addr::{Dest, GroupAddr, HostAddr};
use crate::bytes::Payload;
use crate::network::Network;
use crate::packet::Packet;
use crate::port::Port;
use crate::topology::SegmentId;

/// A host's attachment to the network.
///
/// Cloning is cheap; clones refer to the same host. Binding a port yields a
/// mailbox of incoming [`Packet`]s; binding an already-bound port replaces
/// the previous binding (used when a crashed machine reboots).
#[derive(Clone)]
pub struct NodeStack {
    addr: HostAddr,
    net: Network,
}

impl std::fmt::Debug for NodeStack {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "NodeStack({})", self.addr)
    }
}

impl NodeStack {
    pub(crate) fn new(addr: HostAddr, net: Network) -> Self {
        NodeStack { addr, net }
    }

    /// This host's unicast address.
    pub fn addr(&self) -> HostAddr {
        self.addr
    }

    /// The network this stack is attached to.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// The segment this host is attached to.
    pub fn segment(&self) -> SegmentId {
        self.net.segment_of(self.addr).unwrap_or(SegmentId(0))
    }

    /// The TTL that reaches every host of the internetwork (topology
    /// diameter + 1); 1 on a flat single-segment network. The upper
    /// bound of an expanding-ring locate.
    pub fn max_hops(&self) -> u8 {
        self.net.max_hops()
    }

    /// Binds `port`, returning the mailbox that receives its packets.
    /// Replaces any previous binding for the port.
    pub fn bind(&self, port: Port) -> MailboxRx<Packet> {
        let (tx, rx) = self.net.handle().channel::<Packet>();
        if let Some(table) = self.net.endpoints_of(self.addr) {
            table.lock().insert(port, tx);
        }
        rx
    }

    /// Removes the binding for `port`; subsequent packets are dropped.
    pub fn unbind(&self, port: Port) {
        if let Some(table) = self.net.endpoints_of(self.addr) {
            table.lock().remove(&port);
        }
    }

    /// Whether anything is bound to `port` on this host.
    pub fn is_bound(&self, port: Port) -> bool {
        self.net
            .endpoints_of(self.addr)
            .map(|t| t.lock().contains_key(&port))
            .unwrap_or(false)
    }

    /// Joins a multicast group; future multicasts to it are delivered here.
    pub fn join_group(&self, group: GroupAddr) {
        self.net.join_group(self.addr, group);
    }

    /// Leaves a multicast group.
    pub fn leave_group(&self, group: GroupAddr) {
        self.net.leave_group(self.addr, group);
    }

    /// Transmits a packet to `dst`/`port` with the topology-default TTL
    /// (reaches every host). Delivery is asynchronous and subject to the
    /// network's fault model; there is no error reporting, exactly like
    /// a real datagram network.
    pub fn send(&self, dst: impl Into<Dest>, port: Port, payload: impl Into<Payload>) {
        self.net
            .transmit(Packet::new(self.addr, dst.into(), port, payload));
    }

    /// Like [`send`](NodeStack::send) but carrying causal-trace tags as
    /// out-of-band packet metadata (see [`Packet::trace`]). With telemetry
    /// off the tags are empty and this is exactly [`send`](NodeStack::send).
    pub fn send_traced(
        &self,
        dst: impl Into<Dest>,
        port: Port,
        payload: impl Into<Payload>,
        tags: Vec<(u64, amoeba_telemetry::TraceCtx)>,
    ) {
        self.net
            .transmit(Packet::new(self.addr, dst.into(), port, payload).with_trace(tags));
    }

    /// Like [`send`](NodeStack::send) but with an explicit hop limit:
    /// `ttl = 1` stays on the local segment, each additional unit allows
    /// one more router traversal. The expanding-ring locate widens this
    /// ring until a reply arrives.
    pub fn send_with_ttl(
        &self,
        dst: impl Into<Dest>,
        port: Port,
        payload: impl Into<Payload>,
        ttl: u8,
    ) {
        self.net
            .transmit(Packet::new(self.addr, dst.into(), port, payload).with_ttl(ttl.max(1)));
    }
}

//! Micro-benchmarks of the message pipeline (placeholder; filled in with
//! the zero-copy refactor).

fn main() {
    println!("pipeline bench: see crates/bench/src/bin/pipeline.rs");
}

//! Micro-benchmarks of the building blocks: wire codecs, capability
//! arithmetic, the deterministic PRNG, the simulation kernel's event
//! throughput, and the network model.
//!
//! These measure *real* (host) time — how fast the reproduction itself
//! runs — as opposed to the figure binaries, which report virtual time.
//!
//! Run with: `cargo bench -p amoeba-bench --bench primitives`

use std::hint::black_box;
use std::time::Duration;

use amoeba_bench::microbench::{bench, bench_with_setup};
use amoeba_dir_core::{Capability, DirOp, DirRequest, Rights};
use amoeba_flip::{NetParams, Network, Port};
use amoeba_group::GroupMsg;
use amoeba_sim::{SimRng, Simulation};

fn bench_wire_codecs() {
    let req = DirRequest::AppendRow {
        dir: Capability::owner(Port::from_name("dir"), 5, 77),
        name: "some-file-name".into(),
        cap: Capability::owner(Port::from_name("bullet"), 9, 31),
        col_rights: vec![Rights::ALL, Rights::NONE, Rights::column(1)],
    };
    bench("wire/dir_request_encode", || {
        black_box(req.encode());
    });
    let bytes = req.encode();
    bench("wire/dir_request_decode", || {
        black_box(DirRequest::decode(&bytes).unwrap());
    });
    let op = DirOp::Append {
        object: 5,
        name: "some-file-name".into(),
        cap: Capability::owner(Port::from_name("bullet"), 9, 31),
        col_rights: vec![Rights::ALL, Rights::NONE],
    };
    let op_bytes = op.encode();
    bench("wire/dir_op_roundtrip", || {
        black_box(DirOp::decode(&op_bytes).unwrap());
    });
    let accept = GroupMsg::Accept {
        instance: 1,
        incarnation: 0,
        seq: 42,
        from: amoeba_group::MemberId(1),
        from_tag: 1,
        msgid: 7,
        body: amoeba_group::AcceptBody::Data(vec![0u8; 256].into()),
    };
    let accept_bytes = accept.encode();
    bench("wire/group_accept_decode", || {
        black_box(GroupMsg::decode(&accept_bytes).unwrap());
    });
}

fn bench_capabilities() {
    let check = 0xDEAD_BEEF_u64;
    let owner = Capability::owner(Port::from_name("dir"), 7, check);
    bench("capability/restrict", || {
        black_box(owner.restrict(Rights::column(1)).unwrap());
    });
    let restricted = owner.restrict(Rights::column(1)).unwrap();
    bench("capability/validate", || {
        black_box(restricted.validate(check));
    });
}

fn bench_rng() {
    let mut rng = SimRng::new(1);
    bench("rng/next_u64", || {
        black_box(rng.next_u64());
    });
    let mut rng = SimRng::new(1);
    bench("rng/exp_nanos", || {
        black_box(rng.exp_nanos(1e6));
    });
}

fn bench_sim_kernel() {
    // Event throughput: two processes ping-ponging 1000 messages.
    bench_with_setup(
        "sim_kernel/ping_pong_1000",
        10,
        || (),
        |_| {
            let mut sim = Simulation::new(1);
            let (tx_a, rx_a) = sim.channel::<u32>();
            let (tx_b, rx_b) = sim.channel::<u32>();
            sim.spawn("a", move |ctx| {
                for i in 0..1000 {
                    tx_b.send(i);
                    let _ = rx_a.recv(ctx);
                }
            });
            sim.spawn("b", move |ctx| {
                for _ in 0..1000 {
                    let v = rx_b.recv(ctx);
                    tx_a.send(v);
                }
            });
            black_box(sim.run());
        },
    );
    // Many timers interleaving.
    bench_with_setup(
        "sim_kernel/sleepers_200",
        10,
        || (),
        |_| {
            let mut sim = Simulation::new(1);
            for i in 0..200u64 {
                sim.spawn(&format!("s{i}"), move |ctx| {
                    for _ in 0..5 {
                        ctx.sleep(Duration::from_micros(10 + i));
                    }
                });
            }
            black_box(sim.run());
        },
    );
}

fn bench_network_model() {
    bench_with_setup(
        "network_model/multicast_3hosts_100pkts",
        10,
        || (),
        |_| {
            let mut sim = Simulation::new(1);
            let net = Network::new(sim.handle(), NetParams::lan_10mbps(), 1);
            let g_addr = amoeba_flip::GroupAddr(1);
            let port = Port::from_name("bench");
            let sender = net.attach();
            let mut rxs = Vec::new();
            for _ in 0..3 {
                let s = net.attach();
                s.join_group(g_addr);
                rxs.push(s.bind(port));
            }
            sim.spawn("send", move |_| {
                for _ in 0..100 {
                    sender.send(g_addr, port, vec![0u8; 128]);
                }
            });
            for (i, rx) in rxs.into_iter().enumerate() {
                sim.spawn(&format!("r{i}"), move |ctx| {
                    for _ in 0..100 {
                        let _ = rx.recv(ctx);
                    }
                });
            }
            black_box(sim.run());
        },
    );
}

fn main() {
    bench_wire_codecs();
    bench_capabilities();
    bench_rng();
    bench_sim_kernel();
    bench_network_model();
}

//! Criterion micro-benchmarks of the building blocks: wire codecs,
//! capability arithmetic, the deterministic PRNG, the simulation kernel's
//! event throughput, and the network model.
//!
//! These measure *real* (host) time — how fast the reproduction itself
//! runs — as opposed to the figure binaries, which report virtual time.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use amoeba_dir_core::{Capability, DirOp, DirRequest, Rights};
use amoeba_flip::{NetParams, Network, Port};
use amoeba_group::GroupMsg;
use amoeba_sim::{SimRng, Simulation};

fn bench_wire_codecs(c: &mut Criterion) {
    let mut g = c.benchmark_group("wire");
    let req = DirRequest::AppendRow {
        dir: Capability::owner(Port::from_name("dir"), 5, 77),
        name: "some-file-name".into(),
        cap: Capability::owner(Port::from_name("bullet"), 9, 31),
        col_rights: vec![Rights::ALL, Rights::NONE, Rights::column(1)],
    };
    g.bench_function("dir_request_encode", |b| {
        b.iter(|| black_box(req.encode()))
    });
    let bytes = req.encode();
    g.bench_function("dir_request_decode", |b| {
        b.iter(|| black_box(DirRequest::decode(&bytes).unwrap()))
    });
    let op = DirOp::Append {
        object: 5,
        name: "some-file-name".into(),
        cap: Capability::owner(Port::from_name("bullet"), 9, 31),
        col_rights: vec![Rights::ALL, Rights::NONE],
    };
    let op_bytes = op.encode();
    g.bench_function("dir_op_roundtrip", |b| {
        b.iter(|| black_box(DirOp::decode(&op_bytes).unwrap()))
    });
    let accept = GroupMsg::Accept {
        instance: 1,
        incarnation: 0,
        seq: 42,
        from: amoeba_group::MemberId(1),
        from_tag: 1,
        msgid: 7,
        body: amoeba_group::AcceptBody::Data(vec![0u8; 256]),
    };
    let accept_bytes = accept.encode();
    g.bench_function("group_accept_decode", |b| {
        b.iter(|| black_box(GroupMsg::decode(&accept_bytes).unwrap()))
    });
    g.finish();
}

fn bench_capabilities(c: &mut Criterion) {
    let mut g = c.benchmark_group("capability");
    let check = 0xDEAD_BEEF_u64;
    let owner = Capability::owner(Port::from_name("dir"), 7, check);
    g.bench_function("restrict", |b| {
        b.iter(|| black_box(owner.restrict(Rights::column(1)).unwrap()))
    });
    let restricted = owner.restrict(Rights::column(1)).unwrap();
    g.bench_function("validate", |b| {
        b.iter(|| black_box(restricted.validate(check)))
    });
    g.finish();
}

fn bench_rng(c: &mut Criterion) {
    let mut g = c.benchmark_group("rng");
    g.bench_function("next_u64", |b| {
        let mut rng = SimRng::new(1);
        b.iter(|| black_box(rng.next_u64()))
    });
    g.bench_function("exp_nanos", |b| {
        let mut rng = SimRng::new(1);
        b.iter(|| black_box(rng.exp_nanos(1e6)))
    });
    g.finish();
}

fn bench_sim_kernel(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_kernel");
    g.sample_size(10);
    // Event throughput: two processes ping-ponging 1000 messages.
    g.bench_function("ping_pong_1000", |b| {
        b.iter_batched(
            || (),
            |_| {
                let mut sim = Simulation::new(1);
                let (tx_a, rx_a) = sim.channel::<u32>();
                let (tx_b, rx_b) = sim.channel::<u32>();
                sim.spawn("a", move |ctx| {
                    for i in 0..1000 {
                        tx_b.send(i);
                        let _ = rx_a.recv(ctx);
                    }
                });
                sim.spawn("b", move |ctx| {
                    for _ in 0..1000 {
                        let v = rx_b.recv(ctx);
                        tx_a.send(v);
                    }
                });
                black_box(sim.run());
            },
            BatchSize::PerIteration,
        )
    });
    // Many timers interleaving.
    g.bench_function("sleepers_200", |b| {
        b.iter_batched(
            || (),
            |_| {
                let mut sim = Simulation::new(1);
                for i in 0..200u64 {
                    sim.spawn(&format!("s{i}"), move |ctx| {
                        for _ in 0..5 {
                            ctx.sleep(Duration::from_micros(10 + i));
                        }
                    });
                }
                black_box(sim.run());
            },
            BatchSize::PerIteration,
        )
    });
    g.finish();
}

fn bench_network_model(c: &mut Criterion) {
    let mut g = c.benchmark_group("network_model");
    g.sample_size(10);
    g.bench_function("multicast_3hosts_100pkts", |b| {
        b.iter_batched(
            || (),
            |_| {
                let mut sim = Simulation::new(1);
                let net = Network::new(sim.handle(), NetParams::lan_10mbps(), 1);
                let g_addr = amoeba_flip::GroupAddr(1);
                let port = Port::from_name("bench");
                let sender = net.attach();
                let mut rxs = Vec::new();
                for _ in 0..3 {
                    let s = net.attach();
                    s.join_group(g_addr);
                    rxs.push(s.bind(port));
                }
                sim.spawn("send", move |_| {
                    for _ in 0..100 {
                        sender.send(g_addr, port, vec![0u8; 128]);
                    }
                });
                for (i, rx) in rxs.into_iter().enumerate() {
                    sim.spawn(&format!("r{i}"), move |ctx| {
                        for _ in 0..100 {
                            let _ = rx.recv(ctx);
                        }
                    });
                }
                black_box(sim.run());
            },
            BatchSize::PerIteration,
        )
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_wire_codecs,
    bench_capabilities,
    bench_rng,
    bench_sim_kernel,
    bench_network_model
);
criterion_main!(benches);

//! Benchmarks of whole simulated service operations: how much host time
//! one simulated directory operation costs, per variant. These gate
//! regressions in the protocol stack's real-time efficiency.
//!
//! Run with: `cargo bench -p amoeba-bench --bench service_ops`

use std::hint::black_box;
use std::time::Duration;

use amoeba_bench::microbench::bench_with_setup;
use amoeba_bench::testbed;
use amoeba_dir_core::cluster::Variant;
use amoeba_dir_core::Rights;

fn main() {
    for variant in [Variant::Group, Variant::GroupNvram, Variant::Nfs] {
        bench_with_setup(
            &format!("service_ops/lookup_{}", variant.label()),
            10,
            || {
                let mut tb = testbed(variant, 42);
                let client = tb.client.clone();
                let root = tb.root;
                let out = tb.sim.spawn("seed", move |ctx| {
                    client
                        .append_row(ctx, root, "t", root, vec![Rights::ALL, Rights::NONE])
                        .is_ok()
                });
                tb.sim.run_for(Duration::from_secs(10));
                assert_eq!(out.take(), Some(true));
                tb
            },
            |mut tb| {
                let client = tb.client.clone();
                let root = tb.root;
                let out = tb.sim.spawn("probe", move |ctx| {
                    for _ in 0..20 {
                        let _ = client.lookup(ctx, root, "t");
                    }
                });
                tb.sim.run_for(Duration::from_secs(30));
                black_box(out.is_ready());
            },
        );
    }
    bench_with_setup(
        "service_ops/append_delete_Group(3)",
        10,
        || testbed(Variant::Group, 42),
        |mut tb| {
            let client = tb.client.clone();
            let root = tb.root;
            let out = tb.sim.spawn("probe", move |ctx| {
                for i in 0..5 {
                    let _ = client.append_row(
                        ctx,
                        root,
                        &format!("x{i}"),
                        root,
                        vec![Rights::ALL, Rights::NONE],
                    );
                    let _ = client.delete_row(ctx, root, &format!("x{i}"));
                }
            });
            tb.sim.run_for(Duration::from_secs(30));
            black_box(out.is_ready());
        },
    );
}

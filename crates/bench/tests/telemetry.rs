//! End-to-end guarantees of the causal-tracing layer, checked against a
//! real group-replicated deployment:
//!
//! - one client write yields **one connected span tree** spanning client,
//!   sequencer, and replicas (no orphaned server-side work), and the
//!   Chrome-trace export of it validates;
//! - installing telemetry is **zero-perturbation**: the simulated run is
//!   bit-identical with tracing on or off.

use std::time::Duration;

use amoeba_bench::{testbed_traced, traced_update_burst};
use amoeba_dir_core::cluster::Variant;
use amoeba_dir_core::Rights;

#[test]
fn client_write_yields_one_connected_span_tree() {
    let (mut tb, tele) = testbed_traced(Variant::Group, 0x5BA9, |p| p.shards = 2);
    let client = tb.client.clone();
    let root = tb.root;
    let done = tb.sim.spawn("tree-writer", move |ctx| {
        client
            .create_in(
                ctx,
                root,
                "sub",
                &["owner", "other"],
                vec![Rights::ALL, Rights::ALL],
            )
            .is_ok()
    });
    tb.sim.run_for(Duration::from_secs(10));
    assert_eq!(done.take(), Some(true), "traced create_in must succeed");

    let spans = tele.spans();
    let root_span = spans
        .iter()
        .find(|s| s.name == "cli.create_in" && s.parent == 0)
        .expect("client root span");
    let (roots, orphans, machines) = amoeba_telemetry::span_tree_stats(&spans, root_span.trace);
    assert_eq!(roots, 1, "exactly one root in the write's trace");
    assert_eq!(orphans, 0, "every server-side span parents into the tree");
    assert!(
        machines >= 3,
        "write must cross client, sequencer, and replicas; saw {machines}"
    );
    // The same tree must survive the export round trip.
    let summary =
        amoeba_telemetry::validate_chrome_trace(&tele.export_chrome_json()).expect("valid export");
    assert!(summary.slices > 0 && summary.flow_pairs > 0);
}

#[test]
fn tracing_does_not_perturb_the_simulated_run() {
    let args = (
        3,
        Duration::from_millis(500),
        Duration::from_secs(2),
        0xF00D,
    );
    let off = traced_update_burst(false, args.0, args.1, args.2, args.3);
    let on = traced_update_burst(true, args.0, args.1, args.2, args.3);
    assert_eq!(
        (off.ops_per_sec.to_bits(), off.end),
        (on.ops_per_sec.to_bits(), on.end),
        "simulated clock and throughput must be bit-identical with tracing on"
    );
    assert_eq!(off.spans, 0, "untraced arm records nothing");
    assert!(on.spans > 0, "traced arm records the same run's spans");
    assert!(on.flows > 0, "traced arm records packet flow edges");
}

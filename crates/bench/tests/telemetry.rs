//! End-to-end guarantees of the causal-tracing layer, checked against a
//! real group-replicated deployment:
//!
//! - one client write yields **one connected span tree** spanning client,
//!   sequencer, and replicas (no orphaned server-side work), and the
//!   Chrome-trace export of it validates;
//! - installing telemetry is **zero-perturbation**: the simulated run is
//!   bit-identical with tracing on or off.

use std::time::Duration;

use amoeba_bench::{testbed_traced, traced_update_burst};
use amoeba_dir_core::cluster::Variant;
use amoeba_dir_core::Rights;

#[test]
fn client_write_yields_one_connected_span_tree() {
    let (mut tb, tele) = testbed_traced(Variant::Group, 0x5BA9, |p| p.shards = 2);
    let client = tb.client.clone();
    let root = tb.root;
    let done = tb.sim.spawn("tree-writer", move |ctx| {
        client
            .create_in(
                ctx,
                root,
                "sub",
                &["owner", "other"],
                vec![Rights::ALL, Rights::ALL],
            )
            .is_ok()
    });
    tb.sim.run_for(Duration::from_secs(10));
    assert_eq!(done.take(), Some(true), "traced create_in must succeed");

    let spans = tele.spans();
    let root_span = spans
        .iter()
        .find(|s| s.name == "cli.create_in" && s.parent == 0)
        .expect("client root span");
    let (roots, orphans, machines) = amoeba_telemetry::span_tree_stats(&spans, root_span.trace);
    assert_eq!(roots, 1, "exactly one root in the write's trace");
    assert_eq!(orphans, 0, "every server-side span parents into the tree");
    assert!(
        machines >= 3,
        "write must cross client, sequencer, and replicas; saw {machines}"
    );
    // The same tree must survive the export round trip.
    let summary =
        amoeba_telemetry::validate_chrome_trace(&tele.export_chrome_json()).expect("valid export");
    assert!(summary.slices > 0 && summary.flow_pairs > 0);
}

/// Every auxiliary subsystem — the ordered queue, the lock service,
/// and directory migration — must parent its server-side work into the
/// client op's trace: one root, no orphans, spans on more than one
/// machine, and the subsystem's own server span present in the tree.
#[test]
fn queue_lock_and_migration_ops_yield_connected_span_trees() {
    use amoeba_dir_core::ShardMap;

    let (mut tb, tele) = testbed_traced(Variant::Group, 0x10CC, |p| {
        p.shards = 2;
        p.queue_service = true;
        p.lock_service = true;
    });
    let (qc, _) = tb.cluster.queue_client(&tb.sim);
    let (lk, _) = tb.cluster.lock_client(&tb.sim);
    let client = tb.client.clone();
    let done = tb.sim.spawn("aux-ops", move |ctx| {
        let q = qc.enqueue(ctx, "jobs", b"payload".to_vec()).is_ok()
            && matches!(qc.dequeue(ctx, "jobs"), Ok(Some(_)));
        let l = lk.acquire(ctx, "leader", 7).is_ok() && lk.release(ctx, "leader", 7).is_ok();
        let map = ShardMap::new(2);
        let m = client
            .create_dir(ctx, &["owner", "other"])
            .ok()
            .and_then(|cap| {
                let here = map.shard_of_cap(&cap)?;
                client.migrate(ctx, cap, 1 - here).ok()
            })
            .is_some();
        (q, l, m)
    });
    tb.sim.run_for(Duration::from_secs(30));
    assert_eq!(
        done.take(),
        Some((true, true, true)),
        "queue, lock, and migration ops must all succeed"
    );

    let spans = tele.spans();
    for (root_name, srv_name) in [
        ("cli.q.enqueue", Some("queue.srv")),
        ("cli.q.dequeue", Some("queue.srv")),
        ("cli.lk.acquire", Some("lock.srv")),
        ("cli.lk.release", Some("lock.srv")),
        ("cli.migrate", None),
    ] {
        let root_span = spans
            .iter()
            .find(|s| s.name == root_name && s.parent == 0)
            .unwrap_or_else(|| panic!("{root_name} root span recorded"));
        let (roots, orphans, machines) = amoeba_telemetry::span_tree_stats(&spans, root_span.trace);
        assert_eq!(roots, 1, "{root_name}: exactly one root in the trace");
        assert_eq!(orphans, 0, "{root_name}: every span parents into the tree");
        assert!(
            machines >= 2,
            "{root_name}: op must cross client and server; saw {machines}"
        );
        if let Some(srv) = srv_name {
            assert!(
                spans
                    .iter()
                    .any(|s| s.trace == root_span.trace && s.name == srv),
                "{root_name}: trace must contain a {srv} server span"
            );
        }
    }
}

#[test]
fn tracing_does_not_perturb_the_simulated_run() {
    let args = (
        3,
        Duration::from_millis(500),
        Duration::from_secs(2),
        0xF00D,
    );
    let off = traced_update_burst(false, args.0, args.1, args.2, args.3);
    let on = traced_update_burst(true, args.0, args.1, args.2, args.3);
    assert_eq!(
        (off.ops_per_sec.to_bits(), off.end),
        (on.ops_per_sec.to_bits(), on.end),
        "simulated clock and throughput must be bit-identical with tracing on"
    );
    assert_eq!(off.spans, 0, "untraced arm records nothing");
    assert!(on.spans > 0, "traced arm records the same run's spans");
    assert!(on.flows > 0, "traced arm records packet flow edges");
}

//! Raw group-communication throughput: the message pipeline measured at
//! the `SendToGroup` layer, below the directory service (whose update
//! path is disk-apply-bound and so hides network-protocol cost).
//!
//! This is where sequencer accept-batching and cumulative acks show up
//! on the simulated clock: the sequencer's NIC serializes per-packet
//! protocol CPU, so coalescing k accepts into one multicast (and k acks
//! into one) raises messages/second and lowers packets/message — the
//! §3.1-style protocol cost the paper counts.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use amoeba_flip::{NetParams, Network, Port, SegmentId, Topology};
use amoeba_group::{Group, GroupConfig, GroupEvent, GroupPeer};
use amoeba_sim::Simulation;

/// Result of one group-layer throughput run.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupPipelineResult {
    /// Application messages delivered per simulated second (at member 0).
    pub msgs_per_sec: f64,
    /// Network packets per delivered message over the window (§3.1-style
    /// protocol cost; lower is better) — origin sends only, so flat and
    /// routed runs are directly comparable.
    pub packets_per_msg: f64,
    /// Router store-and-forward retransmissions over the window (0 on a
    /// flat network).
    pub packets_forwarded: u64,
    /// Store-and-forwards per delivered message.
    pub forwarded_per_msg: f64,
    /// Per-segment wire utilization over the window: (segment name,
    /// busy fraction).
    pub seg_utilization: Vec<(String, f64)>,
}

/// [`group_send_throughput_on`] plus the kernel decision trace: the
/// same run under [`Simulation::recording`], for the record-overhead
/// A/B. Because recording must never perturb the kernel's decisions,
/// the simulated-clock numbers are required to match the untraced run
/// bit for bit — what differs is host time and the trace itself.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordedGroupPipeline {
    /// The simulated-clock result (identical to the untraced run).
    pub result: GroupPipelineResult,
    /// Kernel decisions recorded over the whole run.
    pub trace_steps: usize,
    /// Serialized trace size in bytes.
    pub trace_bytes: usize,
}

/// [`group_send_throughput_on`] over the degenerate flat topology.
pub fn group_send_throughput(
    max_batch: usize,
    members: usize,
    senders_per_member: usize,
    payload_len: usize,
    resilience: u32,
    seed: u64,
) -> GroupPipelineResult {
    group_send_throughput_on(
        Topology::single(),
        &[],
        max_batch,
        members,
        senders_per_member,
        payload_len,
        resilience,
        seed,
    )
}

/// [`group_send_throughput`] with kernel-trace recording on.
pub fn group_send_throughput_recorded(
    max_batch: usize,
    members: usize,
    senders_per_member: usize,
    payload_len: usize,
    resilience: u32,
    seed: u64,
) -> RecordedGroupPipeline {
    let (result, trace) = run_group_send(
        Topology::single(),
        &[],
        max_batch,
        members,
        senders_per_member,
        payload_len,
        resilience,
        seed,
        true,
    );
    let trace = trace.expect("recording run yields a trace");
    RecordedGroupPipeline {
        result,
        trace_steps: trace.steps.len(),
        trace_bytes: trace.to_bytes().len(),
    }
}

/// Runs `members` group members placed on `topology`'s segments
/// (`placement[i % len]` is member `i`'s segment; empty = everything on
/// segment 0); every non-sequencer member runs `senders_per_member`
/// closed-loop sender processes of `payload_len`-byte messages for a
/// fixed simulated window. Reports delivered throughput, packet cost,
/// and — on routed topologies — forwarding volume and per-segment wire
/// utilization. `max_batch` is the sequencer batching knob under test.
#[allow(clippy::too_many_arguments)]
pub fn group_send_throughput_on(
    topology: Topology,
    placement: &[SegmentId],
    max_batch: usize,
    members: usize,
    senders_per_member: usize,
    payload_len: usize,
    resilience: u32,
    seed: u64,
) -> GroupPipelineResult {
    run_group_send(
        topology,
        placement,
        max_batch,
        members,
        senders_per_member,
        payload_len,
        resilience,
        seed,
        false,
    )
    .0
}

#[allow(clippy::too_many_arguments)]
fn run_group_send(
    topology: Topology,
    placement: &[SegmentId],
    max_batch: usize,
    members: usize,
    senders_per_member: usize,
    payload_len: usize,
    resilience: u32,
    seed: u64,
    record: bool,
) -> (GroupPipelineResult, Option<amoeba_sim::SimTrace>) {
    let mut sim = if record {
        Simulation::recording(seed)
    } else {
        Simulation::new(seed)
    };
    let net = Network::with_topology(sim.handle(), NetParams::lan_10mbps(), topology, seed);
    let mut cfg = GroupConfig::with_resilience(resilience);
    cfg.max_batch = max_batch;
    let port = Port::from_name("bench-group");

    let t_start = Duration::from_secs(1);
    let window = Duration::from_secs(2);
    let t_end = t_start + window;
    let delivered = Arc::new(AtomicU64::new(0));

    for i in 0..members {
        let sim_node = sim.add_node(&format!("m{i}"));
        let seg = if placement.is_empty() {
            SegmentId(0)
        } else {
            placement[i % placement.len()]
        };
        let stack = net.attach_to(seg);
        let peer = GroupPeer::start(&sim, sim_node, stack, cfg.clone());
        let delivered = Arc::clone(&delivered);
        sim.spawn_on(sim_node, &format!("app{i}"), move |ctx| {
            let g = if i == 0 {
                peer.create(port, i as u64)
            } else {
                ctx.sleep(Duration::from_millis(10 * i as u64));
                peer.join(ctx, port, i as u64, Duration::from_secs(5))
                    .expect("join failed")
            };
            while g.info().unwrap().view.len() < members {
                ctx.sleep(Duration::from_millis(5));
            }
            let g = Arc::new(g);
            // Extra pipelined senders, only on non-sequencer machines:
            // remote senders are flow-controlled by their own accept
            // round-trip, while a sequencer-local r = 0 send completes
            // without touching the network and would flood it open-loop.
            if i != 0 {
                for s in 1..senders_per_member {
                    let g = Arc::clone(&g);
                    ctx.spawn(&format!("send{i}-{s}"), move |ctx| {
                        sender_loop(&g, ctx, payload_len, t_end);
                    });
                }
            }
            if i == 0 {
                // Member 0 counts deliveries inside the window; its own
                // sends ride on the extra sender processes only.
                loop {
                    let now = ctx.now();
                    if now.saturating_since(amoeba_sim::SimTime::ZERO) >= t_end {
                        break;
                    }
                    match g.recv_timeout(ctx, Duration::from_millis(100)) {
                        Some(Ok(GroupEvent::Message { .. })) => {
                            let t = ctx.now().saturating_since(amoeba_sim::SimTime::ZERO);
                            if t >= t_start && t < t_end {
                                delivered.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Some(Ok(_)) => {}
                        Some(Err(e)) => panic!("group error during bench: {e}"),
                        None => {}
                    }
                }
            } else {
                sender_loop(&g, ctx, payload_len, t_end);
            }
        });
    }

    sim.run_for(t_start);
    let stats_start = net.stats();
    sim.run_for(window);
    let stats_end = net.stats();
    sim.run_for(Duration::from_secs(1)); // drain
    let msgs = delivered.load(Ordering::Relaxed);
    let d = stats_end.since(&stats_start);
    let per_msg = |count: u64| {
        if msgs == 0 {
            f64::NAN
        } else {
            count as f64 / msgs as f64
        }
    };
    let trace = sim.take_recording();
    (
        GroupPipelineResult {
            msgs_per_sec: msgs as f64 / window.as_secs_f64(),
            packets_per_msg: per_msg(d.packets_sent),
            packets_forwarded: d.packets_forwarded,
            forwarded_per_msg: per_msg(d.packets_forwarded),
            seg_utilization: d
                .segments
                .iter()
                .map(|s| {
                    (
                        s.name.clone(),
                        s.wire_busy_nanos as f64 / window.as_nanos() as f64,
                    )
                })
                .collect(),
        },
        trace,
    )
}

fn sender_loop(g: &Group, ctx: &amoeba_sim::Ctx, payload_len: usize, t_end: Duration) {
    let payload = vec![0xA5u8; payload_len];
    loop {
        if ctx.now().saturating_since(amoeba_sim::SimTime::ZERO) >= t_end {
            return;
        }
        if g.send(ctx, payload.clone()).is_err() {
            ctx.sleep(Duration::from_millis(10));
        }
        // Application think time. Also keeps virtual time advancing for
        // a sender co-located with the sequencer, whose r = 0 sends
        // complete synchronously (the local apply needs no network
        // round-trip).
        ctx.sleep(Duration::from_micros(200));
    }
}

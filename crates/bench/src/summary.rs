//! Machine-readable benchmark summaries (`BENCH_*.json`).
//!
//! Hand-rolled JSON emission (the build environment has no serde): the
//! file is a single object with a `runs` array; each run records a label
//! (e.g. a refactor stage), per-variant throughput and latency on the
//! simulated clock, and optional host-time micro-benchmark results, so
//! future PRs can diff against any earlier stage and detect regressions.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// One measured service variant in a run.
#[derive(Debug, Clone, PartialEq)]
pub struct VariantSummary {
    /// Variant label (e.g. `Group(3)`).
    pub variant: String,
    /// Closed-loop clients used for the throughput window.
    pub n_clients: usize,
    /// Completed lookups per simulated second.
    pub lookup_ops_per_sec: f64,
    /// Completed append+delete pairs per simulated second (the
    /// sequencer-bound workload that accept batching amortizes).
    pub update_ops_per_sec: f64,
    /// Mean lookup latency in simulated milliseconds.
    pub lookup_latency_ms: f64,
    /// Mean append+delete pair latency in simulated milliseconds.
    pub update_latency_ms: f64,
}

/// One labelled benchmark run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunSummary {
    /// What this run measures (e.g. `baseline-pre-zero-copy`).
    pub label: String,
    /// Per-variant simulated-clock results.
    pub variants: Vec<VariantSummary>,
    /// Group-layer pipeline results: (config label, delivered msgs per
    /// simulated second, packets per message).
    pub group_pipeline: Vec<(String, f64, f64)>,
    /// Network-model counters: (name, value) — packets forwarded,
    /// per-segment wire utilization, and similar internetwork metrics.
    pub network: Vec<(String, f64)>,
    /// Host-time micro-benchmarks: (name, ns/op).
    pub micro: Vec<(String, f64)>,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_owned()
    }
}

impl RunSummary {
    fn to_json(&self, indent: &str) -> String {
        let mut s = String::new();
        let i2 = format!("{indent}  ");
        let i3 = format!("{indent}    ");
        let _ = writeln!(s, "{indent}{{");
        let _ = writeln!(s, "{i2}\"label\": \"{}\",", json_escape(&self.label));
        let _ = writeln!(s, "{i2}\"variants\": [");
        for (k, v) in self.variants.iter().enumerate() {
            let comma = if k + 1 < self.variants.len() { "," } else { "" };
            let _ = writeln!(
                s,
                "{i3}{{\"variant\": \"{}\", \"n_clients\": {}, \"lookup_ops_per_sec\": {}, \
                 \"update_ops_per_sec\": {}, \"lookup_latency_ms\": {}, \
                 \"update_latency_ms\": {}}}{comma}",
                json_escape(&v.variant),
                v.n_clients,
                fmt_f64(v.lookup_ops_per_sec),
                fmt_f64(v.update_ops_per_sec),
                fmt_f64(v.lookup_latency_ms),
                fmt_f64(v.update_latency_ms),
            );
        }
        let _ = writeln!(s, "{i2}],");
        let _ = writeln!(s, "{i2}\"group_pipeline\": [");
        for (k, (name, mps, ppm)) in self.group_pipeline.iter().enumerate() {
            let comma = if k + 1 < self.group_pipeline.len() {
                ","
            } else {
                ""
            };
            let _ = writeln!(
                s,
                "{i3}{{\"config\": \"{}\", \"msgs_per_sec\": {}, \"packets_per_msg\": {}}}{comma}",
                json_escape(name),
                fmt_f64(*mps),
                fmt_f64(*ppm),
            );
        }
        let _ = writeln!(s, "{i2}],");
        let _ = writeln!(s, "{i2}\"network\": [");
        for (k, (name, v)) in self.network.iter().enumerate() {
            let comma = if k + 1 < self.network.len() { "," } else { "" };
            let _ = writeln!(
                s,
                "{i3}{{\"name\": \"{}\", \"value\": {}}}{comma}",
                json_escape(name),
                fmt_f64(*v),
            );
        }
        let _ = writeln!(s, "{i2}],");
        let _ = writeln!(s, "{i2}\"micro\": [");
        for (k, (name, ns)) in self.micro.iter().enumerate() {
            let comma = if k + 1 < self.micro.len() { "," } else { "" };
            let _ = writeln!(
                s,
                "{i3}{{\"name\": \"{}\", \"ns_per_op\": {}}}{comma}",
                json_escape(name),
                fmt_f64(*ns),
            );
        }
        let _ = writeln!(s, "{i2}]");
        let _ = write!(s, "{indent}}}");
        s
    }
}

const FOOTER: &str = "\n  ]\n}\n";

/// Appends `run` to the summary file at `path`, creating it if absent.
///
/// The file layout is fixed by this writer, which lets the append splice
/// before the footer without a JSON parser.
///
/// # Errors
///
/// Propagates I/O errors; fails if an existing file was not produced by
/// this writer.
pub fn append_run(path: &Path, bench_name: &str, run: &RunSummary) -> io::Result<()> {
    let run_json = run.to_json("    ");
    let text = match fs::read_to_string(path) {
        Ok(existing) => {
            let stem = existing.strip_suffix(FOOTER).ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("{} was not produced by this writer", path.display()),
                )
            })?;
            format!("{stem},\n{run_json}{FOOTER}")
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => format!(
            "{{\n  \"bench\": \"{}\",\n  \"runs\": [\n{run_json}{FOOTER}",
            json_escape(bench_name)
        ),
        Err(e) => return Err(e),
    };
    fs::write(path, text)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(label: &str) -> RunSummary {
        RunSummary {
            label: label.into(),
            variants: vec![VariantSummary {
                variant: "Group(3)".into(),
                n_clients: 5,
                lookup_ops_per_sec: 123.4,
                update_ops_per_sec: 55.0,
                lookup_latency_ms: 5.1,
                update_latency_ms: 31.0,
            }],
            group_pipeline: vec![("members=3/batch=16".into(), 900.0, 2.5)],
            network: vec![("internetwork/routed/packets_forwarded".into(), 321.0)],
            micro: vec![("encode".into(), 42.5)],
        }
    }

    #[test]
    fn create_then_append_round_trips() {
        let dir = std::env::temp_dir().join(format!("bench-summary-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_test.json");
        let _ = fs::remove_file(&path);
        append_run(&path, "pipeline", &sample("baseline")).unwrap();
        append_run(&path, "pipeline", &sample("after")).unwrap();
        let text = fs::read_to_string(&path).unwrap();
        assert_eq!(text.matches("\"label\"").count(), 2);
        assert!(text.ends_with(FOOTER));
        assert!(text.starts_with("{\n  \"bench\": \"pipeline\""));
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn append_to_foreign_file_fails() {
        let dir = std::env::temp_dir().join(format!("bench-summary-f-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_foreign.json");
        fs::write(&path, "{}").unwrap();
        assert!(append_run(&path, "pipeline", &sample("x")).is_err());
        fs::remove_file(&path).unwrap();
    }
}

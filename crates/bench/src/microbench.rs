//! A tiny host-time micro-benchmark harness (offline criterion stand-in).
//!
//! Measures *real* (host) time: how fast the reproduction itself runs, as
//! opposed to the figure binaries, which report virtual time. Results are
//! printed one line per benchmark as `name  <mean>  ns/op  (<iters> iters)`
//! and also returned so callers can write machine-readable summaries.

use std::time::{Duration, Instant};

/// The outcome of one micro-benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// Benchmark name.
    pub name: String,
    /// Mean wall-clock nanoseconds per operation.
    pub ns_per_op: f64,
    /// Number of timed iterations.
    pub iters: u64,
}

/// Times `f`, auto-scaling the iteration count until the timed run lasts
/// at least `budget`. Returns the mean ns/op and prints a summary line.
pub fn bench_for(name: &str, budget: Duration, mut f: impl FnMut()) -> BenchResult {
    // Warm-up and calibration: double iterations until the budget is hit.
    let mut iters: u64 = 1;
    let elapsed = loop {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        let dt = t0.elapsed();
        if dt >= budget || iters >= 1 << 30 {
            break dt;
        }
        let grow = (budget.as_secs_f64() / dt.as_secs_f64().max(1e-9)).clamp(1.5, 16.0);
        iters = ((iters as f64 * grow) as u64).max(iters + 1);
    };
    let ns_per_op = elapsed.as_nanos() as f64 / iters as f64;
    println!("{name:<44} {ns_per_op:>14.1} ns/op   ({iters} iters)");
    BenchResult {
        name: name.to_owned(),
        ns_per_op,
        iters,
    }
}

/// [`bench_for`] with the default 200 ms budget.
pub fn bench(name: &str, f: impl FnMut()) -> BenchResult {
    bench_for(name, Duration::from_millis(200), f)
}

/// Times `samples` runs of `setup`+`routine`, charging only the routine.
/// For benchmarks whose per-iteration state is expensive to build.
pub fn bench_with_setup<S>(
    name: &str,
    samples: u64,
    mut setup: impl FnMut() -> S,
    mut routine: impl FnMut(S),
) -> BenchResult {
    let mut total = Duration::ZERO;
    for _ in 0..samples {
        let state = setup();
        let t0 = Instant::now();
        routine(state);
        total += t0.elapsed();
    }
    let ns_per_op = total.as_nanos() as f64 / samples.max(1) as f64;
    println!("{name:<44} {ns_per_op:>14.1} ns/op   ({samples} samples)");
    BenchResult {
        name: name.to_owned(),
        ns_per_op,
        iters: samples,
    }
}

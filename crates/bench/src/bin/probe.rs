//! Diagnostic: real-time cost of each harness phase. Useful when tuning
//! the calibration; not part of the figure set.

use std::time::{Duration, Instant};

use amoeba_bench::{append_delete_pair, testbed};
use amoeba_dir_core::cluster::Variant;

fn main() {
    let t = Instant::now();
    let mut tb = testbed(Variant::Group, 7);
    println!(
        "testbed formed: real={:?} virtual={}",
        t.elapsed(),
        tb.sim.now()
    );
    let t = Instant::now();
    let client = tb.client.clone();
    let root = tb.root;
    let out = tb.sim.spawn("probe", move |ctx| {
        for i in 0..3 {
            let t0 = ctx.now();
            assert!(append_delete_pair(ctx, &client, root, format!("p{i}")));
            println!("pair {i}: {:?}", ctx.now() - t0);
        }
    });
    amoeba_bench::run_until_ready(&mut tb, &out, Duration::from_secs(120));
    println!(
        "pairs done: ready={} real={:?} virtual={}",
        out.is_ready(),
        t.elapsed(),
        tb.sim.now()
    );
}

//! Regenerates the paper's **Fig. 8**: total lookup throughput against
//! number of clients, for the group service, the group+NVRAM service and
//! the RPC service.
//!
//! Paper anchors: ~200 lookups/s per client at low load (5 ms per
//! lookup); the RPC service saturates around 520/s, the group services
//! around 627–652/s; upper bounds 666/s (2 servers) and 1000/s
//! (3 servers at ~3 ms CPU per lookup).
//!
//! Run with: `cargo run -p amoeba-bench --bin fig8 --release`

use std::time::Duration;

use amoeba_bench::{lookup_once, testbed, throughput};
use amoeba_dir_core::cluster::Variant;
use amoeba_dir_core::Rights;

fn main() {
    println!("Fig. 8 — lookup throughput (operations/second) vs number of clients");
    println!(
        "{:<8} {:>14} {:>16} {:>14}",
        "clients", "Group(3)", "Group+NVRAM(3)", "RPC(2)"
    );
    let clients = [1usize, 2, 3, 4, 5, 6, 7];
    let mut results: Vec<Vec<f64>> = Vec::new();
    for variant in [Variant::Group, Variant::GroupNvram, Variant::Rpc] {
        let mut series = Vec::new();
        for &n in &clients {
            series.push(run_point(variant, n));
        }
        results.push(series);
    }
    for (i, &n) in clients.iter().enumerate() {
        println!(
            "{:<8} {:>14.0} {:>16.0} {:>14.0}",
            n, results[0][i], results[1][i], results[2][i]
        );
    }
    println!();
    println!(
        "paper saturation: Group ≈ 652/s (headline 627/s), RPC ≈ 520/s; \
         measured saturation: Group ≈ {:.0}/s, RPC ≈ {:.0}/s",
        results[0][6], results[2][6]
    );
}

fn run_point(variant: Variant, n_clients: usize) -> f64 {
    let mut tb = testbed(variant, 0xF18 + n_clients as u64);
    // Seed the name being looked up.
    {
        let client = tb.client.clone();
        let root = tb.root;
        let out = tb.sim.spawn("seed", move |ctx| {
            client
                .append_row(ctx, root, "target", root, vec![Rights::ALL, Rights::NONE])
                .is_ok()
        });
        tb.sim.run_for(Duration::from_secs(10));
        assert_eq!(out.take(), Some(true));
    }
    throughput(
        &mut tb,
        n_clients,
        Duration::from_secs(1),
        Duration::from_secs(5),
        |ctx, client, root, _c, _k| lookup_once(ctx, client, root, "target"),
    )
}

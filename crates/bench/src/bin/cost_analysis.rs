//! Regenerates the paper's **§3.1 cost analysis**: packets and disk
//! operations per directory update for the group and RPC services.
//!
//! Paper: a `SendToGroup` with r = 2 costs **5 packets** while an Amoeba
//! RPC costs 3; the group update path performs **2 disk operations per
//! server** (new Bullet file + object-table write) while the RPC path adds
//! an intentions-log write; "the cost of sending a message is an order of
//! magnitude less than the cost of performing a disk operation".
//!
//! Run with: `cargo run -p amoeba-bench --bin cost_analysis --release`

use std::time::Duration;

use amoeba_bench::testbed_with;
use amoeba_dir_core::cluster::Variant;
use amoeba_dir_core::Rights;

fn main() {
    println!("§3.1 cost analysis — per append operation, paper vs measured");
    println!();
    for variant in [Variant::Group, Variant::Rpc] {
        let (pkts, disk_per_server) = run_variant(variant);
        println!("{}:", variant.label());
        match variant {
            Variant::Group => {
                println!("  packets on the wire     measured {pkts:>5.1}   (expected 19:");
                println!("      5 SendToGroup r=2 (paper's headline count)");
                println!("    + 2 client RPC + 3 replicas × (2 Bullet create + 2 delete))");
                println!(
                    "  disk ops per server     measured {disk_per_server:>5.1}   (paper: 2 — Bullet file + table write)"
                );
            }
            _ => {
                println!("  packets on the wire     measured {pkts:>5.1}   (expected 14:");
                println!("      3-packet Amoeba RPC modelled as 2 (request+reply)");
                println!("    + 2 client + 2 intent + 2+2 Bullet + 2 lazy + 2 peer Bullet)");
                println!(
                    "  disk ops per server     measured {disk_per_server:>5.1}   (paper: 3 incl. the intentions write,"
                );
                println!(
                    "      which this model charges as log-append latency, not a table write)"
                );
            }
        }
        println!();
    }
    println!("Cost ratio check: one packet ≈ 1 ms; one disk op ≈ 41 ms — the");
    println!("order-of-magnitude gap §3.1's argument rests on.");
}

fn run_variant(variant: Variant) -> (f64, f64) {
    // Quiet liveness traffic so the packet counts are clean.
    let mut tb = testbed_with(variant, 0x0C057, |p| {
        p.group.heartbeat_interval = Duration::from_secs(120);
        p.group.failure_timeout = Duration::from_secs(600);
    });
    let iters = 10usize;
    let servers = variant.servers() as f64;
    let net = tb.cluster.net.clone();
    let disks: Vec<_> = tb.cluster.columns.iter().map(|c| c.vdisk.clone()).collect();
    let client = tb.client.clone();
    let root = tb.root;
    let out = tb.sim.spawn("cost-probe", move |ctx| {
        // Warmup.
        client
            .append_row(ctx, root, "warm", root, vec![Rights::ALL, Rights::NONE])
            .unwrap();
        ctx.sleep(Duration::from_millis(500)); // drain lazy replication
        let pkts0 = net.stats().packets_sent;
        let disk0: u64 = disks.iter().map(|d| d.stats().writes).sum();
        for i in 0..iters {
            client
                .append_row(
                    ctx,
                    root,
                    &format!("c{i}"),
                    root,
                    vec![Rights::ALL, Rights::NONE],
                )
                .unwrap();
        }
        ctx.sleep(Duration::from_millis(500)); // let lazy applies land
        let pkts = net.stats().packets_sent - pkts0;
        let disk: u64 = disks.iter().map(|d| d.stats().writes).sum::<u64>() - disk0;
        (pkts as f64 / iters as f64, disk as f64 / iters as f64)
    });
    amoeba_bench::run_until_ready(&mut tb, &out, Duration::from_secs(120));
    let (pkts, disk_total) = out.take().expect("cost probe finished");
    (pkts, disk_total / servers)
}

//! Regenerates the paper's **Fig. 7**: single-client latency of three
//! operations across the four implementations.
//!
//! ```text
//! Operation         Group(3)  RPC(2)  NFS(1)  Group+NVRAM(3)
//! Append-delete        184      192      87        27
//! Tmp file             215      277     111        52
//! Directory lookup       5        5       6         5
//! ```
//!
//! Run with: `cargo run -p amoeba-bench --bin fig7 --release`

use std::time::Duration;

use amoeba_bench::{append_delete_pair, mean_latency_ms, testbed};
use amoeba_bullet::BulletClient;
use amoeba_dir_core::cluster::Variant;
use amoeba_dir_core::{Rights, ServiceConfig};
use amoeba_disk::{DiskParams, DiskServer, VDisk};
use amoeba_rpc::RpcNode;

fn main() {
    println!("Fig. 7 — latency of directory operations (ms), paper vs measured");
    println!(
        "{:<18} {:>12} {:>10} {:>10}",
        "operation", "variant", "paper", "measured"
    );
    let variants = [
        (Variant::Group, 184.0, 215.0, 5.0),
        (Variant::Rpc, 192.0, 277.0, 5.0),
        (Variant::Nfs, 87.0, 111.0, 6.0),
        (Variant::GroupNvram, 27.0, 52.0, 5.0),
    ];
    for (variant, paper_ad, paper_tmp, paper_lookup) in variants {
        let (ad, tmp, lookup) = run_variant(variant);
        println!(
            "{:<18} {:>12} {:>10} {:>10.1}",
            "append-delete",
            variant.label(),
            paper_ad,
            ad
        );
        println!(
            "{:<18} {:>12} {:>10} {:>10.1}",
            "tmp file",
            variant.label(),
            paper_tmp,
            tmp
        );
        println!(
            "{:<18} {:>12} {:>10} {:>10.1}",
            "lookup",
            variant.label(),
            paper_lookup,
            lookup
        );
    }
}

fn run_variant(variant: Variant) -> (f64, f64, f64) {
    let mut tb = testbed(variant, 0xF167 ^ variant.servers() as u64);

    // --- Append-delete pair ---------------------------------------
    let ad = mean_latency_ms(&mut tb, 10, move |ctx, client, root, i| {
        let _ = append_delete_pair(ctx, client, root, format!("ad{i}"));
    });

    // --- Directory lookup (cached) --------------------------------
    let seed_name = "lookup-target";
    {
        let client = tb.client.clone();
        let root = tb.root;
        let out = tb.sim.spawn("seed", move |ctx| {
            client
                .append_row(ctx, root, seed_name, root, vec![Rights::ALL, Rights::NONE])
                .is_ok()
        });
        tb.sim.run_for(Duration::from_secs(10));
        assert_eq!(out.take(), Some(true));
    }
    let lookup = mean_latency_ms(&mut tb, 20, move |ctx, client, root, _| {
        let _ = client.lookup(ctx, root, seed_name);
    });

    // --- Tmp file --------------------------------------------------
    // Create a 4-byte file, register its capability, look up the name,
    // read the file back, delete the name (the paper's compiler-phases
    // scenario). The file service: Bullet of column 0 for the Amoeba
    // variants; a buffered (instant-disk) file server for the NFS-like
    // variant (UNIX writes /usr/tmp data asynchronously).
    let cfg = ServiceConfig::new(variant.servers(), 0);
    let file_service = match variant {
        Variant::Nfs => {
            // Attach a buffered file server next to the NFS machine.
            let node = tb.sim.add_node("nfs-filesrv");
            let stack = tb.cluster.net.attach();
            let rpc = RpcNode::start(&tb.sim, node, stack);
            let port = amoeba_flip::Port::from_name("nfs.files");
            let disk = VDisk::new(4096, 4096);
            let dsrv = DiskServer::start(&tb.sim, node, disk, DiskParams::instant());
            let store = amoeba_bullet::BulletStore::new(4096, 4096, 17);
            amoeba_bullet::start_bullet_server(&tb.sim, node, &rpc, port, dsrv, store, 0, 2);
            port
        }
        _ => cfg.bullet_port(0),
    };
    let (client, rpc_client, _node) = tb.cluster.client_machine(&tb.sim);
    let files = BulletClient::new(rpc_client, file_service);
    let root = tb.root;
    let out = tb.sim.spawn("tmpfile-probe", move |ctx| {
        let mut total = Duration::ZERO;
        let iters = 8;
        for i in 0..=iters {
            let t0 = ctx.now();
            let fcap = files.create(ctx, vec![0xAB; 4]).expect("file create");
            let name = format!("tmp{i}");
            // Register the file capability (stored as an opaque foreign
            // capability in the directory).
            let as_cap = amoeba_dir_core::Capability {
                port: amoeba_flip::Port::from_raw(file_service.as_raw()),
                object: fcap.object,
                rights: Rights::ALL,
                check: fcap.check,
            };
            client
                .append_row(ctx, root, &name, as_cap, vec![Rights::ALL, Rights::NONE])
                .expect("register");
            let got = client
                .lookup(ctx, root, &name)
                .expect("lookup")
                .expect("present");
            let back = amoeba_bullet::FileCap {
                object: got.object,
                check: got.check,
            };
            let data = files.read(ctx, back).expect("read");
            assert_eq!(data.len(), 4);
            client.delete_row(ctx, root, &name).expect("deregister");
            let _ = files.delete(ctx, back);
            if i > 0 {
                total += ctx.now() - t0;
            }
        }
        total.as_secs_f64() * 1e3 / iters as f64
    });
    amoeba_bench::run_until_ready(&mut tb, &out, Duration::from_secs(120));
    let tmp = out.take().expect("tmp-file probe finished");
    (ad, tmp, lookup)
}

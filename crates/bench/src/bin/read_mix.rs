//! Ablation: throughput of the group service under mixed read/write
//! workloads, as a function of the read fraction.
//!
//! The paper's design is justified by the observed workload being 98%
//! reads (§2): reads cost no communication and no disk I/O, so throughput
//! collapses as the write fraction grows. This experiment quantifies that
//! design point.
//!
//! Run with: `cargo run -p amoeba-bench --bin read_mix --release`

use std::time::Duration;

use amoeba_bench::{append_delete_pair, lookup_once, testbed, throughput};
use amoeba_dir_core::cluster::Variant;
use amoeba_dir_core::Rights;

fn main() {
    println!("Read-mix ablation — group service, 4 clients, ops/second");
    println!("{:<16} {:>12}", "read fraction", "ops/s");
    for read_pct in [100u32, 98, 90, 75, 50, 0] {
        let tput = run_mix(read_pct);
        println!("{:<16} {:>12.0}", format!("{read_pct}%"), tput);
    }
    println!();
    println!("(98% is the paper's measured workload mix, §2.)");
}

fn run_mix(read_pct: u32) -> f64 {
    let mut tb = testbed(Variant::Group, 0xA_B1E ^ u64::from(read_pct));
    {
        let client = tb.client.clone();
        let root = tb.root;
        let out = tb.sim.spawn("seed", move |ctx| {
            client
                .append_row(ctx, root, "target", root, vec![Rights::ALL, Rights::NONE])
                .is_ok()
        });
        tb.sim.run_for(Duration::from_secs(10));
        assert_eq!(out.take(), Some(true));
    }
    throughput(
        &mut tb,
        4,
        Duration::from_secs(1),
        Duration::from_secs(8),
        move |ctx, client, root, c, k| {
            let is_read = ctx.with_rng(|r| r.next_below(100)) < u64::from(read_pct);
            if is_read {
                lookup_once(ctx, client, root, "target")
            } else {
                // A write op (half an append-delete pair alternating).
                append_delete_pair(ctx, client, root, format!("w{c}-{k}"))
            }
        },
    )
}

//! The message-pipeline benchmark behind `BENCH_pipeline.json`.
//!
//! Measures, for each service variant, Fig. 8-style lookup throughput
//! and an update (append+delete) throughput at a fixed client count,
//! plus mean lookup/update latencies — all on the **simulated** clock,
//! so numbers reflect protocol cost (packets, per-packet protocol CPU,
//! wire occupancy), not host speed — and appends one labelled run to
//! `BENCH_pipeline.json` so successive PRs can diff pipeline
//! performance. A second run with sequencer batching disabled
//! (`max_batch = 1`) quantifies what accept coalescing + cumulative
//! acks buy on the update path.
//!
//! A third run with RSM apply batching disabled (`apply_batch = 1`)
//! A/Bs what group commit buys on the disk-bound update path: the
//! update-throughput harness drives N closed-loop writers so the
//! replica driver sees real batches.
//!
//! A fourth, `<label>+internetwork`, A/Bs the flat LAN against a
//! two-segment routed topology (sequencer and half the members a
//! store-and-forward router hop apart): group-layer msgs/sec and
//! packets/msg, the directory service's lookup/update throughput, plus
//! `packets_forwarded` and per-segment wire utilization in the
//! `network` section — the numbers future routing PRs diff against.
//!
//! A fifth, `<label>+shards`, A/Bs the directory service sharded 1, 2
//! and 4 ways (flat, and with each shard's columns on their own segment
//! of a star internetwork), and — on the routed placement — multicast
//! pruning against TTL flooding: updates/s, `packets_forwarded` and
//! forwards per append.
//!
//! A sixth, `<label>+migration`, A/Bs a deliberately *skewed* placement
//! (every writer's directory on shard 0 of 4) against the same
//! deployment with the lease-fenced rebalancer on: the rebalancer
//! migrates the hot directories across the shards during warmup —
//! writers keep their original capabilities and follow the forwarding
//! stubs — and the measured window shows hot-shard throughput
//! recovering toward the balanced reference without a redeploy.
//!
//! A seventh, `<label>+readmix`, A/Bs the lease-fenced client-side
//! directory cache on a zipfian read-mostly mix at 4 shards: cache off
//! (the unmodified per-lookup RPC path, the regression anchor) vs on
//! (lookups served locally under live read leases), plus the cached
//! hit rate and the invalidation-storm probe — the latency of one
//! write that must revoke a fleet of outstanding leases before acking.
//!
//! An eighth, `<label>+recordtrace`, A/Bs the simulation kernel's
//! decision-trace recording (the `amoeba-explore` record mode) on vs
//! off over the group-layer run: the simulated numbers are asserted
//! identical — recording must never perturb the kernel — and the run
//! reports the host wall-clock overhead plus trace size.
//!
//! A ninth, `<label>+telemetry`, A/Bs the causal-tracing telemetry
//! layer on vs off over the same append burst: the simulated numbers
//! are asserted **bit-identical** (tracing rides out-of-band packet
//! metadata and never touches the scheduler), so the reported cost is
//! purely host wall-clock, alongside the span/flow counts recorded.
//! The update-burst and read-mix sections also report per-op-family
//! p50/p95/p99 latencies from the telemetry histograms.
//!
//! A tenth, `<label>+pipelined-commit`, A/Bs the two-stage commit
//! pipeline on the disk-bound update burst: `flush_window` 1 (the
//! serial seed driver, bit-identical to the pre-pipeline build) vs 4
//! vs 8, flat and at 4 shards, on the head-aware disk model in both
//! arms — so the delta is the pipeline overlapping apply of batch N+1
//! with the ~28 ms seek of batch N, plus per-op-family p50/p95/p99
//! append latencies for every point.
//!
//! An eleventh, `<label>+group-log`, A/Bs the journaled commit path on
//! the same burst: the pipelined region-phased flush (journal off,
//! window 4 — the PR-9 reference) vs the group log (journal on) at
//! windows 1/4/8, flat and at 4 shards, head-aware disk everywhere —
//! so the delta is replacing each merged run's table/Bullet/commit
//! region hops with ONE sequential journal append (background
//! checkpointer doing the writeback off the commit path). Every point
//! reports disk seeks per append alongside throughput and per-family
//! percentiles, plus an NVRAM-journal arm and the NVRAM pipelining A/B
//! the journal unlocked (`flush_window` > 1 on NVRAM storage).
//!
//! Run with: `cargo run -p amoeba-bench --release --bin pipeline -- <label>`
//! (append `--internetwork-only` / `--shards-only` / `--migration-only`
//! / `--read-mix-only` / `--record-only` / `--telemetry-only` /
//! `--commit-only` / `--group-log-only` to refresh just that run). The `ci-smoke` label runs a seconds-long
//! subset with tiny iteration counts against a scratch output file and
//! asserts the emitted JSON is valid — the CI guard against bench
//! bit-rot. The `trace` label instead runs one traced 4-shard cached
//! deployment and writes its Perfetto/Chrome trace to the given path
//! (default `BENCH_trace.json`), asserting the span tree is connected
//! and the export validates.

use std::path::PathBuf;
use std::time::Duration;

use amoeba_bench::summary::{append_run, RunSummary, VariantSummary};
use amoeba_bench::{append_delete_pair, lookup_once, mean_latency_ms, testbed_with, throughput};
use amoeba_dir_core::cluster::Variant;
use amoeba_dir_core::Rights;

/// Clients for the throughput windows (a mid-curve Fig. 8 point).
const N_CLIENTS: usize = 5;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let inet_only = args.iter().any(|a| a == "--internetwork-only");
    let shards_only = args.iter().any(|a| a == "--shards-only");
    let migration_only = args.iter().any(|a| a == "--migration-only");
    let read_mix_only = args.iter().any(|a| a == "--read-mix-only");
    let record_only = args.iter().any(|a| a == "--record-only");
    let telemetry_only = args.iter().any(|a| a == "--telemetry-only");
    let commit_only = args.iter().any(|a| a == "--commit-only");
    let group_log_only = args.iter().any(|a| a == "--group-log-only");
    let mut pos = args.iter().filter(|a| !a.starts_with("--"));
    let label = pos
        .next()
        .cloned()
        .unwrap_or_else(|| "unlabelled".to_owned());
    let out_path = pos
        .next()
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("BENCH_pipeline.json"));
    if label == "ci-smoke" {
        ci_smoke();
        return;
    }
    if label == "trace" {
        let out = args
            .iter()
            .filter(|a| !a.starts_with("--"))
            .nth(1)
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("BENCH_trace.json"));
        trace_export(&out);
        return;
    }
    if inet_only {
        let inet = internetwork_run(&label);
        append_run(&out_path, "pipeline", &inet).expect("write BENCH_pipeline.json");
        println!("appended internetwork run to {}", out_path.display());
        return;
    }
    if shards_only {
        let shards = shards_run(&label);
        append_run(&out_path, "pipeline", &shards).expect("write BENCH_pipeline.json");
        println!("appended shards run to {}", out_path.display());
        return;
    }
    if migration_only {
        let migration = migration_run(&label);
        append_run(&out_path, "pipeline", &migration).expect("write BENCH_pipeline.json");
        println!("appended migration run to {}", out_path.display());
        return;
    }
    if read_mix_only {
        let readmix = read_mix_run(&label);
        append_run(&out_path, "pipeline", &readmix).expect("write BENCH_pipeline.json");
        println!("appended read-mix run to {}", out_path.display());
        return;
    }
    if record_only {
        let record = record_overhead_run(&label);
        append_run(&out_path, "pipeline", &record).expect("write BENCH_pipeline.json");
        println!("appended record-overhead run to {}", out_path.display());
        return;
    }
    if telemetry_only {
        let telemetry = telemetry_overhead_run(&label);
        append_run(&out_path, "pipeline", &telemetry).expect("write BENCH_pipeline.json");
        println!("appended telemetry-overhead run to {}", out_path.display());
        return;
    }
    if commit_only {
        let commit = pipelined_commit_run(&label);
        append_run(&out_path, "pipeline", &commit).expect("write BENCH_pipeline.json");
        println!("appended pipelined-commit run to {}", out_path.display());
        return;
    }
    if group_log_only {
        let glog = group_log_run(&label);
        append_run(&out_path, "pipeline", &glog).expect("write BENCH_pipeline.json");
        println!("appended group-log run to {}", out_path.display());
        return;
    }
    println!("pipeline bench — run '{label}'");
    let mut run = RunSummary {
        label: label.clone(),
        ..Default::default()
    };
    for variant in [Variant::Group, Variant::GroupNvram, Variant::Rpc] {
        run.variants.push(measure(variant, None, None, false).0);
    }
    let (burst, burst_latency) = update_burst(Variant::Group, None);
    run.variants.push(burst);
    run.network.extend(burst_latency);
    run.group_pipeline = group_layer_points(16);
    run.micro = micro_points();
    append_run(&out_path, "pipeline", &run).expect("write BENCH_pipeline.json");

    // A/B one: same build, sequencer accept batching off. Only group
    // variants have a sequencer.
    let mut nobatch = RunSummary {
        label: format!("{label}+nobatch"),
        ..Default::default()
    };
    for variant in [Variant::Group, Variant::GroupNvram] {
        nobatch
            .variants
            .push(measure(variant, Some(1), None, false).0);
    }
    nobatch.group_pipeline = group_layer_points(1);
    append_run(&out_path, "pipeline", &nobatch).expect("write BENCH_pipeline.json");

    // A/B two: RSM apply batching (group commit) off — the update
    // path falls back to one durable flush per op.
    let mut noapply = RunSummary {
        label: format!("{label}+noapplybatch"),
        ..Default::default()
    };
    for variant in [Variant::Group, Variant::GroupNvram] {
        noapply
            .variants
            .push(measure(variant, None, Some(1), false).0);
    }
    let (burst, burst_latency) = update_burst(Variant::Group, Some(1));
    noapply.variants.push(burst);
    noapply.network.extend(burst_latency);
    append_run(&out_path, "pipeline", &noapply).expect("write BENCH_pipeline.json");

    // A/B three: flat LAN vs two-segment routed internetwork.
    let inet = internetwork_run(&label);
    append_run(&out_path, "pipeline", &inet).expect("write BENCH_pipeline.json");

    // A/B four: directory sharding (1/2/4 groups) and multicast
    // pruning vs flooding on the routed shard placement.
    let shards = shards_run(&label);
    append_run(&out_path, "pipeline", &shards).expect("write BENCH_pipeline.json");

    // A/B five: skewed hot-shard placement, static vs rebalanced.
    let migration = migration_run(&label);
    append_run(&out_path, "pipeline", &migration).expect("write BENCH_pipeline.json");

    // A/B six: the lease-fenced client cache on the zipfian read mix.
    let readmix = read_mix_run(&label);
    append_run(&out_path, "pipeline", &readmix).expect("write BENCH_pipeline.json");

    // A/B seven: kernel decision-trace recording on vs off.
    let record = record_overhead_run(&label);
    append_run(&out_path, "pipeline", &record).expect("write BENCH_pipeline.json");

    // A/B eight: causal-tracing telemetry on vs off.
    let telemetry = telemetry_overhead_run(&label);
    append_run(&out_path, "pipeline", &telemetry).expect("write BENCH_pipeline.json");

    // A/B nine: the two-stage commit pipeline (flush window 1/4/8).
    let commit = pipelined_commit_run(&label);
    append_run(&out_path, "pipeline", &commit).expect("write BENCH_pipeline.json");

    // A/B ten: the group log (journaled commits, background writeback).
    let glog = group_log_run(&label);
    append_run(&out_path, "pipeline", &glog).expect("write BENCH_pipeline.json");
    println!("appended runs to {}", out_path.display());
}

/// The pipelined-group-commit A/B: the disk-bound update burst at
/// `flush_window` 1 (the serial seed driver — bit-identical to the
/// pre-pipeline build), 4 and 8, flat and sharded 4 ways, with the
/// head-aware disk model on in **every** arm so the delta is the
/// pipeline alone: the replica applies batch N+1 (and the sequencer
/// orders N+2…) while batch N's ~28 ms seek retires on the flusher.
/// Per-op-family p50/p95/p99 latencies ride along for every point, and
/// the `network` section records the window-over-serial speedups the
/// acceptance bar reads (≥2× at 4 shards with window ≥ 4).
fn pipelined_commit_run(label: &str) -> RunSummary {
    use amoeba_bench::sharded_update_burst_with;
    // 12 writers per shard: the pipeline is a bandwidth optimisation,
    // so the A/B offers each shard enough closed-loop concurrency to
    // fill the flush window — with ~3 writers a shard the queue never
    // forms and both arms just measure single-op latency.
    const N_WRITERS: usize = 48;
    let warmup = Duration::from_secs(1);
    let window = Duration::from_secs(8);
    let mut run = RunSummary {
        label: format!("{label}+pipelined-commit"),
        ..Default::default()
    };
    for shards in [1usize, 4] {
        let mut serial = f64::NAN;
        for w in [1usize, 4, 8] {
            let (r, latency) = sharded_update_burst_with(
                shards,
                false,
                true,
                N_WRITERS,
                warmup,
                window,
                0x6C0D,
                move |p| {
                    p.dir.flush_window = w;
                    p.disk.head_aware = true;
                },
            );
            if w == 1 {
                serial = r.ops_per_sec;
            }
            let p50 = latency
                .iter()
                .find(|(f, ..)| f == "cli.append_row")
                .map(|(_, p50, ..)| *p50)
                .unwrap_or(f64::NAN);
            println!(
                "  pipelined-commit/shards={shards}/window={w}: {:.1} appends/s \
                 at {N_WRITERS} writers ({:.2}× serial), cli.append_row p50 {p50:.1} ms",
                r.ops_per_sec,
                r.ops_per_sec / serial
            );
            run.variants.push(VariantSummary {
                variant: format!("Group(3)/pipelined-commit/shards={shards}/window={w}"),
                n_clients: N_WRITERS,
                lookup_ops_per_sec: f64::NAN,
                update_ops_per_sec: r.ops_per_sec,
                lookup_latency_ms: f64::NAN,
                update_latency_ms: f64::NAN,
            });
            if w > 1 {
                run.network.push((
                    format!("pipelined-commit/shards={shards}/window{w}_over_serial"),
                    r.ops_per_sec / serial,
                ));
            }
            for (family, p50, p95, p99) in &latency {
                let key = format!("pipelined-commit/shards={shards}/window={w}/{family}");
                run.network.push((format!("{key}/p50_ms"), *p50));
                run.network.push((format!("{key}/p95_ms"), *p95));
                run.network.push((format!("{key}/p99_ms"), *p99));
            }
        }
    }
    run
}

/// The group-log A/B: the disk-bound update burst with the journaled
/// commit path on (`dir.journal`) at `flush_window` 1/4/8, flat and
/// sharded 4 ways, against the PR-9 pipelined region-phased flush
/// (journal off, window 4) as the reference — head-aware disk in every
/// arm, so the delta is purely commits moving from several region hops
/// per merged run to one sequential journal append with the
/// checkpointer draining the table in the background. Each point also
/// reports disk seeks per append (the mechanism) and the per-op-family
/// p50/p95/p99 latencies. Two extra arms cover what the journal
/// unlocked: the journal on the battery-backed NVRAM device, and
/// `flush_window` 4 on NVRAM *storage* (the pipeline used to be forced
/// serial there).
fn group_log_run(label: &str) -> RunSummary {
    use amoeba_bench::sharded_update_burst_with;
    use amoeba_dir_core::StorageKind;
    const N_WRITERS: usize = 48;
    let warmup = Duration::from_secs(1);
    let window = Duration::from_secs(8);
    let mut run = RunSummary {
        label: format!("{label}+group-log"),
        ..Default::default()
    };
    let mut point = |name: String,
                     shards: usize,
                     r: &amoeba_bench::ShardBurstResult,
                     latency: &[(String, f64, f64, f64)],
                     ratio_over: f64| {
        run.variants.push(VariantSummary {
            variant: format!("Group(3)/{name}"),
            n_clients: N_WRITERS,
            lookup_ops_per_sec: f64::NAN,
            update_ops_per_sec: r.ops_per_sec,
            lookup_latency_ms: f64::NAN,
            update_latency_ms: f64::NAN,
        });
        run.network
            .push((format!("{name}/seeks_per_op"), r.seeks_per_op));
        if ratio_over.is_finite() && ratio_over > 0.0 {
            run.network.push((
                format!("{name}/over_pipelined4"),
                r.ops_per_sec / ratio_over,
            ));
        }
        for (family, p50, p95, p99) in latency {
            run.network.push((format!("{name}/{family}/p50_ms"), *p50));
            run.network.push((format!("{name}/{family}/p95_ms"), *p95));
            run.network.push((format!("{name}/{family}/p99_ms"), *p99));
        }
        println!(
            "  group-log/{name}: {:.1} appends/s at {N_WRITERS} writers \
             ({} shards), {:.2} seeks/append{}",
            r.ops_per_sec,
            shards,
            r.seeks_per_op,
            if ratio_over.is_finite() && ratio_over > 0.0 {
                format!(" ({:.2}× pipelined w=4)", r.ops_per_sec / ratio_over)
            } else {
                String::new()
            }
        );
    };
    for shards in [1usize, 4] {
        // The reference arm: PR 9's pipelined region-phased flush.
        let (pref, pref_lat) = sharded_update_burst_with(
            shards,
            false,
            true,
            N_WRITERS,
            warmup,
            window,
            0x6C0D,
            |p| {
                p.dir.flush_window = 4;
                p.disk.head_aware = true;
            },
        );
        point(
            format!("group-log/shards={shards}/pipelined-ref"),
            shards,
            &pref,
            &pref_lat,
            f64::NAN,
        );
        for w in [1usize, 4, 8] {
            let (r, latency) = sharded_update_burst_with(
                shards,
                false,
                true,
                N_WRITERS,
                warmup,
                window,
                0x6C0D,
                move |p| {
                    p.dir.flush_window = w;
                    p.dir.journal = true;
                    p.disk.head_aware = true;
                },
            );
            point(
                format!("group-log/shards={shards}/window={w}"),
                shards,
                &r,
                &latency,
                pref.ops_per_sec,
            );
        }
    }
    // The journal on battery-backed NVRAM: the commit point costs one
    // NVRAM write instead of a disk rotation.
    let (nvj, nvj_lat) =
        sharded_update_burst_with(4, false, true, N_WRITERS, warmup, window, 0x6C0D, |p| {
            p.dir.flush_window = 4;
            p.dir.journal = true;
            p.dir.journal_nvram = true;
            p.disk.head_aware = true;
        });
    point(
        "group-log/shards=4/nvram-journal/window=4".to_owned(),
        4,
        &nvj,
        &nvj_lat,
        f64::NAN,
    );
    // NVRAM *storage* pipelining, which the flush-window relaxation
    // unlocked: serial vs window 4 on the 24 KB battery-backed RAM.
    let mut nv_serial = f64::NAN;
    for w in [1usize, 4] {
        let (nv, _) = sharded_update_burst_with(
            1,
            false,
            true,
            N_WRITERS,
            warmup,
            window,
            0x6C0D,
            move |p| {
                p.dir.storage = StorageKind::Nvram;
                p.dir.flush_window = w;
            },
        );
        if w == 1 {
            nv_serial = nv.ops_per_sec;
        }
        println!(
            "  group-log/nvram-storage/window={w}: {:.1} appends/s ({:.2}× serial)",
            nv.ops_per_sec,
            nv.ops_per_sec / nv_serial
        );
        run.variants.push(VariantSummary {
            variant: format!("GroupNvram(3)/group-log/nvram-storage/window={w}"),
            n_clients: N_WRITERS,
            lookup_ops_per_sec: f64::NAN,
            update_ops_per_sec: nv.ops_per_sec,
            lookup_latency_ms: f64::NAN,
            update_latency_ms: f64::NAN,
        });
        if w > 1 {
            run.network.push((
                format!("group-log/nvram-storage/window{w}_over_serial"),
                nv.ops_per_sec / nv_serial,
            ));
        }
    }
    run
}

/// The record-mode A/B: the group-layer throughput run untraced vs
/// under [`amoeba_sim::Simulation::recording`]. Recording must never
/// perturb the kernel — the simulated-clock numbers are asserted
/// identical — so the costs are host-side only: wall-clock overhead and
/// the trace itself (steps, serialized bytes). These are the numbers
/// that say what `explore`'s record mode costs over fast mode.
fn record_overhead_run(label: &str) -> RunSummary {
    use amoeba_bench::group_pipeline::{group_send_throughput, group_send_throughput_recorded};
    use std::time::Instant;

    const MEMBERS: usize = 6;
    const SENDERS: usize = 2;
    let mut run = RunSummary {
        label: format!("{label}+recordtrace"),
        ..Default::default()
    };
    // Warm once (page in code paths), then time both modes.
    let _ = group_send_throughput(16, MEMBERS, SENDERS, 64, 0, 0x7EC0);
    let t = Instant::now();
    let off = group_send_throughput(16, MEMBERS, SENDERS, 64, 0, 0x7EC0);
    let off_ms = t.elapsed().as_secs_f64() * 1e3;
    let t = Instant::now();
    let on = group_send_throughput_recorded(16, MEMBERS, SENDERS, 64, 0, 0x7EC0);
    let on_ms = t.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        off, on.result,
        "recording must not perturb the simulated run"
    );
    println!(
        "  record-overhead: {MEMBERS} members × {SENDERS} senders: {:.0} msgs/s either way; \
         host {:.0} ms untraced vs {:.0} ms recording ({:.2}×), {} steps, {} KiB trace",
        off.msgs_per_sec,
        off_ms,
        on_ms,
        on_ms / off_ms,
        on.trace_steps,
        on.trace_bytes / 1024
    );
    run.group_pipeline.push((
        format!("record/off/members={MEMBERS}/senders={SENDERS}/batch=16"),
        off.msgs_per_sec,
        off.packets_per_msg,
    ));
    run.group_pipeline.push((
        format!("record/on/members={MEMBERS}/senders={SENDERS}/batch=16"),
        on.result.msgs_per_sec,
        on.result.packets_per_msg,
    ));
    run.network.push(("record/off/host_wall_ms".into(), off_ms));
    run.network.push(("record/on/host_wall_ms".into(), on_ms));
    run.network
        .push(("record/host_overhead_ratio".into(), on_ms / off_ms));
    run.network
        .push(("record/trace_steps".into(), on.trace_steps as f64));
    run.network
        .push(("record/trace_bytes".into(), on.trace_bytes as f64));
    run
}

/// The telemetry-overhead A/B: the same closed-loop append burst with
/// the causal-tracing collector absent vs installed. Tracing rides
/// out-of-band packet metadata and never touches the simulated clock,
/// so the simulated numbers are asserted bit-identical — the only cost
/// is host wall-clock, which must stay within ~1.15× of the untraced
/// run.
fn telemetry_overhead_run(label: &str) -> RunSummary {
    use amoeba_bench::traced_update_burst;
    use std::time::Instant;

    const N_WRITERS: usize = 6;
    let warmup = Duration::from_secs(1);
    let window = Duration::from_secs(4);
    let mut run = RunSummary {
        label: format!("{label}+telemetry"),
        ..Default::default()
    };
    // Warm once (page in code paths), then time both arms.
    let _ = traced_update_burst(false, N_WRITERS, warmup, window, 0x7E1E);
    let t = Instant::now();
    let off = traced_update_burst(false, N_WRITERS, warmup, window, 0x7E1E);
    let off_ms = t.elapsed().as_secs_f64() * 1e3;
    let t = Instant::now();
    let on = traced_update_burst(true, N_WRITERS, warmup, window, 0x7E1E);
    let on_ms = t.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        (off.ops_per_sec.to_bits(), off.end),
        (on.ops_per_sec.to_bits(), on.end),
        "telemetry must not perturb the simulated run"
    );
    println!(
        "  telemetry-overhead: {N_WRITERS} writers: {:.0} appends/s either way; \
         host {:.0} ms untraced vs {:.0} ms traced ({:.2}×), {} spans, {} flows",
        off.ops_per_sec,
        off_ms,
        on_ms,
        on_ms / off_ms,
        on.spans,
        on.flows
    );
    run.network
        .push(("telemetry/off/host_wall_ms".into(), off_ms));
    run.network
        .push(("telemetry/on/host_wall_ms".into(), on_ms));
    run.network
        .push(("telemetry/host_overhead_ratio".into(), on_ms / off_ms));
    run.network
        .push(("telemetry/spans".into(), on.spans as f64));
    run.network
        .push(("telemetry/flows".into(), on.flows as f64));
    run
}

/// `pipeline -- trace [out.json]`: runs a small traced 4-shard cached
/// deployment, drives one cross-shard keyed create (plus a lease-held
/// write so the revocation fan-out shows up), asserts the client op's
/// span tree is connected across ≥3 machines, and exports the whole
/// run as Chrome-trace-event JSON that `chrome://tracing` / Perfetto
/// can open. The export is re-parsed and validated before writing.
fn trace_export(out: &std::path::Path) {
    use amoeba_bench::testbed_traced;
    use amoeba_dir_core::{CacheParams, ClusterReport};

    println!("trace export — 4-shard traced deployment");
    let ttl = Duration::from_secs(3);
    let (mut tb, tele) = testbed_traced(Variant::Group, 0x7AACE, |p| {
        p.shards = 4;
        p.dir.max_lease = ttl;
        p.dir_cache = Some(CacheParams {
            ttl,
            ..CacheParams::default()
        });
    });
    // A fresh post-formation directory, seeded with the row the reader
    // resolves (the read-mix idiom — a formation-time directory can sit
    // behind a replica that missed its create and refuses lease grants).
    let client = tb.client.clone();
    let made = tb.sim.spawn("trace-setup", move |ctx| {
        let dir = client.create_dir(ctx, &["owner", "other"]).expect("dir");
        client
            .append_row(ctx, dir, "payload", dir, vec![Rights::ALL, Rights::NONE])
            .expect("seed row");
        dir
    });
    tb.sim.run_for(Duration::from_secs(5));
    let dir = made.take().expect("trace directory created");

    // A cached reader holds a read lease on the directory, so the
    // traced write below pays a revocation fan-out the trace can show.
    let (reader, _) = tb.cluster.client(&tb.sim);
    let rd = reader.clone();
    tb.sim.spawn("trace-reader", move |ctx| {
        for _ in 0..60 {
            let _ = rd.lookup(ctx, dir, "payload");
            ctx.sleep(Duration::from_millis(50));
        }
    });
    let client = tb.client.clone();
    let root = tb.root;
    let done = tb.sim.spawn("trace-writer", move |ctx| {
        // Let the reader take its lease first.
        ctx.sleep(Duration::from_millis(500));
        client
            .append_row(ctx, dir, "traced", dir, vec![Rights::ALL, Rights::NONE])
            .expect("traced append");
        let sub = client
            .create_in(
                ctx,
                root,
                "subdir",
                &["owner", "other"],
                vec![Rights::ALL, Rights::ALL],
            )
            .expect("traced create_in");
        let _ = client.lookup(ctx, sub, "nothing");
        true
    });
    tb.sim.run_for(Duration::from_secs(10));
    assert_eq!(done.take(), Some(true), "traced workload completed");
    let reader_stats = reader.cache_stats().expect("reader has a cache");
    assert!(reader_stats.hits > 0, "the traced reader must serve hits");
    assert!(
        reader_stats.invalidations > 0,
        "the traced write must revoke the reader's lease"
    );

    let spans = tele.spans();
    let create_root = spans
        .iter()
        .find(|s| s.name == "cli.create_in" && s.parent == 0)
        .expect("cli.create_in root span");
    let (roots, orphans, machines) = amoeba_telemetry::span_tree_stats(&spans, create_root.trace);
    assert_eq!((roots, orphans), (1, 0), "create_in span tree connected");
    assert!(machines >= 3, "create_in touched only {machines} machines");
    assert!(
        spans.iter().any(|s| s.name == "cache.inval"),
        "the revocation fan-out must appear as cache.inval spans"
    );

    let json = tele.export_chrome_json();
    let summary = amoeba_telemetry::validate_chrome_trace(&json).expect("exported trace validates");
    std::fs::write(out, &json).expect("write trace file");

    // The unified snapshot: one report over the whole deployment.
    let mut report = ClusterReport::collect(&tb.cluster, &tb.sim.handle());
    if let Some(cs) = tb.client.cache_stats() {
        report.add_client("writer", cs);
    }
    if let Some(cs) = reader.cache_stats() {
        report.add_client("reader", cs);
    }
    let (applied, sends, writes) = report.totals();
    println!(
        "  {} events ({} slices, {} flow pairs, {} tracks); create_in tree: \
         1 root, 0 orphans, {machines} machines",
        summary.events, summary.slices, summary.flow_pairs, summary.tracks
    );
    println!("  cluster totals: {applied} ops applied, {sends} group sends, {writes} disk writes");
    println!("{}", report.to_json());
    println!("wrote {}", out.display());
}

/// The cached-read-path A/B: the zipfian read mix (readers resolving
/// Zipf-distributed directories, writers invalidating the same
/// distribution) at 4 shards, cache off then on — parameter-identical
/// deployments, so the cache-off row doubles as the regression anchor
/// for the unmodified per-lookup RPC path (~Fig. 8's 5-client point).
/// The `network` section records the cached hit rate, the speedup, and
/// the invalidation-storm probe: the latency of one write that must
/// revoke a fleet of outstanding read leases before acking.
fn read_mix_run(label: &str) -> RunSummary {
    use amoeba_bench::{invalidation_storm, read_mix_burst};
    const SHARDS: usize = 4;
    const N_READERS: usize = 5;
    const N_WRITERS: usize = 2;
    const N_DIRS: usize = 48;
    let warmup = Duration::from_secs(2);
    let window = Duration::from_secs(10);
    let mut run = RunSummary {
        label: format!("{label}+readmix"),
        ..Default::default()
    };
    // The regression anchor first: the same harness with no writers and
    // no cache is exactly the seed's read path (one RPC per lookup) —
    // it must stay within noise of the classic 5-client Fig. 8 point.
    let anchor = read_mix_burst(SHARDS, false, N_READERS, 0, N_DIRS, warmup, window, 0xCAC4E);
    println!(
        "  read-mix/cache-off/read-only: {:.1} lookups/s (seed anchor)",
        anchor.lookups_per_sec
    );
    run.variants.push(VariantSummary {
        variant: format!("Group(3)/read-mix/shards={SHARDS}/cache-off/read-only"),
        n_clients: N_READERS,
        lookup_ops_per_sec: anchor.lookups_per_sec,
        update_ops_per_sec: f64::NAN,
        lookup_latency_ms: f64::NAN,
        update_latency_ms: f64::NAN,
    });
    let mut rates = [0.0f64; 2];
    for cached in [false, true] {
        let tag = if cached { "cached" } else { "cache-off" };
        let r = read_mix_burst(
            SHARDS, cached, N_READERS, N_WRITERS, N_DIRS, warmup, window, 0xCAC4E,
        );
        rates[usize::from(cached)] = r.lookups_per_sec;
        println!(
            "  read-mix/{tag}: {:.1} lookups/s, {:.1} update pairs/s \
             ({:.1} ms/pair), hit rate {:.3}",
            r.lookups_per_sec, r.updates_per_sec, r.update_latency_ms, r.hit_rate
        );
        run.variants.push(VariantSummary {
            variant: format!("Group(3)/read-mix/shards={SHARDS}/{tag}"),
            n_clients: N_READERS + N_WRITERS,
            lookup_ops_per_sec: r.lookups_per_sec,
            update_ops_per_sec: r.updates_per_sec,
            lookup_latency_ms: f64::NAN,
            update_latency_ms: r.update_latency_ms,
        });
        if cached {
            run.network
                .push(("read-mix/cached/hit_rate".into(), r.hit_rate));
            run.network.push((
                "read-mix/cached/invalidations".into(),
                r.cache.invalidations as f64,
            ));
            run.network
                .push(("read-mix/cached/renewals".into(), r.cache.renewals as f64));
            run.network.push((
                "read-mix/cached/renewals_saved".into(),
                r.cache.renewals_saved as f64,
            ));
        }
        // Per-op-family latency percentiles from the telemetry layer.
        for (family, p50, p95, p99) in &r.latency {
            run.network
                .push((format!("read-mix/{tag}/{family}/p50_ms"), *p50));
            run.network
                .push((format!("read-mix/{tag}/{family}/p95_ms"), *p95));
            run.network
                .push((format!("read-mix/{tag}/{family}/p99_ms"), *p99));
        }
    }
    run.network.push((
        "read-mix/cached_over_off_speedup".into(),
        rates[1] / rates[0],
    ));
    let s = invalidation_storm(SHARDS, 8, 0xCAC4E);
    println!(
        "  read-mix/inval-storm: one write over 8 lease holders acked in {:.1} ms \
         ({} entries dropped)",
        s.write_latency_ms, s.invalidations
    );
    run.network.push((
        "read-mix/inval-storm/write_latency_ms".into(),
        s.write_latency_ms,
    ));
    run.network.push((
        "read-mix/inval-storm/invalidations".into(),
        s.invalidations as f64,
    ));
    run
}

/// The migration A/B: every writer's directory on shard 0 of 4 (the
/// hotspot static placement cannot shed), measured with the rebalancer
/// off (static skew) and on (hot directories migrated across the shards
/// during warmup, writers following forwarding stubs), plus the
/// balanced-placement reference at the same writer count.
fn migration_run(label: &str) -> RunSummary {
    use amoeba_bench::{migration_burst, sharded_update_burst};
    const N_WRITERS: usize = 12;
    const SHARDS: usize = 4;
    // Rebalancing is not instant: each migration's stub-install queues
    // behind the hot shard's own writers, so draining a 12-directory
    // hotspot takes tens of seconds — the warmup covers it, and the
    // window then measures the steady rebalanced state.
    let warmup = Duration::from_secs(30);
    let window = Duration::from_secs(8);
    let mut run = RunSummary {
        label: format!("{label}+migration"),
        ..Default::default()
    };
    let balanced = sharded_update_burst(
        SHARDS,
        false,
        true,
        N_WRITERS,
        Duration::from_secs(1),
        window,
        0x316,
    );
    println!(
        "  migration/balanced-reference: {:.1} appends/s at {N_WRITERS} writers",
        balanced.ops_per_sec
    );
    run.variants.push(VariantSummary {
        variant: format!("Group(3)/migration/shards={SHARDS}/balanced-reference"),
        n_clients: N_WRITERS,
        lookup_ops_per_sec: f64::NAN,
        update_ops_per_sec: balanced.ops_per_sec,
        lookup_latency_ms: f64::NAN,
        update_latency_ms: f64::NAN,
    });
    for rebalance in [false, true] {
        let tag = if rebalance { "rebalanced" } else { "static" };
        let r = migration_burst(SHARDS, rebalance, N_WRITERS, warmup, window, 0x316);
        println!(
            "  migration/skewed/{tag}: {:.1} appends/s, {} dirs migrated off the hot shard",
            r.ops_per_sec, r.migrated
        );
        run.variants.push(VariantSummary {
            variant: format!("Group(3)/migration/shards={SHARDS}/skewed/{tag}"),
            n_clients: N_WRITERS,
            lookup_ops_per_sec: f64::NAN,
            update_ops_per_sec: r.ops_per_sec,
            lookup_latency_ms: f64::NAN,
            update_latency_ms: f64::NAN,
        });
        run.network.push((
            format!("migration/skewed/{tag}/hot_shard_stubs"),
            r.migrated as f64,
        ));
    }
    run
}

/// The sharding A/B: update-burst throughput at 1, 2 and 4 shards on a
/// flat LAN; then the 4-shard deployment with each shard on its own
/// segment of a star internetwork, once with the routers' multicast
/// pruning (the default) and once with TTL flooding — same member
/// count, so the forwards-per-append delta is pruning alone.
fn shards_run(label: &str) -> RunSummary {
    use amoeba_bench::sharded_update_burst;
    const N_WRITERS: usize = 12;
    let warmup = Duration::from_secs(1);
    let window = Duration::from_secs(8);
    let mut run = RunSummary {
        label: format!("{label}+shards"),
        ..Default::default()
    };
    for shards in [1usize, 2, 4] {
        let r = sharded_update_burst(shards, false, true, N_WRITERS, warmup, window, 0x5A4D);
        println!(
            "  shards/flat/{shards}: {:.1} appends/s at {N_WRITERS} writers",
            r.ops_per_sec
        );
        run.variants.push(VariantSummary {
            variant: format!("Group(3)/update-burst/shards={shards}/flat"),
            n_clients: N_WRITERS,
            lookup_ops_per_sec: f64::NAN,
            update_ops_per_sec: r.ops_per_sec,
            lookup_latency_ms: f64::NAN,
            update_latency_ms: f64::NAN,
        });
    }
    for pruning in [true, false] {
        let tag = if pruning { "pruned" } else { "flooded" };
        let r = sharded_update_burst(4, true, pruning, N_WRITERS, warmup, window, 0x5A4D);
        println!(
            "  shards/routed4/{tag}: {:.1} appends/s, {} forwarded ({:.2}/append), {} pruned",
            r.ops_per_sec, r.packets_forwarded, r.forwarded_per_op, r.mcast_pruned
        );
        run.variants.push(VariantSummary {
            variant: format!("Group(3)/update-burst/shards=4/routed-star/{tag}"),
            n_clients: N_WRITERS,
            lookup_ops_per_sec: f64::NAN,
            update_ops_per_sec: r.ops_per_sec,
            lookup_latency_ms: f64::NAN,
            update_latency_ms: f64::NAN,
        });
        run.network.push((
            format!("shards/routed4/{tag}/packets_forwarded"),
            r.packets_forwarded as f64,
        ));
        run.network.push((
            format!("shards/routed4/{tag}/forwarded_per_append"),
            r.forwarded_per_op,
        ));
        run.network.push((
            format!("shards/routed4/{tag}/mcast_pruned"),
            r.mcast_pruned as f64,
        ));
    }
    run
}

/// Seconds-long CI guard: runs one tiny point of each harness family
/// against a scratch output file and asserts the emitted JSON has the
/// writer's shape — catches bench bit-rot before a perf PR needs the
/// full run.
fn ci_smoke() {
    use amoeba_bench::group_pipeline::{group_send_throughput, group_send_throughput_recorded};
    use amoeba_bench::{migration_burst, sharded_update_burst};

    println!("pipeline bench — ci-smoke");
    let mut run = RunSummary {
        label: "ci-smoke".to_owned(),
        ..Default::default()
    };
    // Group layer: one small flat point.
    let g = group_send_throughput(16, 3, 1, 64, 0, 0xC1);
    assert!(
        g.msgs_per_sec > 0.0,
        "group-layer smoke run must deliver messages"
    );
    run.group_pipeline.push((
        "ci-smoke/members=3/senders=1/batch=16".to_owned(),
        g.msgs_per_sec,
        g.packets_per_msg,
    ));
    // Record mode: the same point under kernel-trace recording must
    // reproduce the untraced run exactly and yield a non-empty trace.
    let rec = group_send_throughput_recorded(16, 3, 1, 64, 0, 0xC1);
    assert_eq!(
        g, rec.result,
        "ci-smoke: recording must not perturb the simulated run"
    );
    assert!(rec.trace_steps > 0, "ci-smoke: recording must trace steps");
    run.network
        .push(("record/trace_steps".into(), rec.trace_steps as f64));
    // Sharded service: a tiny 2-shard burst (short window, few writers).
    let r = sharded_update_burst(
        2,
        false,
        true,
        2,
        Duration::from_millis(500),
        Duration::from_secs(2),
        0xC1,
    );
    assert!(
        r.ops_per_sec > 0.0,
        "sharded update-burst smoke run must complete appends"
    );
    run.variants.push(VariantSummary {
        variant: "ci-smoke/update-burst/shards=2".to_owned(),
        n_clients: 2,
        lookup_ops_per_sec: f64::NAN,
        update_ops_per_sec: r.ops_per_sec,
        lookup_latency_ms: f64::NAN,
        update_latency_ms: f64::NAN,
    });
    // Migration harness: a tiny skewed run with the rebalancer on —
    // asserts the skew machinery, the lease-fenced rebalancer and the
    // forwarding path all still drive end to end.
    let m = migration_burst(
        2,
        true,
        2,
        Duration::from_secs(3),
        Duration::from_secs(3),
        0xC1,
    );
    assert!(
        m.ops_per_sec > 0.0,
        "migration smoke run must complete appends"
    );
    assert!(
        m.migrated >= 1,
        "the rebalancer must migrate at least one hot directory"
    );
    run.variants.push(VariantSummary {
        variant: "ci-smoke/migration/skewed/rebalanced".to_owned(),
        n_clients: 2,
        lookup_ops_per_sec: f64::NAN,
        update_ops_per_sec: m.ops_per_sec,
        lookup_latency_ms: f64::NAN,
        update_latency_ms: f64::NAN,
    });
    run.network.push((
        "migration/skewed/rebalanced/hot_shard_stubs".into(),
        m.migrated as f64,
    ));
    // Cached read mix: a tiny 2-shard zipfian run with the client
    // cache on — asserts the lease grant, local-hit and
    // revoke-before-ack paths all still drive end to end.
    let rm = amoeba_bench::read_mix_burst(
        2,
        true,
        2,
        1,
        8,
        Duration::from_millis(500),
        Duration::from_secs(2),
        0xC1,
    );
    assert!(
        rm.lookups_per_sec > 0.0,
        "read-mix smoke run must complete lookups"
    );
    assert!(
        rm.hit_rate > 0.0,
        "the cached read-mix smoke run must serve lookups locally"
    );
    assert!(
        rm.updates_per_sec > 0.0,
        "read-mix smoke run must complete (lease-revoking) updates"
    );
    run.variants.push(VariantSummary {
        variant: "ci-smoke/read-mix/shards=2/cached".to_owned(),
        n_clients: 3,
        lookup_ops_per_sec: rm.lookups_per_sec,
        update_ops_per_sec: rm.updates_per_sec,
        lookup_latency_ms: f64::NAN,
        update_latency_ms: rm.update_latency_ms,
    });
    run.network
        .push(("read-mix/cached/hit_rate".into(), rm.hit_rate));
    assert!(
        rm.latency.iter().any(|(f, ..)| f == "cli.lookup"),
        "read-mix smoke run must report cli.lookup latency percentiles"
    );
    for (family, p50, p95, p99) in &rm.latency {
        run.network
            .push((format!("read-mix/cached/{family}/p50_ms"), *p50));
        run.network
            .push((format!("read-mix/cached/{family}/p95_ms"), *p95));
        run.network
            .push((format!("read-mix/cached/{family}/p99_ms"), *p99));
    }
    // Pipelined group commit: a tiny flat serial-vs-window=4 A/B in its
    // own `+pipelined-commit` run — asserts the two-stage driver, the
    // staged flush path and the head-aware disk all drive end to end.
    let mut prun = RunSummary {
        label: "ci-smoke+pipelined-commit".to_owned(),
        ..Default::default()
    };
    for w in [1usize, 4] {
        let (p, _) = amoeba_bench::sharded_update_burst_with(
            1,
            false,
            true,
            2,
            Duration::from_millis(500),
            Duration::from_secs(2),
            0xC1,
            move |pa| {
                pa.dir.flush_window = w;
                pa.disk.head_aware = true;
            },
        );
        assert!(
            p.ops_per_sec > 0.0,
            "pipelined-commit smoke run (window={w}) must complete appends"
        );
        prun.variants.push(VariantSummary {
            variant: format!("ci-smoke/pipelined-commit/window={w}"),
            n_clients: 2,
            lookup_ops_per_sec: f64::NAN,
            update_ops_per_sec: p.ops_per_sec,
            lookup_latency_ms: f64::NAN,
            update_latency_ms: f64::NAN,
        });
    }
    // The group log: the same tiny burst with the journal on must
    // complete appends AND spend fewer head seeks per append than the
    // region-phased flush it replaces — the cheap end-to-end signal
    // that commits really went down the journaled path (one sequential
    // record append instead of table/Bullet/commit region hops).
    let (poff, _) = amoeba_bench::sharded_update_burst_with(
        1,
        false,
        true,
        2,
        Duration::from_millis(500),
        Duration::from_secs(2),
        0xC1,
        |pa| {
            pa.dir.flush_window = 4;
            pa.disk.head_aware = true;
        },
    );
    let (pj, _) = amoeba_bench::sharded_update_burst_with(
        1,
        false,
        true,
        2,
        Duration::from_millis(500),
        Duration::from_secs(2),
        0xC1,
        |pa| {
            pa.dir.flush_window = 4;
            pa.dir.journal = true;
            pa.disk.head_aware = true;
        },
    );
    assert!(
        pj.ops_per_sec > 0.0,
        "group-log smoke run must complete appends"
    );
    assert!(
        pj.seeks_per_op < poff.seeks_per_op,
        "the journaled path must seek less per append than the \
         region-phased flush ({:.2} vs {:.2})",
        pj.seeks_per_op,
        poff.seeks_per_op
    );
    prun.variants.push(VariantSummary {
        variant: "ci-smoke/group-log/window=4".to_owned(),
        n_clients: 2,
        lookup_ops_per_sec: f64::NAN,
        update_ops_per_sec: pj.ops_per_sec,
        lookup_latency_ms: f64::NAN,
        update_latency_ms: f64::NAN,
    });
    prun.network
        .push(("group-log/seeks_per_op".into(), pj.seeks_per_op));
    prun.network
        .push(("pipelined4/seeks_per_op".into(), poff.seeks_per_op));
    // Causal tracing: a tiny traced deployment must export Chrome trace
    // JSON that re-parses with a connected client-op span tree.
    let (mut ttb, tele) = amoeba_bench::testbed_traced(Variant::Group, 0xC1, |p| p.shards = 2);
    let client = ttb.client.clone();
    let root = ttb.root;
    let done = ttb.sim.spawn("ci-trace", move |ctx| {
        client
            .create_in(
                ctx,
                root,
                "sub",
                &["owner", "other"],
                vec![Rights::ALL, Rights::ALL],
            )
            .is_ok()
    });
    ttb.sim.run_for(Duration::from_secs(10));
    assert_eq!(done.take(), Some(true), "ci-smoke: traced create_in");
    let spans = tele.spans();
    let root_span = spans
        .iter()
        .find(|s| s.name == "cli.create_in" && s.parent == 0)
        .expect("ci-smoke: cli.create_in root span");
    let (roots, orphans, machines) = amoeba_telemetry::span_tree_stats(&spans, root_span.trace);
    assert_eq!(
        (roots, orphans),
        (1, 0),
        "ci-smoke: create_in span tree must be connected"
    );
    assert!(
        machines >= 3,
        "ci-smoke: traced create_in touched only {machines} machines"
    );
    let trace_json = tele.export_chrome_json();
    let tsum = amoeba_telemetry::validate_chrome_trace(&trace_json)
        .expect("ci-smoke: exported trace must validate");
    assert!(
        tsum.flow_pairs > 0,
        "ci-smoke: the trace must bind flow arrows to slices"
    );
    run.network
        .push(("trace/slices".into(), tsum.slices as f64));
    run.micro = micro_points();
    // Emit to a scratch file and verify the JSON shape end to end
    // (append twice: creation and the splice-before-footer path).
    let path = std::env::temp_dir().join(format!("BENCH_ci_smoke_{}.json", std::process::id()));
    let _ = std::fs::remove_file(&path);
    append_run(&path, "pipeline", &run).expect("ci-smoke: write json");
    append_run(&path, "pipeline", &run).expect("ci-smoke: append json");
    append_run(&path, "pipeline", &prun).expect("ci-smoke: append pipelined-commit json");
    let text = std::fs::read_to_string(&path).expect("ci-smoke: read back");
    assert!(
        text.starts_with("{\n  \"bench\": \"pipeline\"") && text.ends_with("\n  ]\n}\n"),
        "ci-smoke: unexpected JSON shape"
    );
    assert_eq!(
        text.matches("\"label\": \"ci-smoke\"").count(),
        2,
        "ci-smoke: both runs must be present"
    );
    assert!(
        text.contains("ci-smoke/migration/skewed/rebalanced")
            && text.contains("migration/skewed/rebalanced/hot_shard_stubs"),
        "ci-smoke: the migration section must be present in the JSON"
    );
    assert!(
        text.contains("ci-smoke/read-mix/shards=2/cached")
            && text.contains("read-mix/cached/hit_rate"),
        "ci-smoke: the read-mix section must be present in the JSON"
    );
    assert!(
        text.contains("read-mix/cached/cli.lookup/p50_ms") && text.contains("/p99_ms"),
        "ci-smoke: latency percentile entries must be present in the JSON"
    );
    assert!(
        text.contains("\"label\": \"ci-smoke+pipelined-commit\"")
            && text.contains("ci-smoke/pipelined-commit/window=1")
            && text.contains("ci-smoke/pipelined-commit/window=4"),
        "ci-smoke: the +pipelined-commit section must be present in the JSON"
    );
    std::fs::remove_file(&path).expect("ci-smoke: cleanup");
    println!(
        "ci-smoke ok: group {:.0} msgs/s, 2-shard burst {:.1} appends/s, \
         migration burst {:.1} appends/s ({} migrated), cached read mix \
         {:.1} lookups/s at hit rate {:.2}, json shape valid",
        g.msgs_per_sec, r.ops_per_sec, m.ops_per_sec, m.migrated, rm.lookups_per_sec, rm.hit_rate
    );
}

/// The flat-vs-routed internetwork A/B: the same group-layer workload
/// on one Ethernet and on two segments split by a router (sequencer on
/// `net-a`, half the members on `net-b`), plus the full directory
/// service on the routed split.
fn internetwork_run(label: &str) -> RunSummary {
    use amoeba_bench::group_pipeline::group_send_throughput_on;
    use amoeba_flip::{SegmentId, Topology};

    let mut run = RunSummary {
        label: format!("{label}+internetwork"),
        ..Default::default()
    };
    const MEMBERS: usize = 6;
    const SENDERS: usize = 2;
    for routed in [false, true] {
        let (topo, placement, tag) = if routed {
            // Member 0 (the sequencer) on net-a; members alternate, so
            // half the accept fan-out crosses the router.
            (
                Topology::two_segments(),
                vec![SegmentId(0), SegmentId(1)],
                "routed2seg",
            )
        } else {
            (Topology::single(), vec![], "flat")
        };
        let r = group_send_throughput_on(topo, &placement, 16, MEMBERS, SENDERS, 64, 0, 0x16E7);
        println!(
            "  internetwork/{tag}: {MEMBERS} members × {SENDERS} senders: {:.0} msgs/s, \
             {:.2} packets/msg, {} forwarded ({:.2}/msg)",
            r.msgs_per_sec, r.packets_per_msg, r.packets_forwarded, r.forwarded_per_msg
        );
        run.group_pipeline.push((
            format!("internetwork/{tag}/members={MEMBERS}/senders={SENDERS}/batch=16"),
            r.msgs_per_sec,
            r.packets_per_msg,
        ));
        run.network.push((
            format!("internetwork/{tag}/packets_forwarded"),
            r.packets_forwarded as f64,
        ));
        run.network.push((
            format!("internetwork/{tag}/forwarded_per_msg"),
            r.forwarded_per_msg,
        ));
        for (seg, util) in &r.seg_utilization {
            println!("    segment {seg}: {:.1}% wire utilization", util * 100.0);
            run.network
                .push((format!("internetwork/{tag}/utilization/{seg}"), *util));
        }
    }
    // The full directory service over the routed split (lookups never
    // cross the router — the client's expanding ring finds the local
    // replica — while every update's accept fan-out does), measured by
    // the exact protocol the flat variants use.
    let (routed_variant, forwarded) = measure(Variant::Group, None, None, true);
    run.network.push((
        "internetwork/Group(3)/routed2seg/packets_forwarded".into(),
        forwarded as f64,
    ));
    run.variants.push(routed_variant);
    run
}

/// Host-time micro-benchmarks of the zero-copy codec path (these, unlike
/// the simulated-clock numbers, shrink with the `Payload` refactor).
fn micro_points() -> Vec<(String, f64)> {
    use amoeba_bench::microbench::bench;
    use amoeba_dir_core::{Capability, DirOp, Rights};
    use amoeba_flip::{Payload, Port};
    use amoeba_group::{AcceptBody, GroupMsg, MemberId};
    use std::hint::black_box;

    let op = DirOp::Append {
        object: 5,
        name: "some-file-name".into(),
        cap: Capability::owner(Port::from_name("bullet"), 9, 31),
        col_rights: vec![Rights::ALL, Rights::NONE],
    };
    let mut out = Vec::new();
    let r = bench("micro/dir_op_encode", || {
        black_box(op.encode());
    });
    out.push((r.name, r.ns_per_op));
    let accept = GroupMsg::Accept {
        instance: 1,
        incarnation: 0,
        seq: 42,
        from: MemberId(1),
        from_tag: 1,
        msgid: 7,
        body: AcceptBody::Data(vec![0u8; 256].into()),
    };
    let wire = accept.encode();
    let r = bench("micro/group_accept_decode_256B", || {
        black_box(GroupMsg::decode(&wire).unwrap());
    });
    out.push((r.name, r.ns_per_op));
    let payload = Payload::from(vec![0u8; 4096]);
    let r = bench("micro/payload_clone_4KiB", || {
        black_box(payload.clone());
    });
    out.push((r.name, r.ns_per_op));
    let r = bench("micro/payload_slice_4KiB", || {
        black_box(payload.slice(64..1024));
    });
    out.push((r.name, r.ns_per_op));
    out
}

/// Raw `SendToGroup` throughput (the layer accept batching optimizes),
/// at two member counts, with `max_batch` under test.
fn group_layer_points(max_batch: usize) -> Vec<(String, f64, f64)> {
    use amoeba_bench::group_pipeline::group_send_throughput;
    let mut out = Vec::new();
    for (members, senders) in [(3usize, 3usize), (6, 2)] {
        let r = group_send_throughput(max_batch, members, senders, 64, 0, 0x6E0);
        println!(
            "  group layer: {members} members × {senders} senders, batch={max_batch}: \
             {:.0} msgs/s, {:.2} packets/msg",
            r.msgs_per_sec, r.packets_per_msg
        );
        out.push((
            format!("members={members}/senders={senders}/batch={max_batch}"),
            r.msgs_per_sec,
            r.packets_per_msg,
        ));
    }
    out
}

/// The update-throughput harness the apply-batching A/B hinges on:
/// many closed-loop writers appending unique rows to one directory, so
/// the replica driver sees deep batches and group commit coalesces
/// their disk work. One durable flush per *batch* instead of per *op*.
fn update_burst(
    variant: Variant,
    apply_batch: Option<usize>,
) -> (VariantSummary, Vec<(String, f64)>) {
    use amoeba_dir_core::{DirClientError, DirError};
    const N_WRITERS: usize = 12;
    let mut label = format!("{}/update-burst", variant.label());
    if let Some(b) = apply_batch {
        label.push_str(&format!("/applybatch={b}"));
    }
    println!("  update burst {label}...");
    let tweak = move |p: &mut amoeba_dir_core::cluster::ClusterParams| {
        if let Some(b) = apply_batch {
            p.dir.apply_batch = b;
        }
    };
    let mut tb = testbed_with(variant, 0xB57 + N_WRITERS as u64, tweak);
    // Percentiles for the burst itself: metrics-only, installed after
    // the testbed formed so setup ops stay out of the histograms.
    let tele = amoeba_telemetry::Telemetry::install_metrics_only(&tb.sim.handle());
    let ops = throughput(
        &mut tb,
        N_WRITERS,
        Duration::from_secs(1),
        Duration::from_secs(8),
        |ctx, client, root, c, k| {
            let name = format!("b{c}-{k}");
            for _ in 0..6 {
                match client.append_row(ctx, root, &name, root, vec![Rights::ALL, Rights::NONE]) {
                    Ok(()) => return true,
                    Err(DirClientError::Service(DirError::DuplicateName)) => return true,
                    Err(_) => ctx.sleep(Duration::from_millis(10)),
                }
            }
            false
        },
    );
    println!("    {ops:.0} appends/s at {N_WRITERS} writers");
    let mut points = Vec::new();
    for (family, p50, p95, p99) in amoeba_bench::latency_rows(&tele.metrics()) {
        points.push((format!("{label}/{family}/p50_ms"), p50));
        points.push((format!("{label}/{family}/p95_ms"), p95));
        points.push((format!("{label}/{family}/p99_ms"), p99));
    }
    (
        VariantSummary {
            variant: label,
            n_clients: N_WRITERS,
            lookup_ops_per_sec: f64::NAN,
            update_ops_per_sec: ops,
            lookup_latency_ms: f64::NAN,
            update_latency_ms: f64::NAN,
        },
        points,
    )
}

/// Latency + throughput of one variant configuration. Returns the
/// summary and the total packets routers forwarded across the phase
/// testbeds (0 unless `routed`).
fn measure(
    variant: Variant,
    max_batch: Option<usize>,
    apply_batch: Option<usize>,
    routed: bool,
) -> (VariantSummary, u64) {
    use amoeba_dir_core::cluster::ClusterTopology;
    let mut label = variant.label().to_owned();
    if let Some(b) = max_batch {
        label.push_str(&format!("/batch={b}"));
    }
    if let Some(b) = apply_batch {
        label.push_str(&format!("/applybatch={b}"));
    }
    if routed {
        label.push_str("/routed2seg");
    }
    println!("  variant {label}...");
    let tweak = move |p: &mut amoeba_dir_core::cluster::ClusterParams| {
        if let Some(b) = max_batch {
            p.group.max_batch = b;
        }
        if let Some(b) = apply_batch {
            p.dir.apply_batch = b;
        }
        if routed {
            p.net_topology = ClusterTopology::two_segment_split();
        }
    };
    let mut forwarded = 0u64;

    // Latencies from a single unloaded client.
    let mut tb = testbed_with(variant, 0xBA5E, tweak);
    seed_target(&mut tb);
    let lookup_latency_ms = mean_latency_ms(&mut tb, 50, |ctx, client, root, _i| {
        lookup_once(ctx, client, root, "target");
    });
    let update_latency_ms = mean_latency_ms(&mut tb, 30, |ctx, client, root, i| {
        append_delete_pair(ctx, client, root, format!("lat-{i}"));
    });
    forwarded += tb.cluster.net.stats().packets_forwarded;

    // Fig. 8-style lookup throughput at N_CLIENTS closed-loop clients.
    let mut tb = testbed_with(variant, 0xF18 + N_CLIENTS as u64, tweak);
    seed_target(&mut tb);
    let lookup_ops_per_sec = throughput(
        &mut tb,
        N_CLIENTS,
        Duration::from_secs(1),
        Duration::from_secs(5),
        |ctx, client, root, _c, _k| lookup_once(ctx, client, root, "target"),
    );
    forwarded += tb.cluster.net.stats().packets_forwarded;

    // Update throughput: the sequencer-bound path accept batching helps.
    let mut tb = testbed_with(variant, 0x0BD8 + N_CLIENTS as u64, tweak);
    seed_target(&mut tb);
    let update_ops_per_sec = throughput(
        &mut tb,
        N_CLIENTS,
        Duration::from_secs(1),
        Duration::from_secs(5),
        |ctx, client, root, c, k| append_delete_pair(ctx, client, root, format!("u{c}-{k}")),
    );
    forwarded += tb.cluster.net.stats().packets_forwarded;
    println!(
        "    lookup {lookup_ops_per_sec:.0}/s, updates {update_ops_per_sec:.0}/s at \
         {N_CLIENTS} clients; latency lookup {lookup_latency_ms:.2} ms, \
         update {update_latency_ms:.2} ms"
    );
    (
        VariantSummary {
            variant: label,
            n_clients: N_CLIENTS,
            lookup_ops_per_sec,
            update_ops_per_sec,
            lookup_latency_ms,
            update_latency_ms,
        },
        forwarded,
    )
}

/// Seeds the row the lookup workload resolves.
fn seed_target(tb: &mut amoeba_bench::Testbed) {
    let client = tb.client.clone();
    let root = tb.root;
    let out = tb.sim.spawn("seed", move |ctx| {
        client
            .append_row(ctx, root, "target", root, vec![Rights::ALL, Rights::NONE])
            .is_ok()
    });
    tb.sim.run_for(Duration::from_secs(10));
    assert_eq!(out.take(), Some(true), "seed append failed");
}

//! Regenerates the paper's **Fig. 9**: append-delete pairs per second
//! against number of clients.
//!
//! Paper anchors: writes serialize, so the disk-committed services
//! saturate at ~5 pairs/s (≈180–190 ms of storage work per pair) while
//! the NVRAM service reaches ~45 pairs/s (≈22 ms per pair); "the actual
//! write throughput is twice as high" since each pair is two updates.
//!
//! Run with: `cargo run -p amoeba-bench --bin fig9 --release`

use std::time::Duration;

use amoeba_bench::{append_delete_pair, testbed, throughput};
use amoeba_dir_core::cluster::Variant;

fn main() {
    println!("Fig. 9 — append-delete pairs/second vs number of clients");
    println!(
        "{:<8} {:>14} {:>16} {:>14}",
        "clients", "Group(3)", "Group+NVRAM(3)", "RPC(2)"
    );
    let clients = [1usize, 2, 3, 4, 5, 6, 7];
    let mut results: Vec<Vec<f64>> = Vec::new();
    for variant in [Variant::Group, Variant::GroupNvram, Variant::Rpc] {
        let mut series = Vec::new();
        for &n in &clients {
            series.push(run_point(variant, n));
        }
        results.push(series);
    }
    for (i, &n) in clients.iter().enumerate() {
        println!(
            "{:<8} {:>14.1} {:>16.1} {:>14.1}",
            n, results[0][i], results[1][i], results[2][i]
        );
    }
    println!();
    println!(
        "paper upper bounds: Group ≈ 5, NVRAM ≈ 45, RPC ≈ 5 pairs/s \
         (headline: 88 updates/s with NVRAM); measured at 7 clients: \
         Group {:.1}, NVRAM {:.1}, RPC {:.1}",
        results[0][6], results[1][6], results[2][6]
    );
}

fn run_point(variant: Variant, n_clients: usize) -> f64 {
    let mut tb = testbed(variant, 0xF19 + n_clients as u64);
    // Each client updates its own directory (temporary-file behaviour);
    // the RPC service's per-directory conflict locks would otherwise
    // serialize everything through busy-retries.
    let subdirs = {
        let client = tb.client.clone();
        let root = tb.root;
        let n = n_clients;
        let out = tb.sim.spawn("mkdirs", move |ctx| {
            let mut v = Vec::new();
            for c in 0..n {
                let d = client.create_dir(ctx, &["owner"]).unwrap();
                client
                    .append_row(
                        ctx,
                        root,
                        &format!("client{c}"),
                        d,
                        vec![amoeba_dir_core::Rights::ALL, amoeba_dir_core::Rights::NONE],
                    )
                    .unwrap();
                v.push(d);
            }
            v
        });
        amoeba_bench::run_until_ready(&mut tb, &out, Duration::from_secs(120));
        out.take().expect("subdirs created")
    };
    throughput(
        &mut tb,
        n_clients,
        Duration::from_secs(1),
        Duration::from_secs(8),
        move |ctx, client, _root, c, k| {
            append_delete_pair(ctx, client, subdirs[c], format!("t{c}-{k}"))
        },
    )
}

//! Shared experiment harness for the figure/table regeneration binaries.
//!
//! Every experiment builds a deployment with
//! [`amoeba_dir_core::cluster::Cluster`], runs a workload under
//! virtual time, and reports latencies/throughputs measured on the
//! simulated clock — the same quantities the paper's Figs. 7–9 report.

pub mod group_pipeline;
pub mod microbench;
pub mod summary;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use amoeba_dir_core::cluster::{Cluster, ClusterParams, Variant};
use amoeba_dir_core::{CacheParams, CacheStats, Capability, DirClient, Rights};
use amoeba_sim::{Ctx, SimTime, Simulation};

/// A ready-to-measure deployment: cluster + a root directory.
pub struct Testbed {
    /// The simulation (run it to advance the experiment).
    pub sim: Simulation,
    /// The deployment.
    pub cluster: Cluster,
    /// A formed root directory every client can use.
    pub root: Capability,
    /// A client on its own machine, already warmed up.
    pub client: DirClient,
}

impl std::fmt::Debug for Testbed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Testbed({})", self.cluster.params.variant.label())
    }
}

/// Builds a deployment of `variant`, waits for it to form, creates a root
/// directory.
///
/// # Panics
///
/// Panics if the service does not form within a minute of virtual time.
pub fn testbed(variant: Variant, seed: u64) -> Testbed {
    testbed_with(variant, seed, |_| {})
}

/// [`testbed`] with a hook to adjust the deployment parameters.
///
/// # Panics
///
/// Panics if the service does not form within a minute of virtual time.
pub fn testbed_with(
    variant: Variant,
    seed: u64,
    tweak: impl FnOnce(&mut ClusterParams),
) -> Testbed {
    testbed_inner(variant, seed, tweak, false).0
}

/// [`testbed_with`] under full causal tracing: installs a
/// [`Telemetry`](amoeba_telemetry::Telemetry) collector *before* the
/// cluster starts (so every machine track is named) and returns the
/// handle alongside the testbed. Every client op from here on records
/// a span tree and per-family latency histograms.
pub fn testbed_traced(
    variant: Variant,
    seed: u64,
    tweak: impl FnOnce(&mut ClusterParams),
) -> (Testbed, amoeba_telemetry::Telemetry) {
    let (tb, tele) = testbed_inner(variant, seed, tweak, true);
    (tb, tele.expect("traced testbed installs telemetry"))
}

fn testbed_inner(
    variant: Variant,
    seed: u64,
    tweak: impl FnOnce(&mut ClusterParams),
    traced: bool,
) -> (Testbed, Option<amoeba_telemetry::Telemetry>) {
    let mut sim = Simulation::new(seed);
    let tele = traced.then(|| amoeba_telemetry::Telemetry::install(&sim.handle()));
    let mut params = ClusterParams::paper(variant);
    params.seed = seed;
    tweak(&mut params);
    let mut cluster = Cluster::start(&sim, params);
    let (client, _) = cluster.client(&sim);
    let c2 = client.clone();
    let out = sim.spawn("testbed-setup", move |ctx| loop {
        match c2.create_dir(ctx, &["owner", "other"]) {
            Ok(cap) => return cap,
            Err(_) => ctx.sleep(Duration::from_millis(100)),
        }
    });
    sim.run_for(Duration::from_secs(60));
    let root = out.take().expect("service failed to form within 60 s");
    (
        Testbed {
            sim,
            cluster,
            root,
            client,
        },
        tele,
    )
}

/// Measures mean latency (ms) of `op` over `iters` runs from one client.
pub fn mean_latency_ms<F>(tb: &mut Testbed, iters: usize, op: F) -> f64
where
    F: Fn(&Ctx, &DirClient, Capability, usize) + Send + Sync + 'static,
{
    let client = tb.client.clone();
    let root = tb.root;
    let out = tb.sim.spawn("latency-probe", move |ctx| {
        // One warmup iteration to fill caches.
        op(ctx, &client, root, usize::MAX);
        let mut total = Duration::ZERO;
        for i in 0..iters {
            let t0 = ctx.now();
            op(ctx, &client, root, i);
            total += ctx.now() - t0;
        }
        total.as_secs_f64() * 1e3 / iters as f64
    });
    run_until_ready(tb, &out, Duration::from_secs(600));
    out.take().expect("latency probe finished")
}

/// Advances the simulation in slices until the probe's value is ready,
/// without burning virtual time on idle background timers afterwards.
pub fn run_until_ready<R>(tb: &mut Testbed, out: &amoeba_sim::ProcOutput<R>, limit: Duration) {
    let deadline = tb.sim.now() + limit;
    while !out.is_ready() && tb.sim.now() < deadline {
        tb.sim.run_for(Duration::from_millis(500));
    }
}

/// Runs `n_clients` closed-loop clients for `window` of virtual time
/// (after `warmup`) and returns completed ops/second.
///
/// Each client runs on its own machine (its own kernel port cache), like
/// the paper's workstations.
pub fn throughput<F>(
    tb: &mut Testbed,
    n_clients: usize,
    warmup: Duration,
    window: Duration,
    op: F,
) -> f64
where
    F: Fn(&Ctx, &DirClient, Capability, usize, usize) -> bool + Send + Sync + Clone + 'static,
{
    let counter = Arc::new(AtomicU64::new(0));
    let t_start = tb.sim.now() + warmup;
    let t_end = t_start + window;
    for c in 0..n_clients {
        let (client, _) = tb.cluster.client(&tb.sim);
        let root = tb.root;
        let counter = Arc::clone(&counter);
        let op = op.clone();
        tb.sim.spawn(&format!("load-client-{c}"), move |ctx| {
            let mut k = 0usize;
            loop {
                let done_at_start = ctx.now();
                if done_at_start >= t_end {
                    return;
                }
                let ok = op(ctx, &client, root, c, k);
                k += 1;
                let t = ctx.now();
                if ok && t >= t_start && t < t_end {
                    counter.fetch_add(1, Ordering::Relaxed);
                }
            }
        });
    }
    tb.sim.run_until(t_end + Duration::from_secs(2));
    counter.load(Ordering::Relaxed) as f64 / window.as_secs_f64()
}

/// Result of one sharded update-burst run.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardBurstResult {
    /// Completed appends per simulated second over the window.
    pub ops_per_sec: f64,
    /// Router store-and-forwards during the window (0 on a flat LAN).
    pub packets_forwarded: u64,
    /// Multicast forwards the routers pruned during the window.
    pub mcast_pruned: u64,
    /// Store-and-forwards per completed append.
    pub forwarded_per_op: f64,
    /// Disk head seeks across every replica's platter during the run
    /// (0 unless the head-aware disk model is on).
    pub disk_seeks: u64,
    /// Seeks per completed append — the group-log A/B's headline: a
    /// journaled commit is one sequential append, so this drops from
    /// several region hops per flush toward ~1.
    pub seeks_per_op: f64,
}

/// The sharded update-burst harness: a Group(3) deployment split into
/// `shards` replica groups (flat LAN, or each shard on its own segment
/// of a star internetwork when `routed`), `n_writers` closed-loop
/// writers each appending unique rows to **its own directory** —
/// directories land round-robin across the shards, so every shard's
/// sequencer and disks carry `1/shards` of the load. `pruning` toggles
/// the routers' multicast pruning (ignored on the flat LAN, which has
/// no routers).
pub fn sharded_update_burst(
    shards: usize,
    routed: bool,
    pruning: bool,
    n_writers: usize,
    warmup: Duration,
    window: Duration,
    seed: u64,
) -> ShardBurstResult {
    sharded_update_burst_with(
        shards,
        routed,
        pruning,
        n_writers,
        warmup,
        window,
        seed,
        |_| {},
    )
    .0
}

/// [`sharded_update_burst`] with a deployment-parameter hook (the
/// pipelined-commit A/B sets `dir.flush_window` and `disk.head_aware`
/// through it) plus per-op-family latency percentiles from a
/// metrics-only telemetry collector installed *after* setup, so the
/// histograms cover exactly the measured burst. Returns the burst
/// result and [`latency_rows`].
#[allow(clippy::too_many_arguments)]
pub fn sharded_update_burst_with(
    shards: usize,
    routed: bool,
    pruning: bool,
    n_writers: usize,
    warmup: Duration,
    window: Duration,
    seed: u64,
    tweak: impl FnOnce(&mut ClusterParams),
) -> (ShardBurstResult, Vec<(String, f64, f64, f64)>) {
    use amoeba_dir_core::cluster::ClusterTopology;
    use amoeba_dir_core::{DirClientError, DirError};

    let mut tb = testbed_with(Variant::Group, seed, |p| {
        p.shards = shards;
        if routed {
            p.net_topology = ClusterTopology::shard_star(shards);
        }
        tweak(p);
    });
    tb.cluster.net.set_multicast_pruning(pruning);

    // One directory per writer, placed round-robin across the shards.
    let client = tb.client.clone();
    let made = tb.sim.spawn("burst-dirs", move |ctx| {
        let mut dirs = Vec::new();
        for _ in 0..n_writers {
            loop {
                match client.create_dir(ctx, &["owner", "other"]) {
                    Ok(cap) => {
                        dirs.push(cap);
                        break;
                    }
                    Err(_) => ctx.sleep(Duration::from_millis(100)),
                }
            }
        }
        dirs
    });
    tb.sim.run_for(Duration::from_secs(30));
    let dirs = Arc::new(made.take().expect("burst directories created"));

    // Percentiles for the burst only: metrics-only, installed after the
    // directories exist, so setup ops stay out of the histograms.
    let tele = amoeba_telemetry::Telemetry::install_metrics_only(&tb.sim.handle());
    let before = tb.cluster.net.stats();
    let seeks_before: u64 = tb
        .cluster
        .columns
        .iter()
        .map(|c| c.vdisk.stats().seeks)
        .sum();
    let ops_per_sec = throughput(
        &mut tb,
        n_writers,
        warmup,
        window,
        move |ctx, client, _root, c, k| {
            let dir = dirs[c % dirs.len()];
            let name = format!("b{c}-{k}");
            for _ in 0..6 {
                match client.append_row(ctx, dir, &name, dir, vec![Rights::ALL, Rights::NONE]) {
                    Ok(()) => return true,
                    Err(DirClientError::Service(DirError::DuplicateName)) => return true,
                    Err(_) => ctx.sleep(Duration::from_millis(10)),
                }
            }
            false
        },
    );
    let d = tb.cluster.net.stats().since(&before);
    if std::env::var("BURST_STATS").is_ok() {
        for s in 0..shards {
            let st = tb.cluster.shard_server(s, 0).replica_stats();
            eprintln!(
                "    shard {s}: applied={} batches={} flush_runs={} hwm={} stalls={}",
                st.applied, st.batches, st.flush_runs, st.flush_inflight_hwm, st.window_stalls
            );
        }
    }
    let total_ops = ops_per_sec * window.as_secs_f64();
    let disk_seeks = tb
        .cluster
        .columns
        .iter()
        .map(|c| c.vdisk.stats().seeks)
        .sum::<u64>()
        .saturating_sub(seeks_before);
    (
        ShardBurstResult {
            ops_per_sec,
            packets_forwarded: d.packets_forwarded,
            mcast_pruned: d.mcast_pruned,
            forwarded_per_op: if total_ops > 0.0 {
                d.packets_forwarded as f64 / total_ops
            } else {
                f64::NAN
            },
            disk_seeks,
            seeks_per_op: if total_ops > 0.0 {
                disk_seeks as f64 / total_ops
            } else {
                f64::NAN
            },
        },
        latency_rows(&tele.metrics()),
    )
}

/// Result of one skewed-placement migration run.
#[derive(Debug, Clone, PartialEq)]
pub struct MigrationBurstResult {
    /// Completed appends per simulated second over the window.
    pub ops_per_sec: f64,
    /// Forwarding stubs on the hot shard at the end — i.e. directories
    /// the rebalancer migrated away (0 with the rebalancer off).
    pub migrated: usize,
}

/// The skewed hot-shard harness behind the `+migration` A/B: a sharded
/// Group(3) deployment where **every** writer's directory is
/// deliberately placed on shard 0 — the single-sequencer hotspot a
/// static placement cannot shed. With `rebalance` the deployment runs
/// the lease-fenced [`RebalancerParams`] rebalancer, which migrates the
/// hot directories across the other shards *during the warmup* (the
/// writers keep their original capabilities and follow the forwarding
/// stubs), and the measured window shows throughput recovering without
/// a redeploy.
///
/// [`RebalancerParams`]: amoeba_dir_core::cluster::RebalancerParams
pub fn migration_burst(
    shards: usize,
    rebalance: bool,
    n_writers: usize,
    warmup: Duration,
    window: Duration,
    seed: u64,
) -> MigrationBurstResult {
    use amoeba_dir_core::cluster::RebalancerParams;
    use amoeba_dir_core::{DirClientError, DirError, ShardMap};

    let mut tb = testbed_with(Variant::Group, seed, |p| {
        p.shards = shards;
        if rebalance {
            p.lease_service = true;
            // Trigger thresholds chosen to fire hard on the initial
            // hotspot (hot/cold ratio is effectively infinite while a
            // shard sits idle) and go quiet once the placement is
            // balanced (per-shard deltas converge, the ratio drops
            // under 2), so the measured window sees a steady state,
            // not migration churn. The 2 s interval keeps per-interval
            // deltas large enough to be meaningful at disk-bound
            // update rates.
            p.rebalancer = Some(RebalancerParams {
                interval: Duration::from_secs(2),
                skew_ratio: 1.5,
                min_hot_ops: 12,
                moves_per_round: 4,
                lease_ttl: 64,
            });
        }
    });

    // The skew: every writer's directory is created on shard 0 (creates
    // landing elsewhere are simply discarded — they stay empty).
    let client = tb.client.clone();
    let map = ShardMap::new(shards);
    let made = tb.sim.spawn("skewed-dirs", move |ctx| {
        let mut dirs = Vec::new();
        while dirs.len() < n_writers {
            match client.create_dir(ctx, &["owner", "other"]) {
                Ok(cap) if map.shard_of_cap(&cap) == Some(0) => dirs.push(cap),
                Ok(_) => {}
                Err(_) => ctx.sleep(Duration::from_millis(100)),
            }
        }
        dirs
    });
    tb.sim.run_for(Duration::from_secs(60));
    let dirs = Arc::new(made.take().expect("skewed directories created"));

    let ops_per_sec = throughput(
        &mut tb,
        n_writers,
        warmup,
        window,
        move |ctx, client, _root, c, k| {
            let dir = dirs[c % dirs.len()];
            let name = format!("m{c}-{k}");
            for _ in 0..6 {
                match client.append_row(ctx, dir, &name, dir, vec![Rights::ALL, Rights::NONE]) {
                    Ok(()) => return true,
                    Err(DirClientError::Service(DirError::DuplicateName)) => return true,
                    Err(_) => ctx.sleep(Duration::from_millis(10)),
                }
            }
            false
        },
    );
    MigrationBurstResult {
        ops_per_sec,
        migrated: tb.cluster.shard_server(0, 0).stub_count(),
    }
}

/// Result of one zipfian read-mix run.
#[derive(Debug, Clone, PartialEq)]
pub struct ReadMixResult {
    /// Completed lookups per simulated second over the window.
    pub lookups_per_sec: f64,
    /// Completed append+delete pairs per simulated second.
    pub updates_per_sec: f64,
    /// Mean append+delete pair latency in simulated ms — with the
    /// cache on this *includes* the lease-revocation fan-out a write
    /// pays before it is acknowledged.
    pub update_latency_ms: f64,
    /// Cache hits over total lookups issued (NaN with the cache off).
    pub hit_rate: f64,
    /// Aggregate reader-side cache counters (zeros with the cache off).
    pub cache: CacheStats,
    /// Per-op-family latency percentiles over the whole run, from the
    /// telemetry layer's histograms: `(family, p50_ms, p95_ms, p99_ms)`
    /// rows, one per client-op family that saw traffic.
    pub latency: Vec<(String, f64, f64, f64)>,
}

/// Flattens a metrics snapshot into `(family, p50_ms, p95_ms, p99_ms)`
/// rows for every histogram family with at least one observation.
pub fn latency_rows(m: &amoeba_telemetry::MetricsSnapshot) -> Vec<(String, f64, f64, f64)> {
    m.hists
        .iter()
        .filter(|(_, h)| h.count > 0)
        .map(|(family, h)| {
            (
                family.clone(),
                h.percentile(50.0) as f64 / 1e3,
                h.percentile(95.0) as f64 / 1e3,
                h.percentile(99.0) as f64 / 1e3,
            )
        })
        .collect()
}

/// The production read-mix harness behind the `+readmix` A/B: a sharded
/// Group(3) deployment, `n_dirs` directories placed round-robin across
/// the shards, `n_readers` closed-loop clients resolving a seeded row
/// in Zipf-distributed directories while `n_writers` paced writers run
/// append+delete pairs over a **uniform** directory distribution — the
/// classic production shape (reads concentrate, updates spread), so
/// every directory sees periodic invalidations without one disk-bound
/// hot shard queueing the whole read path. (The all-holders-on-one-dir
/// worst case is measured separately by [`invalidation_storm`].) With
/// `cached` every client machine runs the lease-fenced [`DirCache`]
/// (plus its invalidation listener); with it off the deployment is
/// parameter-identical and the read path is the unmodified per-lookup
/// RPC.
///
/// A cached hit costs **zero** simulated packets, so each reader op
/// pays a small fixed think time (the application CPU between
/// directory calls) — without it a closed loop over a warm cache would
/// spin without advancing the simulated clock.
///
/// The bench leases run longer than the 400 ms production default:
/// a renewal is a group-ordered `GrantRead`, so with `n_dirs` cached
/// directories each client pays `n_dirs / ttl` ordered ops per second
/// of pure renewal traffic — the TTL is the knob that trades write-ack
/// worst case (a crashed holder stalls a write for up to one TTL)
/// against renewal load. `max_lease` on the service is raised to match
/// in **both** arms, so the A/B differs only in the cache itself.
///
/// [`DirCache`]: amoeba_dir_core::DirCache
#[allow(clippy::too_many_arguments)]
pub fn read_mix_burst(
    shards: usize,
    cached: bool,
    n_readers: usize,
    n_writers: usize,
    n_dirs: usize,
    warmup: Duration,
    window: Duration,
    seed: u64,
) -> ReadMixResult {
    let ttl = Duration::from_secs(3);
    let mut tb = testbed_with(Variant::Group, seed, |p| {
        p.shards = shards;
        p.dir.max_lease = ttl;
        if cached {
            p.dir_cache = Some(CacheParams {
                ttl,
                ..CacheParams::default()
            });
        }
    });

    // The working set: n_dirs directories round-robin across the
    // shards, each seeded with the row the readers resolve.
    let client = tb.client.clone();
    let made = tb.sim.spawn("readmix-dirs", move |ctx| {
        let mut dirs = Vec::new();
        for _ in 0..n_dirs {
            loop {
                match client.create_dir(ctx, &["owner", "other"]) {
                    Ok(cap) => {
                        if client
                            .append_row(ctx, cap, "payload", cap, vec![Rights::ALL, Rights::NONE])
                            .is_ok()
                        {
                            dirs.push(cap);
                            break;
                        }
                    }
                    Err(_) => ctx.sleep(Duration::from_millis(100)),
                }
            }
        }
        dirs
    });
    tb.sim.run_for(Duration::from_secs(120));
    let dirs = Arc::new(made.take().expect("read-mix directories created"));
    let zipf = Arc::new(zipf_cdf(n_dirs, 1.1));

    // Percentiles for the measured mix only: install the metrics-only
    // collector after setup, so histograms exclude directory seeding.
    let tele = amoeba_telemetry::Telemetry::install_metrics_only(&tb.sim.handle());

    let t_start = tb.sim.now() + warmup;
    let t_end = t_start + window;
    let lookups = Arc::new(AtomicU64::new(0));
    let pairs = Arc::new(AtomicU64::new(0));
    let pair_us = Arc::new(AtomicU64::new(0));
    let think = Duration::from_micros(100);

    let mut readers = Vec::new();
    for c in 0..n_readers {
        let (rd, _) = tb.cluster.client(&tb.sim);
        readers.push(rd.clone());
        let dirs = Arc::clone(&dirs);
        let zipf = Arc::clone(&zipf);
        let lookups = Arc::clone(&lookups);
        tb.sim.spawn(&format!("readmix-reader-{c}"), move |ctx| {
            let mut rng = seed ^ (0xA5A5_0000 + c as u64);
            loop {
                if ctx.now() >= t_end {
                    return;
                }
                let dir = dirs[zipf_pick(&zipf, &mut rng)];
                let ok = matches!(rd.lookup(ctx, dir, "payload"), Ok(Some(_)));
                let t = ctx.now();
                if ok && t >= t_start && t < t_end {
                    lookups.fetch_add(1, Ordering::Relaxed);
                }
                ctx.sleep(think);
            }
        });
    }
    for c in 0..n_writers {
        let (wr, _) = tb.cluster.client(&tb.sim);
        let dirs = Arc::clone(&dirs);
        let pairs = Arc::clone(&pairs);
        let pair_us = Arc::clone(&pair_us);
        tb.sim.spawn(&format!("readmix-writer-{c}"), move |ctx| {
            let mut rng = seed ^ (0x3333_0000 + c as u64);
            let mut k = 0usize;
            loop {
                if ctx.now() >= t_end {
                    return;
                }
                // Uniform target + a pause between pairs: a paced
                // update stream, not a disk-saturating burst.
                let dir = dirs[uniform_pick(&mut rng, dirs.len())];
                let t0 = ctx.now();
                let ok = append_delete_pair(ctx, &wr, dir, format!("w{c}-{k}"));
                k += 1;
                let t = ctx.now();
                if ok && t0 >= t_start && t < t_end {
                    pairs.fetch_add(1, Ordering::Relaxed);
                    pair_us.fetch_add((t - t0).as_micros() as u64, Ordering::Relaxed);
                }
                ctx.sleep(Duration::from_millis(1000));
            }
        });
    }
    tb.sim.run_until(t_end + Duration::from_secs(2));

    let mut cache = CacheStats::default();
    for rd in &readers {
        if let Some(s) = rd.cache_stats() {
            cache.hits += s.hits;
            cache.misses += s.misses;
            cache.invalidations += s.invalidations;
            cache.renewals += s.renewals;
            cache.stale_rejects += s.stale_rejects;
            cache.renewals_saved += s.renewals_saved;
        }
    }
    let issued = cache.hits + cache.misses + cache.renewals + cache.stale_rejects;
    let n_pairs = pairs.load(Ordering::Relaxed);
    ReadMixResult {
        lookups_per_sec: lookups.load(Ordering::Relaxed) as f64 / window.as_secs_f64(),
        updates_per_sec: n_pairs as f64 / window.as_secs_f64(),
        update_latency_ms: if n_pairs > 0 {
            pair_us.load(Ordering::Relaxed) as f64 / 1e3 / n_pairs as f64
        } else {
            f64::NAN
        },
        hit_rate: if issued > 0 {
            cache.hits as f64 / issued as f64
        } else {
            f64::NAN
        },
        cache,
        latency: latency_rows(&tele.metrics()),
    }
}

/// One arm of the telemetry-overhead A/B.
///
/// The simulated-clock fields (`ops_per_sec`, `end`) must be
/// bit-identical across the traced and untraced arms — tracing rides
/// out-of-band metadata, never touches the wire or the scheduler — so
/// the only cost of turning it on is host-side, which the pipeline
/// bench times around this call.
#[derive(Debug, Clone, PartialEq)]
pub struct TracedBurstResult {
    /// Completed appends per simulated second over the window.
    pub ops_per_sec: f64,
    /// Simulated time when the run stopped.
    pub end: SimTime,
    /// Spans recorded (0 in the untraced arm).
    pub spans: usize,
    /// Packet flow edges recorded (0 in the untraced arm).
    pub flows: usize,
}

/// The telemetry-overhead workload: `n_writers` closed-loop writers
/// appending unique rows to one group-replicated directory, with full
/// span tracing either installed (`traced`) or absent.
pub fn traced_update_burst(
    traced: bool,
    n_writers: usize,
    warmup: Duration,
    window: Duration,
    seed: u64,
) -> TracedBurstResult {
    use amoeba_dir_core::{DirClientError, DirError};
    let (mut tb, tele) = testbed_inner(Variant::Group, seed, |_| {}, traced);
    let ops_per_sec = throughput(
        &mut tb,
        n_writers,
        warmup,
        window,
        |ctx, client, root, c, k| {
            let name = format!("t{c}-{k}");
            for _ in 0..6 {
                match client.append_row(ctx, root, &name, root, vec![Rights::ALL, Rights::NONE]) {
                    Ok(()) => return true,
                    Err(DirClientError::Service(DirError::DuplicateName)) => return true,
                    Err(_) => ctx.sleep(Duration::from_millis(10)),
                }
            }
            false
        },
    );
    let tele = tele.unwrap_or_else(amoeba_telemetry::Telemetry::disabled);
    TracedBurstResult {
        ops_per_sec,
        end: tb.sim.now(),
        spans: tele.spans().len(),
        flows: tele.flows().len(),
    }
}

/// Result of the invalidation-storm probe.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StormResult {
    /// Latency (ms) of the single write that had to revoke every
    /// outstanding read lease before it could be acknowledged.
    pub write_latency_ms: f64,
    /// Cached entries the write dropped across the reader fleet.
    pub invalidations: u64,
}

/// The invalidation-storm probe: `n_readers` cached clients all hold a
/// live read lease on **one** directory (they re-resolve it on a short
/// cadence, so lazy renewal keeps the leases fresh), then a single
/// write lands on that directory. The measured latency is the full
/// revoke-before-ack cost — one invalidation callback per holder —
/// and `invalidations` confirms every reader's entry was dropped.
pub fn invalidation_storm(shards: usize, n_readers: usize, seed: u64) -> StormResult {
    let mut tb = testbed_with(Variant::Group, seed, |p| {
        p.shards = shards;
        p.dir_cache = Some(CacheParams::default());
    });
    let client = tb.client.clone();
    let root = tb.root;
    let seeded = tb.sim.spawn("storm-seed", move |ctx| {
        client
            .append_row(ctx, root, "payload", root, vec![Rights::ALL, Rights::NONE])
            .is_ok()
    });
    tb.sim.run_for(Duration::from_secs(10));
    assert_eq!(seeded.take(), Some(true), "storm seed append failed");

    let stop = Arc::new(AtomicU64::new(0));
    let mut readers = Vec::new();
    for c in 0..n_readers {
        let (rd, _) = tb.cluster.client(&tb.sim);
        readers.push(rd.clone());
        let stop = Arc::clone(&stop);
        tb.sim.spawn(&format!("storm-reader-{c}"), move |ctx| loop {
            if stop.load(Ordering::Relaxed) != 0 {
                return;
            }
            let _ = rd.lookup(ctx, root, "payload");
            ctx.sleep(Duration::from_millis(50));
        });
    }
    tb.sim.run_for(Duration::from_secs(1)); // every reader's cache is hot
    let before: u64 = readers
        .iter()
        .filter_map(|r| r.cache_stats())
        .map(|s| s.invalidations)
        .sum();
    let (wr, _) = tb.cluster.client(&tb.sim);
    let probe = tb.sim.spawn("storm-writer", move |ctx| {
        let t0 = ctx.now();
        let ok = wr
            .append_row(ctx, root, "storm", root, vec![Rights::ALL, Rights::NONE])
            .is_ok();
        (ok, (ctx.now() - t0).as_secs_f64() * 1e3)
    });
    tb.sim.run_for(Duration::from_secs(30));
    stop.store(1, Ordering::Relaxed);
    tb.sim.run_for(Duration::from_millis(200));
    let (ok, write_latency_ms) = probe.take().expect("storm write finished");
    assert!(ok, "storm write must succeed");
    let after: u64 = readers
        .iter()
        .filter_map(|r| r.cache_stats())
        .map(|s| s.invalidations)
        .sum();
    StormResult {
        write_latency_ms,
        invalidations: after.saturating_sub(before),
    }
}

/// Cumulative Zipf(`s`) distribution over ranks `0..n` (last entry 1).
fn zipf_cdf(n: usize, s: f64) -> Vec<f64> {
    let mut cdf: Vec<f64> = (0..n).map(|r| 1.0 / ((r + 1) as f64).powf(s)).collect();
    let total: f64 = cdf.iter().sum();
    let mut acc = 0.0;
    for w in &mut cdf {
        acc += *w / total;
        *w = acc;
    }
    cdf
}

/// Draws a rank from a [`zipf_cdf`] table with an LCG (deterministic
/// per seed, so runs reproduce exactly).
fn zipf_pick(cdf: &[f64], state: &mut u64) -> usize {
    let u = (lcg_next(state) >> 11) as f64 / (1u64 << 53) as f64;
    cdf.partition_point(|&c| c < u).min(cdf.len() - 1)
}

/// Draws uniformly from `0..n` with the same LCG.
fn uniform_pick(state: &mut u64, n: usize) -> usize {
    (lcg_next(state) >> 11) as usize % n
}

fn lcg_next(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state
}

/// Formats a paper-vs-measured table row.
pub fn row(label: &str, paper: &str, measured: f64, unit: &str) -> String {
    format!("{label:<28} {paper:>12} {measured:>12.1} {unit}")
}

/// The append-delete pair workload (Fig. 7 row 1, Fig. 9). Adapts the
/// rights-mask count to the directory's columns and retries transient
/// busy failures a few times, as a real client would.
pub fn append_delete_pair(ctx: &Ctx, client: &DirClient, dir: Capability, tag: String) -> bool {
    use amoeba_dir_core::{DirClientError, DirError};
    let mut appended = false;
    let mut masks = vec![Rights::ALL];
    for _ in 0..6 {
        match client.append_row(ctx, dir, &tag, dir, masks.clone()) {
            Ok(()) => {
                appended = true;
                break;
            }
            Err(DirClientError::Service(DirError::ColumnMismatch)) => {
                masks.push(Rights::NONE);
            }
            Err(DirClientError::Service(DirError::DuplicateName)) => {
                appended = true; // an earlier retry actually landed
                break;
            }
            Err(_) => ctx.sleep(Duration::from_millis(10)),
        }
    }
    if !appended {
        return false;
    }
    for _ in 0..6 {
        match client.delete_row(ctx, dir, &tag) {
            Ok(()) => return true,
            Err(DirClientError::Service(DirError::NoSuchName)) => return true,
            Err(_) => ctx.sleep(Duration::from_millis(10)),
        }
    }
    false
}

/// One lookup of an existing name (Fig. 7 row 3, Fig. 8).
pub fn lookup_once(ctx: &Ctx, client: &DirClient, root: Capability, name: &str) -> bool {
    matches!(client.lookup(ctx, root, name), Ok(Some(_)))
}

/// The current virtual time of a testbed.
pub fn now(tb: &Testbed) -> SimTime {
    tb.sim.now()
}

//! Shared experiment harness for the figure/table regeneration binaries.
//!
//! Every experiment builds a deployment with
//! [`amoeba_dir_core::cluster::Cluster`], runs a workload under
//! virtual time, and reports latencies/throughputs measured on the
//! simulated clock — the same quantities the paper's Figs. 7–9 report.

pub mod group_pipeline;
pub mod microbench;
pub mod summary;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use amoeba_dir_core::cluster::{Cluster, ClusterParams, Variant};
use amoeba_dir_core::{Capability, DirClient, Rights};
use amoeba_sim::{Ctx, SimTime, Simulation};

/// A ready-to-measure deployment: cluster + a root directory.
pub struct Testbed {
    /// The simulation (run it to advance the experiment).
    pub sim: Simulation,
    /// The deployment.
    pub cluster: Cluster,
    /// A formed root directory every client can use.
    pub root: Capability,
    /// A client on its own machine, already warmed up.
    pub client: DirClient,
}

impl std::fmt::Debug for Testbed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Testbed({})", self.cluster.params.variant.label())
    }
}

/// Builds a deployment of `variant`, waits for it to form, creates a root
/// directory.
///
/// # Panics
///
/// Panics if the service does not form within a minute of virtual time.
pub fn testbed(variant: Variant, seed: u64) -> Testbed {
    testbed_with(variant, seed, |_| {})
}

/// [`testbed`] with a hook to adjust the deployment parameters.
///
/// # Panics
///
/// Panics if the service does not form within a minute of virtual time.
pub fn testbed_with(
    variant: Variant,
    seed: u64,
    tweak: impl FnOnce(&mut ClusterParams),
) -> Testbed {
    let mut sim = Simulation::new(seed);
    let mut params = ClusterParams::paper(variant);
    params.seed = seed;
    tweak(&mut params);
    let mut cluster = Cluster::start(&sim, params);
    let (client, _) = cluster.client(&sim);
    let c2 = client.clone();
    let out = sim.spawn("testbed-setup", move |ctx| loop {
        match c2.create_dir(ctx, &["owner", "other"]) {
            Ok(cap) => return cap,
            Err(_) => ctx.sleep(Duration::from_millis(100)),
        }
    });
    sim.run_for(Duration::from_secs(60));
    let root = out.take().expect("service failed to form within 60 s");
    Testbed {
        sim,
        cluster,
        root,
        client,
    }
}

/// Measures mean latency (ms) of `op` over `iters` runs from one client.
pub fn mean_latency_ms<F>(tb: &mut Testbed, iters: usize, op: F) -> f64
where
    F: Fn(&Ctx, &DirClient, Capability, usize) + Send + Sync + 'static,
{
    let client = tb.client.clone();
    let root = tb.root;
    let out = tb.sim.spawn("latency-probe", move |ctx| {
        // One warmup iteration to fill caches.
        op(ctx, &client, root, usize::MAX);
        let mut total = Duration::ZERO;
        for i in 0..iters {
            let t0 = ctx.now();
            op(ctx, &client, root, i);
            total += ctx.now() - t0;
        }
        total.as_secs_f64() * 1e3 / iters as f64
    });
    run_until_ready(tb, &out, Duration::from_secs(600));
    out.take().expect("latency probe finished")
}

/// Advances the simulation in slices until the probe's value is ready,
/// without burning virtual time on idle background timers afterwards.
pub fn run_until_ready<R>(tb: &mut Testbed, out: &amoeba_sim::ProcOutput<R>, limit: Duration) {
    let deadline = tb.sim.now() + limit;
    while !out.is_ready() && tb.sim.now() < deadline {
        tb.sim.run_for(Duration::from_millis(500));
    }
}

/// Runs `n_clients` closed-loop clients for `window` of virtual time
/// (after `warmup`) and returns completed ops/second.
///
/// Each client runs on its own machine (its own kernel port cache), like
/// the paper's workstations.
pub fn throughput<F>(
    tb: &mut Testbed,
    n_clients: usize,
    warmup: Duration,
    window: Duration,
    op: F,
) -> f64
where
    F: Fn(&Ctx, &DirClient, Capability, usize, usize) -> bool + Send + Sync + Clone + 'static,
{
    let counter = Arc::new(AtomicU64::new(0));
    let t_start = tb.sim.now() + warmup;
    let t_end = t_start + window;
    for c in 0..n_clients {
        let (client, _) = tb.cluster.client(&tb.sim);
        let root = tb.root;
        let counter = Arc::clone(&counter);
        let op = op.clone();
        tb.sim.spawn(&format!("load-client-{c}"), move |ctx| {
            let mut k = 0usize;
            loop {
                let done_at_start = ctx.now();
                if done_at_start >= t_end {
                    return;
                }
                let ok = op(ctx, &client, root, c, k);
                k += 1;
                let t = ctx.now();
                if ok && t >= t_start && t < t_end {
                    counter.fetch_add(1, Ordering::Relaxed);
                }
            }
        });
    }
    tb.sim.run_until(t_end + Duration::from_secs(2));
    counter.load(Ordering::Relaxed) as f64 / window.as_secs_f64()
}

/// Result of one sharded update-burst run.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardBurstResult {
    /// Completed appends per simulated second over the window.
    pub ops_per_sec: f64,
    /// Router store-and-forwards during the window (0 on a flat LAN).
    pub packets_forwarded: u64,
    /// Multicast forwards the routers pruned during the window.
    pub mcast_pruned: u64,
    /// Store-and-forwards per completed append.
    pub forwarded_per_op: f64,
}

/// The sharded update-burst harness: a Group(3) deployment split into
/// `shards` replica groups (flat LAN, or each shard on its own segment
/// of a star internetwork when `routed`), `n_writers` closed-loop
/// writers each appending unique rows to **its own directory** —
/// directories land round-robin across the shards, so every shard's
/// sequencer and disks carry `1/shards` of the load. `pruning` toggles
/// the routers' multicast pruning (ignored on the flat LAN, which has
/// no routers).
pub fn sharded_update_burst(
    shards: usize,
    routed: bool,
    pruning: bool,
    n_writers: usize,
    warmup: Duration,
    window: Duration,
    seed: u64,
) -> ShardBurstResult {
    use amoeba_dir_core::cluster::ClusterTopology;
    use amoeba_dir_core::{DirClientError, DirError};

    let mut tb = testbed_with(Variant::Group, seed, |p| {
        p.shards = shards;
        if routed {
            p.net_topology = ClusterTopology::shard_star(shards);
        }
    });
    tb.cluster.net.set_multicast_pruning(pruning);

    // One directory per writer, placed round-robin across the shards.
    let client = tb.client.clone();
    let made = tb.sim.spawn("burst-dirs", move |ctx| {
        let mut dirs = Vec::new();
        for _ in 0..n_writers {
            loop {
                match client.create_dir(ctx, &["owner", "other"]) {
                    Ok(cap) => {
                        dirs.push(cap);
                        break;
                    }
                    Err(_) => ctx.sleep(Duration::from_millis(100)),
                }
            }
        }
        dirs
    });
    tb.sim.run_for(Duration::from_secs(30));
    let dirs = Arc::new(made.take().expect("burst directories created"));

    let before = tb.cluster.net.stats();
    let ops_per_sec = throughput(
        &mut tb,
        n_writers,
        warmup,
        window,
        move |ctx, client, _root, c, k| {
            let dir = dirs[c % dirs.len()];
            let name = format!("b{c}-{k}");
            for _ in 0..6 {
                match client.append_row(ctx, dir, &name, dir, vec![Rights::ALL, Rights::NONE]) {
                    Ok(()) => return true,
                    Err(DirClientError::Service(DirError::DuplicateName)) => return true,
                    Err(_) => ctx.sleep(Duration::from_millis(10)),
                }
            }
            false
        },
    );
    let d = tb.cluster.net.stats().since(&before);
    let total_ops = ops_per_sec * window.as_secs_f64();
    ShardBurstResult {
        ops_per_sec,
        packets_forwarded: d.packets_forwarded,
        mcast_pruned: d.mcast_pruned,
        forwarded_per_op: if total_ops > 0.0 {
            d.packets_forwarded as f64 / total_ops
        } else {
            f64::NAN
        },
    }
}

/// Result of one skewed-placement migration run.
#[derive(Debug, Clone, PartialEq)]
pub struct MigrationBurstResult {
    /// Completed appends per simulated second over the window.
    pub ops_per_sec: f64,
    /// Forwarding stubs on the hot shard at the end — i.e. directories
    /// the rebalancer migrated away (0 with the rebalancer off).
    pub migrated: usize,
}

/// The skewed hot-shard harness behind the `+migration` A/B: a sharded
/// Group(3) deployment where **every** writer's directory is
/// deliberately placed on shard 0 — the single-sequencer hotspot a
/// static placement cannot shed. With `rebalance` the deployment runs
/// the lease-fenced [`RebalancerParams`] rebalancer, which migrates the
/// hot directories across the other shards *during the warmup* (the
/// writers keep their original capabilities and follow the forwarding
/// stubs), and the measured window shows throughput recovering without
/// a redeploy.
///
/// [`RebalancerParams`]: amoeba_dir_core::cluster::RebalancerParams
pub fn migration_burst(
    shards: usize,
    rebalance: bool,
    n_writers: usize,
    warmup: Duration,
    window: Duration,
    seed: u64,
) -> MigrationBurstResult {
    use amoeba_dir_core::cluster::RebalancerParams;
    use amoeba_dir_core::{DirClientError, DirError, ShardMap};

    let mut tb = testbed_with(Variant::Group, seed, |p| {
        p.shards = shards;
        if rebalance {
            p.lease_service = true;
            // Trigger thresholds chosen to fire hard on the initial
            // hotspot (hot/cold ratio is effectively infinite while a
            // shard sits idle) and go quiet once the placement is
            // balanced (per-shard deltas converge, the ratio drops
            // under 2), so the measured window sees a steady state,
            // not migration churn. The 2 s interval keeps per-interval
            // deltas large enough to be meaningful at disk-bound
            // update rates.
            p.rebalancer = Some(RebalancerParams {
                interval: Duration::from_secs(2),
                skew_ratio: 1.5,
                min_hot_ops: 12,
                moves_per_round: 4,
                lease_ttl: 64,
            });
        }
    });

    // The skew: every writer's directory is created on shard 0 (creates
    // landing elsewhere are simply discarded — they stay empty).
    let client = tb.client.clone();
    let map = ShardMap::new(shards);
    let made = tb.sim.spawn("skewed-dirs", move |ctx| {
        let mut dirs = Vec::new();
        while dirs.len() < n_writers {
            match client.create_dir(ctx, &["owner", "other"]) {
                Ok(cap) if map.shard_of_cap(&cap) == Some(0) => dirs.push(cap),
                Ok(_) => {}
                Err(_) => ctx.sleep(Duration::from_millis(100)),
            }
        }
        dirs
    });
    tb.sim.run_for(Duration::from_secs(60));
    let dirs = Arc::new(made.take().expect("skewed directories created"));

    let ops_per_sec = throughput(
        &mut tb,
        n_writers,
        warmup,
        window,
        move |ctx, client, _root, c, k| {
            let dir = dirs[c % dirs.len()];
            let name = format!("m{c}-{k}");
            for _ in 0..6 {
                match client.append_row(ctx, dir, &name, dir, vec![Rights::ALL, Rights::NONE]) {
                    Ok(()) => return true,
                    Err(DirClientError::Service(DirError::DuplicateName)) => return true,
                    Err(_) => ctx.sleep(Duration::from_millis(10)),
                }
            }
            false
        },
    );
    MigrationBurstResult {
        ops_per_sec,
        migrated: tb.cluster.shard_server(0, 0).stub_count(),
    }
}

/// Formats a paper-vs-measured table row.
pub fn row(label: &str, paper: &str, measured: f64, unit: &str) -> String {
    format!("{label:<28} {paper:>12} {measured:>12.1} {unit}")
}

/// The append-delete pair workload (Fig. 7 row 1, Fig. 9). Adapts the
/// rights-mask count to the directory's columns and retries transient
/// busy failures a few times, as a real client would.
pub fn append_delete_pair(ctx: &Ctx, client: &DirClient, dir: Capability, tag: String) -> bool {
    use amoeba_dir_core::{DirClientError, DirError};
    let mut appended = false;
    let mut masks = vec![Rights::ALL];
    for _ in 0..6 {
        match client.append_row(ctx, dir, &tag, dir, masks.clone()) {
            Ok(()) => {
                appended = true;
                break;
            }
            Err(DirClientError::Service(DirError::ColumnMismatch)) => {
                masks.push(Rights::NONE);
            }
            Err(DirClientError::Service(DirError::DuplicateName)) => {
                appended = true; // an earlier retry actually landed
                break;
            }
            Err(_) => ctx.sleep(Duration::from_millis(10)),
        }
    }
    if !appended {
        return false;
    }
    for _ in 0..6 {
        match client.delete_row(ctx, dir, &tag) {
            Ok(()) => return true,
            Err(DirClientError::Service(DirError::NoSuchName)) => return true,
            Err(_) => ctx.sleep(Duration::from_millis(10)),
        }
    }
    false
}

/// One lookup of an existing name (Fig. 7 row 3, Fig. 8).
pub fn lookup_once(ctx: &Ctx, client: &DirClient, root: Capability, name: &str) -> bool {
    matches!(client.lookup(ctx, root, name), Ok(Some(_)))
}

/// The current virtual time of a testbed.
pub fn now(tb: &Testbed) -> SimTime {
    tb.sim.now()
}

//! Deterministic randomized-testing helpers.
//!
//! The build environment is offline, so `proptest` is unavailable; this
//! crate provides the small slice of it the workspace needs: a seeded
//! generator plus a [`check`] driver that runs a property over many
//! generated cases and reports the failing case's seed so it can be
//! replayed exactly.
//!
//! ```
//! use amoeba_testkit::{check, Gen};
//!
//! check("addition commutes", 256, |g: &mut Gen| {
//!     let (a, b) = (g.u32(), g.u32());
//!     assert_eq!(a.wrapping_add(b), b.wrapping_add(a));
//! });
//! ```

#![warn(missing_docs)]

/// A deterministic generator of arbitrary test values (splitmix64 core).
#[derive(Debug, Clone)]
pub struct Gen {
    state: u64,
}

impl Gen {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Gen {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// The next raw 64-bit value.
    pub fn u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// An arbitrary `u32`.
    pub fn u32(&mut self) -> u32 {
        self.u64() as u32
    }

    /// An arbitrary `u16`.
    pub fn u16(&mut self) -> u16 {
        self.u64() as u16
    }

    /// An arbitrary `u8`.
    pub fn u8(&mut self) -> u8 {
        self.u64() as u8
    }

    /// An arbitrary `bool`.
    pub fn boolean(&mut self) -> bool {
        self.u64() & 1 == 1
    }

    /// A value in `[0, bound)` (bound must be non-zero).
    pub fn below(&mut self, bound: usize) -> usize {
        (self.u64() % bound as u64) as usize
    }

    /// A byte vector with length in `[0, max_len]`.
    pub fn bytes(&mut self, max_len: usize) -> Vec<u8> {
        let len = self.below(max_len + 1);
        (0..len).map(|_| self.u8()).collect()
    }

    /// An ASCII alphanumeric string with length in `[0, max_len]`.
    pub fn string(&mut self, max_len: usize) -> String {
        const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_-";
        let len = self.below(max_len + 1);
        (0..len)
            .map(|_| ALPHABET[self.below(ALPHABET.len())] as char)
            .collect()
    }

    /// An arbitrary UTF-8 string (not just ASCII) with char count in
    /// `[0, max_chars]`.
    pub fn utf8(&mut self, max_chars: usize) -> String {
        let len = self.below(max_chars + 1);
        (0..len)
            .map(|_| {
                // Bias towards ASCII but exercise multi-byte code points.
                match self.below(4) {
                    0..=2 => (0x20 + self.below(0x5F) as u32) as u8 as char,
                    _ => char::from_u32(0x00A0 + self.below(0x1000) as u32).unwrap_or('\u{00A0}'),
                }
            })
            .collect()
    }
}

/// Runs `property` over `cases` generated inputs; panics with the failing
/// case's seed on the first failure.
///
/// # Panics
///
/// Re-raises the property's panic, prefixed with the case seed so
/// `Gen::new(seed)` replays the exact failing input.
pub fn check(name: &str, cases: u64, property: impl Fn(&mut Gen)) {
    for case in 0..cases {
        let seed = 0xA0E_BA00 + case;
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            property(&mut Gen::new(seed))
        }));
        if let Err(payload) = result {
            eprintln!("property '{name}' failed at case {case} (Gen seed {seed:#x})");
            std::panic::resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let a: Vec<u64> = (0..8)
            .map(|_| 0)
            .scan(Gen::new(7), |g, _| Some(g.u64()))
            .collect();
        let b: Vec<u64> = (0..8)
            .map(|_| 0)
            .scan(Gen::new(7), |g, _| Some(g.u64()))
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn bytes_respects_max_len() {
        let mut g = Gen::new(3);
        for _ in 0..100 {
            assert!(g.bytes(17).len() <= 17);
        }
    }

    #[test]
    #[should_panic]
    fn check_propagates_failure() {
        check("always fails", 1, |_| panic!("boom"));
    }
}

//! The paper's §4.1 `/tmp` scenario on the NVRAM service: temporary names
//! appended and quickly deleted annihilate inside the NVRAM log and never
//! cost a disk operation.
//!
//! Run with: `cargo run --example nvram_tmp_files --release`

use std::time::Duration;

use amoeba_dirsvc::dir::cluster::{Cluster, ClusterParams, Variant};
use amoeba_dirsvc::dir::Rights;
use amoeba_dirsvc::sim::Simulation;

fn main() {
    let mut sim = Simulation::new(5);
    let mut cluster = Cluster::start(&sim, ClusterParams::paper(Variant::GroupNvram));
    let (client, _) = cluster.client(&sim);

    let disks: Vec<_> = cluster.columns.iter().map(|c| c.vdisk.clone()).collect();
    let nvrams: Vec<_> = cluster.columns.iter().map(|c| c.nvram.clone()).collect();

    let out = sim.spawn("tmp-workload", move |ctx| {
        let tmp = loop {
            match client.create_dir(ctx, &["owner"]) {
                Ok(c) => break c,
                Err(_) => ctx.sleep(Duration::from_millis(100)),
            }
        };
        ctx.sleep(Duration::from_millis(800)); // let the create flush
        let disk_writes_before: u64 = disks.iter().map(|d| d.stats().writes).sum();

        // A compiler writing and deleting temporary files (paper §4.1).
        let mut pair_times = Vec::new();
        for i in 0..20 {
            let name = format!("cc{i:03}.o");
            let t0 = ctx.now();
            client
                .append_row(ctx, tmp, &name, tmp, vec![Rights::ALL])
                .unwrap();
            client.delete_row(ctx, tmp, &name).unwrap();
            pair_times.push((ctx.now() - t0).as_secs_f64() * 1e3);
        }
        let disk_writes_after: u64 = disks.iter().map(|d| d.stats().writes).sum();
        let annihilated: u64 = nvrams.iter().map(|n| n.stats().annihilated).sum();
        let mean = pair_times.iter().sum::<f64>() / pair_times.len() as f64;
        (mean, disk_writes_after - disk_writes_before, annihilated)
    });
    sim.run_for(Duration::from_secs(30));
    let (mean_ms, disk_writes, annihilated) = out.take().expect("workload finished");
    println!("mean append+delete pair latency : {mean_ms:.1} ms (paper: 27 ms)");
    println!("disk writes during the workload : {disk_writes}");
    println!("records annihilated in NVRAM    : {annihilated}");
    assert!(annihilated > 0, "append/delete pairs must annihilate");
    assert!(
        disk_writes <= 6,
        "annihilated pairs must not reach the disk (saw {disk_writes} writes)"
    );
    println!("the /tmp pattern never touched the disk.");
}

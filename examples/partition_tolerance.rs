//! Network-partition behaviour (paper §3.1): the majority side keeps
//! serving, the minority side refuses even reads, and after healing the
//! isolated server rejoins with consistent state.
//!
//! Run with: `cargo run --example partition_tolerance --release`

use std::time::Duration;

use amoeba_dirsvc::dir::cluster::{Cluster, ClusterParams, Variant};
use amoeba_dirsvc::dir::Rights;
use amoeba_dirsvc::sim::Simulation;

fn main() {
    let mut sim = Simulation::new(1234);
    let mut cluster = Cluster::start(&sim, ClusterParams::paper(Variant::Group));
    let (client, _) = cluster.client(&sim);

    // Set up a directory.
    let setup = sim.spawn("setup", move |ctx| {
        let root = loop {
            match client.create_dir(ctx, &["owner"]) {
                Ok(c) => break c,
                Err(_) => ctx.sleep(Duration::from_millis(100)),
            }
        };
        client
            .append_row(ctx, root, "before-partition", root, vec![Rights::ALL])
            .unwrap();
        (client, root)
    });
    sim.run_for(Duration::from_secs(8));
    let (client, root) = setup.take().expect("setup done");

    println!("== isolating server 2 from the network ==");
    cluster.isolate_server(2);

    let majority_client = client.clone();
    let during = sim.spawn("during-partition", move |ctx| {
        ctx.sleep(Duration::from_secs(2)); // let failure detection settle
                                           // The majority side still commits updates.
        let sub = majority_client.create_dir(ctx, &["owner"]).unwrap();
        majority_client
            .append_row(ctx, root, "during-partition", sub, vec![Rights::ALL])
            .unwrap();
        println!("majority side committed an update during the partition");
        majority_client
            .lookup(ctx, root, "during-partition")
            .unwrap()
            .is_some()
    });
    sim.run_for(Duration::from_secs(10));
    assert_eq!(during.take(), Some(true));

    // The isolated server cannot have served that update; after healing it
    // rejoins and catches up.
    println!("== healing the partition ==");
    cluster.heal();
    sim.run_for(Duration::from_secs(10));
    assert!(
        cluster.group_server(2).is_normal(),
        "server 2 must rejoin after healing"
    );
    // All replicas converge to the same logical version.
    let v0 = cluster.group_server(0).update_seq();
    let v2 = cluster.group_server(2).update_seq();
    println!("update_seq: server0={v0} server2={v2}");
    assert_eq!(v0, v2, "replicas must converge");

    let check = sim.spawn("check", move |ctx| {
        client
            .lookup(ctx, root, "during-partition")
            .unwrap()
            .is_some()
    });
    sim.run_for(Duration::from_secs(3));
    assert_eq!(check.take(), Some(true));
    println!("partition healed; state consistent everywhere.");
}

//! Quickstart: bring up the triplicated group directory service, store
//! and retrieve capabilities, survive a server crash, and watch the
//! crashed server recover.
//!
//! Run with: `cargo run --example quickstart --release`

use std::time::Duration;

use amoeba_dirsvc::dir::cluster::{Cluster, ClusterParams, Variant};
use amoeba_dirsvc::dir::Rights;
use amoeba_dirsvc::sim::{Ctx, SimTime, Simulation};

/// Retries an operation until the service has formed.
fn until_ready<T>(
    ctx: &Ctx,
    mut f: impl FnMut() -> Result<T, amoeba_dirsvc::dir::DirClientError>,
) -> T {
    loop {
        match f() {
            Ok(v) => return v,
            Err(_) => ctx.sleep(Duration::from_millis(100)),
        }
    }
}

fn main() {
    let mut sim = Simulation::new(2026);
    println!("== starting a triplicated group directory service ==");
    let mut cluster = Cluster::start(&sim, ClusterParams::paper(Variant::Group));
    let (client, _node) = cluster.client(&sim);

    let app = sim.spawn("app", move |ctx| {
        // Create the root directory (retrying while the service forms).
        let root = until_ready(ctx, || client.create_dir(ctx, &["owner", "group", "other"]));
        println!("[{}] created root directory: {:?}", ctx.now(), root);

        // Store a few capabilities under names.
        for name in ["bin", "etc", "home"] {
            let sub = client
                .create_dir(ctx, &["owner", "group", "other"])
                .unwrap();
            client
                .append_row(
                    ctx,
                    root,
                    name,
                    sub,
                    vec![Rights::ALL, Rights::columns(3), Rights::column(2)],
                )
                .unwrap();
            println!("[{}] appended '{name}'", ctx.now());
        }

        // Look them up again.
        let listing = client.list(ctx, root).unwrap();
        println!(
            "[{}] root now lists: {:?}",
            ctx.now(),
            listing.rows.iter().map(|(n, _, _)| n).collect::<Vec<_>>()
        );
        (client, root)
    });
    sim.run_for(Duration::from_secs(10));
    let (client, root) = app.take().expect("setup finished");

    println!("== crashing server 0 (its disk survives) ==");
    cluster.crash_server(&sim, 0);
    let t_crash = sim.now();

    let survivor = sim.spawn("survivor-check", move |ctx| {
        // Give failure detection + ResetGroup a moment, then the two
        // surviving servers (a majority) answer again.
        let hit = until_ready(ctx, || client.lookup(ctx, root, "etc"));
        println!(
            "[{}] lookup 'etc' after crash: {:?}",
            ctx.now(),
            hit.is_some()
        );
        // And updates still commit.
        let tmp = until_ready(ctx, || client.create_dir(ctx, &["owner"]));
        client
            .append_row(
                ctx,
                root,
                "written-during-crash",
                tmp,
                vec![Rights::ALL, Rights::columns(3), Rights::column(2)],
            )
            .unwrap();
        println!("[{}] update committed with one server down", ctx.now());
        client
    });
    sim.run_for(Duration::from_secs(5));
    let client = survivor.take().expect("survivor ops finished");

    println!("== restarting server 0: it recovers via the Fig. 6 protocol ==");
    cluster.restart_server(&sim, 0);
    sim.run_for(Duration::from_secs(8));
    let recovered = cluster.group_server(0).is_normal();
    println!(
        "[{}] server 0 back in normal operation: {recovered}",
        sim.now()
    );
    assert!(recovered, "server 0 must recover");

    let final_check = sim.spawn("final-check", move |ctx| {
        let listing = client.lookup(ctx, root, "written-during-crash").unwrap();
        listing.is_some()
    });
    sim.run_for(Duration::from_secs(3));
    assert_eq!(final_check.take(), Some(true));
    let elapsed: SimTime = sim.now();
    println!("== done: the update survived; total virtual time {elapsed}, crash at {t_crash} ==");
}

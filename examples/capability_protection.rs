//! Protection-domain columns in action (paper §2): a directory with
//! owner/group/other columns, capabilities restricted per column, and the
//! unforgeability of check fields.
//!
//! Run with: `cargo run --example capability_protection --release`

use std::time::Duration;

use amoeba_dirsvc::dir::cluster::{Cluster, ClusterParams, Variant};
use amoeba_dirsvc::dir::{Capability, DirClientError, Rights};
use amoeba_dirsvc::sim::Simulation;

fn main() {
    let mut sim = Simulation::new(99);
    let mut cluster = Cluster::start(&sim, ClusterParams::paper(Variant::Group));
    let (client, _node) = cluster.client(&sim);

    let out = sim.spawn("app", move |ctx| {
        // Wait for the service, then build a directory with 3 columns.
        let owner_cap = loop {
            match client.create_dir(ctx, &["owner", "group", "other"]) {
                Ok(c) => break c,
                Err(_) => ctx.sleep(Duration::from_millis(100)),
            }
        };
        println!("owner capability: {owner_cap:?}");

        // Store a secret: full rights in the owner column, lookup-only in
        // the group column, invisible to others.
        let secret = client.create_dir(ctx, &["owner"]).unwrap();
        client
            .append_row(
                ctx,
                owner_cap,
                "secret",
                secret,
                vec![Rights::ALL, Rights::columns(1), Rights::NONE],
            )
            .unwrap();

        // Hand out a column-2 ("other") capability — the paper's example
        // of giving a directory capability to an unrelated person.
        let other_cap = owner_cap.restrict(Rights::column(2)).unwrap();
        println!("restricted 'other' capability: {other_cap:?}");

        // The unrelated person lists the directory: the secret row grants
        // them nothing, so the lookup resolves to no capability.
        let found = client.lookup(ctx, other_cap, "secret").unwrap();
        println!("'other' lookup of secret: {found:?}");
        assert!(found.is_none(), "other column grants nothing");

        // A group member (column 1) sees it with the column-1 mask.
        let group_cap = owner_cap.restrict(Rights::column(1)).unwrap();
        let found = client.lookup(ctx, group_cap, "secret").unwrap().unwrap();
        println!("'group' lookup of secret: {found:?}");
        assert_eq!(found.rights, Rights::columns(1));

        // Forging rights does not work: pump the rights field up and the
        // check field no longer validates.
        let forged = Capability {
            rights: Rights::ALL,
            ..group_cap
        };
        let err = client.list(ctx, forged);
        println!("forged capability answer: {err:?}");
        assert!(matches!(
            err,
            Err(DirClientError::Service(
                amoeba_dirsvc::dir::DirError::BadCapability
            ))
        ));

        // 'other' may not modify either.
        let denied = client.delete_row(ctx, other_cap, "secret");
        println!("'other' delete attempt: {denied:?}");
        assert!(denied.is_err());
        true
    });
    sim.run_for(Duration::from_secs(10));
    assert_eq!(out.take(), Some(true));
    println!("capability protection holds.");
}
